"""Byte encoding and decoding of instructions.

The encoding is deliberately variable-length and decodable from arbitrary
offsets: the same property of x86-64 that ROP gadget finding and the paper's
*gadget confusion* (§V-D) exploit.  Decoding an offset that does not start a
real instruction usually fails quickly with :class:`DecodeError`, but can also
yield a plausible-looking, unintended instruction — exactly the ambiguity the
ROP-aware attacks in :mod:`repro.attacks.ropaware` have to cope with.

Layout of an encoded instruction::

    +--------+---------+----------------------------------+
    | opcode | n_opnds | operand_0 ... operand_{n-1}      |
    +--------+---------+----------------------------------+

with operands encoded as:

* register:  ``0x01``, ``size_code << 4 | reg_id``
* immediate: ``0x02``, ``width``, ``width`` little-endian bytes
* memory:    ``0x03``, ``size``, ``flags``, [base], [index, scale], disp32
"""

from __future__ import annotations

from typing import Tuple

from repro.isa.instructions import Instruction, Mnemonic, CONDITION_CODES, has_label
from repro.isa.operands import Reg, Imm, Mem, Operand
from repro.isa.registers import Register


class DecodeError(ValueError):
    """Raised when a byte range does not encode a valid instruction."""


_SIZE_TO_CODE = {8: 0, 4: 1, 2: 2, 1: 3}
_CODE_TO_SIZE = {v: k for k, v in _SIZE_TO_CODE.items()}

_TAG_REG = 0x01
_TAG_IMM = 0x02
_TAG_MEM = 0x03

# Opcode map. ``ret`` intentionally gets the x86 value 0xC3 so the gadget
# finder's byte scans read naturally.
_BASE_OPCODES = {
    Mnemonic.MOV: 0x10,
    Mnemonic.MOVZX: 0x11,
    Mnemonic.MOVSX: 0x12,
    Mnemonic.LEA: 0x13,
    Mnemonic.XCHG: 0x14,
    Mnemonic.PUSH: 0x15,
    Mnemonic.POP: 0x16,
    Mnemonic.ADD: 0x20,
    Mnemonic.SUB: 0x21,
    Mnemonic.ADC: 0x22,
    Mnemonic.SBB: 0x23,
    Mnemonic.AND: 0x24,
    Mnemonic.OR: 0x25,
    Mnemonic.XOR: 0x26,
    Mnemonic.NEG: 0x27,
    Mnemonic.NOT: 0x28,
    Mnemonic.SHL: 0x29,
    Mnemonic.SHR: 0x2A,
    Mnemonic.SAR: 0x2B,
    Mnemonic.IMUL: 0x2C,
    Mnemonic.IDIV: 0x2D,
    Mnemonic.INC: 0x2E,
    Mnemonic.DEC: 0x2F,
    Mnemonic.CMP: 0x30,
    Mnemonic.TEST: 0x31,
    Mnemonic.CQO: 0x32,
    Mnemonic.JMP: 0x40,
    Mnemonic.CALL: 0x41,
    Mnemonic.LEAVE: 0x42,
    Mnemonic.NOP: 0x90,
    Mnemonic.HLT: 0xF4,
    Mnemonic.RET: 0xC3,
}

_JCC_BASE = 0x50
_CMOV_BASE = 0x60
_SET_BASE = 0x70

_OPCODE_TO_MNEMONIC = {}
for _mn, _op in _BASE_OPCODES.items():
    _OPCODE_TO_MNEMONIC[_op] = (_mn, "")
for _i, _cc in enumerate(CONDITION_CODES):
    _OPCODE_TO_MNEMONIC[_JCC_BASE + _i] = (Mnemonic.JCC, _cc)
    _OPCODE_TO_MNEMONIC[_CMOV_BASE + _i] = (Mnemonic.CMOV, _cc)
    _OPCODE_TO_MNEMONIC[_SET_BASE + _i] = (Mnemonic.SET, _cc)

#: Encoded opcode byte of ``ret``; the gadget finder scans for it.
RET_OPCODE = _BASE_OPCODES[Mnemonic.RET]


def opcode_of(instruction: Instruction) -> int:
    """Return the opcode byte of ``instruction``."""
    if instruction.mnemonic is Mnemonic.JCC:
        return _JCC_BASE + CONDITION_CODES.index(instruction.condition)
    if instruction.mnemonic is Mnemonic.CMOV:
        return _CMOV_BASE + CONDITION_CODES.index(instruction.condition)
    if instruction.mnemonic is Mnemonic.SET:
        return _SET_BASE + CONDITION_CODES.index(instruction.condition)
    return _BASE_OPCODES[instruction.mnemonic]


def _encode_operand(operand: Operand) -> bytes:
    if isinstance(operand, Reg):
        return bytes([_TAG_REG, (_SIZE_TO_CODE[operand.size] << 4) | int(operand.reg)])
    if isinstance(operand, Imm):
        width = operand.size
        value = operand.value & ((1 << (8 * width)) - 1)
        return bytes([_TAG_IMM, width]) + value.to_bytes(width, "little")
    if isinstance(operand, Mem):
        flags = (1 if operand.base is not None else 0) | (
            2 if operand.index is not None else 0
        )
        out = bytearray([_TAG_MEM, operand.size, flags])
        if operand.base is not None:
            out.append(int(operand.base))
        if operand.index is not None:
            out.append(int(operand.index))
            out.append(operand.scale)
        out += (operand.disp & 0xFFFFFFFF).to_bytes(4, "little")
        return bytes(out)
    raise ValueError(f"cannot encode operand {operand!r}")


def encode_instruction(instruction: Instruction) -> bytes:
    """Encode ``instruction`` into its byte representation.

    Raises:
        ValueError: if the instruction still contains unresolved labels.
    """
    if has_label(instruction):
        raise ValueError(f"cannot encode instruction with labels: {instruction}")
    out = bytearray([opcode_of(instruction), len(instruction.operands)])
    for operand in instruction.operands:
        out += _encode_operand(operand)
    return bytes(out)


def encoded_length(instruction: Instruction) -> int:
    """Return the encoded length of ``instruction`` in bytes."""
    return len(encode_instruction(instruction))


def _decode_operand(data: bytes, offset: int) -> Tuple[Operand, int]:
    if offset >= len(data):
        raise DecodeError("truncated operand")
    tag = data[offset]
    if tag == _TAG_REG:
        if offset + 2 > len(data):
            raise DecodeError("truncated register operand")
        byte = data[offset + 1]
        size_code, reg_id = byte >> 4, byte & 0x0F
        if size_code not in _CODE_TO_SIZE:
            raise DecodeError(f"bad register size code {size_code}")
        return Reg(Register(reg_id), _CODE_TO_SIZE[size_code]), offset + 2
    if tag == _TAG_IMM:
        if offset + 2 > len(data):
            raise DecodeError("truncated immediate operand")
        width = data[offset + 1]
        if width not in (1, 2, 4, 8):
            raise DecodeError(f"bad immediate width {width}")
        end = offset + 2 + width
        if end > len(data):
            raise DecodeError("truncated immediate bytes")
        value = int.from_bytes(data[offset + 2:end], "little")
        return Imm(value, width), end
    if tag == _TAG_MEM:
        if offset + 3 > len(data):
            raise DecodeError("truncated memory operand")
        size, flags = data[offset + 1], data[offset + 2]
        if size not in (1, 2, 4, 8):
            raise DecodeError(f"bad memory operand size {size}")
        if flags & ~0x03:
            raise DecodeError(f"bad memory operand flags {flags:#x}")
        cursor = offset + 3
        base = index = None
        scale = 1
        if flags & 1:
            if cursor >= len(data):
                raise DecodeError("truncated base register")
            if data[cursor] > 15:
                raise DecodeError("bad base register")
            base = Register(data[cursor])
            cursor += 1
        if flags & 2:
            if cursor + 2 > len(data):
                raise DecodeError("truncated index register")
            if data[cursor] > 15:
                raise DecodeError("bad index register")
            index = Register(data[cursor])
            scale = data[cursor + 1]
            if scale not in (1, 2, 4, 8):
                raise DecodeError(f"bad scale {scale}")
            cursor += 2
        if cursor + 4 > len(data):
            raise DecodeError("truncated displacement")
        disp = int.from_bytes(data[cursor:cursor + 4], "little")
        if disp >= 1 << 31:
            disp -= 1 << 32
        return Mem(base, index, scale, disp, size), cursor + 4
    raise DecodeError(f"unknown operand tag {tag:#x}")


def decode_instruction(data: bytes, offset: int = 0) -> Tuple[Instruction, int]:
    """Decode one instruction starting at ``offset`` in ``data``.

    Returns:
        a ``(instruction, length)`` pair.

    Raises:
        DecodeError: if the bytes at ``offset`` are not a valid encoding.
    """
    if offset >= len(data):
        raise DecodeError("offset beyond data")
    opcode = data[offset]
    if opcode not in _OPCODE_TO_MNEMONIC:
        raise DecodeError(f"unknown opcode {opcode:#x}")
    mnemonic, condition = _OPCODE_TO_MNEMONIC[opcode]
    if offset + 1 >= len(data):
        raise DecodeError("truncated instruction")
    count = data[offset + 1]
    if count > 3:
        raise DecodeError(f"implausible operand count {count}")
    cursor = offset + 2
    operands = []
    for _ in range(count):
        operand, cursor = _decode_operand(data, cursor)
        operands.append(operand)
    instruction = Instruction(mnemonic, tuple(operands), condition)
    return instruction, cursor - offset
