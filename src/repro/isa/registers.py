"""General purpose registers of the reproduction ISA.

The register file mirrors x86-64: sixteen 64-bit general purpose registers.
``rsp`` is the stack pointer (and, for ROP chains, the virtual program
counter), ``rip`` is the instruction pointer and is modelled separately by the
CPU state rather than as a general purpose register.
"""

from __future__ import annotations

import enum


class Register(enum.IntEnum):
    """Identifier of a general purpose register.

    The integer value is used directly by the byte encoding.
    """

    RAX = 0
    RCX = 1
    RDX = 2
    RBX = 3
    RSP = 4
    RBP = 5
    RSI = 6
    RDI = 7
    R8 = 8
    R9 = 9
    R10 = 10
    R11 = 11
    R12 = 12
    R13 = 13
    R14 = 14
    R15 = 15

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


#: All general purpose registers, in encoding order.
REGISTERS = tuple(Register)

#: Registers preserved across calls by the calling convention (System V like).
CALLEE_SAVED = (
    Register.RBX,
    Register.RBP,
    Register.R12,
    Register.R13,
    Register.R14,
    Register.R15,
)

#: Registers a callee may clobber freely.
CALLER_SAVED = (
    Register.RAX,
    Register.RCX,
    Register.RDX,
    Register.RSI,
    Register.RDI,
    Register.R8,
    Register.R9,
    Register.R10,
    Register.R11,
)

#: Argument passing order of the calling convention.
ARG_REGISTERS = (
    Register.RDI,
    Register.RSI,
    Register.RDX,
    Register.RCX,
    Register.R8,
    Register.R9,
)

#: Register holding a function's return value.
RETURN_REGISTER = Register.RAX

#: Registers that the compiler's register allocator may hand out for
#: program values.  ``rsp`` is reserved for the stack and ``rbp`` for frames.
ALLOCATABLE = tuple(
    r for r in REGISTERS if r not in (Register.RSP, Register.RBP)
)


def register_by_name(name: str) -> Register:
    """Return the :class:`Register` with the given lowercase name.

    Raises:
        KeyError: if ``name`` does not identify a register.
    """
    return Register[name.upper()]
