"""Instruction operands: registers, immediates, memory references, labels."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.isa.registers import Register

#: Operand sizes supported by the ISA, in bytes.
VALID_SIZES = (1, 2, 4, 8)


@dataclass(frozen=True)
class Reg:
    """A register operand.

    Attributes:
        reg: the general purpose register referenced.
        size: access size in bytes (1, 2, 4 or 8).  Writes of size 4
            zero-extend into the full register, writes of size 1 or 2 merge
            into the low bytes, mirroring x86-64 semantics closely enough for
            the paper's code shapes.
    """

    reg: Register
    size: int = 8

    def __post_init__(self) -> None:
        if self.size not in VALID_SIZES:
            raise ValueError(f"invalid register operand size {self.size}")

    def __str__(self) -> str:
        suffix = {8: "", 4: "d", 2: "w", 1: "b"}[self.size]
        return f"{self.reg}{suffix}" if suffix else str(self.reg)


@dataclass(frozen=True)
class Imm:
    """An immediate operand.

    Attributes:
        value: the immediate value.  Stored as a Python int; the encoder
            truncates it to ``size`` bytes (two's complement for negatives).
        size: encoded width in bytes.
    """

    value: int
    size: int = 8

    def __post_init__(self) -> None:
        if self.size not in VALID_SIZES:
            raise ValueError(f"invalid immediate size {self.size}")

    def __str__(self) -> str:
        return hex(self.value)


@dataclass(frozen=True)
class Mem:
    """A memory operand of the form ``[base + index * scale + disp]``.

    Attributes:
        base: optional base register.
        index: optional index register.
        scale: scale factor applied to the index register (1, 2, 4 or 8).
        disp: signed 32-bit displacement.
        size: access size in bytes.
    """

    base: Optional[Register] = None
    index: Optional[Register] = None
    scale: int = 1
    disp: int = 0
    size: int = 8

    def __post_init__(self) -> None:
        if self.size not in VALID_SIZES:
            raise ValueError(f"invalid memory operand size {self.size}")
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid scale {self.scale}")

    def __str__(self) -> str:
        parts = []
        if self.base is not None:
            parts.append(str(self.base))
        if self.index is not None:
            parts.append(f"{self.index}*{self.scale}")
        if self.disp or not parts:
            parts.append(hex(self.disp))
        prefix = {8: "qword", 4: "dword", 2: "word", 1: "byte"}[self.size]
        return f"{prefix} ptr [{' + '.join(parts)}]"


@dataclass(frozen=True)
class Label:
    """A symbolic code label, resolved to an absolute address by the assembler.

    Labels never survive encoding: :func:`repro.isa.encoding.encode_instruction`
    rejects them, so any label must be materialized first.
    """

    name: str

    def __str__(self) -> str:
        return self.name


#: Union of all operand kinds.
Operand = Union[Reg, Imm, Mem, Label]


def is_rsp(operand: Operand) -> bool:
    """Return True if ``operand`` is a direct reference to the stack pointer."""
    return isinstance(operand, Reg) and operand.reg is Register.RSP


def references_rsp(operand: Operand) -> bool:
    """Return True if ``operand`` reads or writes ``rsp`` in any way."""
    if isinstance(operand, Reg):
        return operand.reg is Register.RSP
    if isinstance(operand, Mem):
        return Register.RSP in (operand.base, operand.index)
    return False
