"""x64-like instruction set architecture used throughout the reproduction.

The paper rewrites compiled x86-64 functions into ROP chains.  Because no
binary toolchain (capstone/keystone, gcc, Ghidra) is available offline, this
package provides a self-contained ISA with the properties the ROP machinery
relies on:

* sixteen 64-bit general purpose registers plus ``rsp``/``rip`` conventions,
* a condition-flag register (CF/ZF/SF/OF) written by ALU instructions,
* a variable-length byte encoding so instruction streams can be decoded from
  arbitrary (including unaligned) offsets — the property gadget finding and
  gadget confusion build on,
* an assembler and disassembler used by the compiler, the gadget finder and
  the deobfuscation attack engines.
"""

from repro.isa.registers import Register, REGISTERS, CALLEE_SAVED, CALLER_SAVED, ARG_REGISTERS
from repro.isa.flags import Flag, FLAGS
from repro.isa.operands import Reg, Imm, Mem, Label, Operand
from repro.isa.instructions import Instruction, Mnemonic, CONDITION_CODES
from repro.isa.encoding import encode_instruction, decode_instruction, DecodeError
from repro.isa.assembler import Assembler, assemble
from repro.isa.disassembler import disassemble, disassemble_range, linear_sweep

__all__ = [
    "Register",
    "REGISTERS",
    "CALLEE_SAVED",
    "CALLER_SAVED",
    "ARG_REGISTERS",
    "Flag",
    "FLAGS",
    "Reg",
    "Imm",
    "Mem",
    "Label",
    "Operand",
    "Instruction",
    "Mnemonic",
    "CONDITION_CODES",
    "encode_instruction",
    "decode_instruction",
    "DecodeError",
    "Assembler",
    "assemble",
    "disassemble",
    "disassemble_range",
    "linear_sweep",
]
