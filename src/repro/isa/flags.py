"""Condition flags of the reproduction ISA.

Only the four flags the paper's machinery depends on are modelled: the carry
flag (exploited by the ``neg``/``adc`` branch-encoding idiom of Figure 1), the
zero and sign flags (ordinary conditional branches) and the overflow flag
(signed comparisons).
"""

from __future__ import annotations

import enum


class Flag(enum.Enum):
    """A CPU condition flag."""

    CF = "cf"
    ZF = "zf"
    SF = "sf"
    OF = "of"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: All modelled flags.
FLAGS = tuple(Flag)


def fresh_flags() -> dict:
    """Return a flags mapping with every flag cleared."""
    return {flag: 0 for flag in FLAGS}
