"""Two-pass assembler turning instruction lists with labels into bytes.

Labels are resolved to absolute addresses (the reproduction, like the paper's
rewritten binaries, loads programs at fixed addresses).  Control-flow target
immediates are always encoded with 8-byte width so that instruction sizes do
not depend on label values and a single fix-up pass suffices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from repro.isa.encoding import encode_instruction, encoded_length
from repro.isa.instructions import Instruction
from repro.isa.operands import Imm, Label, Operand


@dataclass
class AssemblyItem:
    """One item of an assembly listing: either an instruction or a label."""

    instruction: Instruction = None
    label: str = None

    @property
    def is_label(self) -> bool:
        """True when the item defines a label rather than an instruction."""
        return self.label is not None


class Assembler:
    """Accumulates instructions and labels and assembles them to bytes.

    Example::

        asm = Assembler()
        asm.label("loop")
        asm.emit(make("dec", Reg(Register.RCX)))
        asm.emit(make("jne", Label("loop")))
        code, symbols = asm.assemble(base_address=0x1000)
    """

    def __init__(self) -> None:
        self._items: List[AssemblyItem] = []

    def emit(self, instruction: Instruction) -> None:
        """Append an instruction to the listing."""
        self._items.append(AssemblyItem(instruction=instruction))

    def emit_all(self, instructions: Sequence[Instruction]) -> None:
        """Append several instructions to the listing."""
        for instruction in instructions:
            self.emit(instruction)

    def label(self, name: str) -> None:
        """Define a label at the current position."""
        self._items.append(AssemblyItem(label=name))

    @property
    def items(self) -> Tuple[AssemblyItem, ...]:
        """The accumulated listing (read-only view)."""
        return tuple(self._items)

    def _placeholder(self, instruction: Instruction) -> Instruction:
        """Replace label operands with 8-byte immediates for sizing."""
        operands = tuple(
            Imm(0, 8) if isinstance(op, Label) else op for op in instruction.operands
        )
        return Instruction(instruction.mnemonic, operands, instruction.condition)

    def _resolve(self, instruction: Instruction, labels: Dict[str, int]) -> Instruction:
        operands: List[Operand] = []
        for op in instruction.operands:
            if isinstance(op, Label):
                if op.name not in labels:
                    raise KeyError(f"undefined label {op.name!r}")
                operands.append(Imm(labels[op.name], 8))
            else:
                operands.append(op)
        return Instruction(instruction.mnemonic, tuple(operands), instruction.condition)

    def assemble(self, base_address: int = 0) -> Tuple[bytes, Dict[str, int]]:
        """Assemble the listing.

        Args:
            base_address: absolute address of the first instruction.

        Returns:
            ``(code, labels)`` where ``labels`` maps label names to absolute
            addresses.
        """
        # pass 1: compute label addresses using fixed-size placeholders
        labels: Dict[str, int] = {}
        cursor = base_address
        for item in self._items:
            if item.is_label:
                labels[item.label] = cursor
            else:
                cursor += encoded_length(self._placeholder(item.instruction))
        # pass 2: encode with resolved labels
        out = bytearray()
        for item in self._items:
            if item.is_label:
                continue
            out += encode_instruction(self._resolve(item.instruction, labels))
        return bytes(out), labels


def assemble(
    instructions: Sequence[Union[Instruction, str]], base_address: int = 0
) -> Tuple[bytes, Dict[str, int]]:
    """Assemble a flat sequence where strings define labels.

    This is a convenience wrapper over :class:`Assembler` used heavily in
    tests and by the gadget synthesizer.
    """
    asm = Assembler()
    for item in instructions:
        if isinstance(item, str):
            asm.label(item)
        else:
            asm.emit(item)
    return asm.assemble(base_address)
