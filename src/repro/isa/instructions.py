"""Instruction mnemonics and the :class:`Instruction` container."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.isa.operands import Operand, Label


class Mnemonic(enum.Enum):
    """Supported instruction mnemonics.

    The set covers what the compiler emits for mini-C programs, what the
    artificial gadgets need, and what the rewriter's pivot/unpivot stubs use.
    """

    # data movement
    MOV = "mov"
    MOVZX = "movzx"
    MOVSX = "movsx"
    LEA = "lea"
    XCHG = "xchg"
    PUSH = "push"
    POP = "pop"
    # ALU
    ADD = "add"
    SUB = "sub"
    ADC = "adc"
    SBB = "sbb"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NEG = "neg"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    SAR = "sar"
    IMUL = "imul"
    IDIV = "idiv"
    INC = "inc"
    DEC = "dec"
    CMP = "cmp"
    TEST = "test"
    CQO = "cqo"
    # conditional moves / sets (condition code carried separately)
    CMOV = "cmov"
    SET = "set"
    # control transfer
    JMP = "jmp"
    JCC = "j"
    CALL = "call"
    RET = "ret"
    LEAVE = "leave"
    NOP = "nop"
    HLT = "hlt"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Condition codes usable with :data:`Mnemonic.JCC`, :data:`Mnemonic.CMOV`
#: and :data:`Mnemonic.SET`.
CONDITION_CODES = (
    "e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae", "s", "ns",
)

#: Condition code negation map, used by branch flipping attacks and by the
#: compiler when inverting branches.
NEGATED_CONDITION = {
    "e": "ne", "ne": "e",
    "l": "ge", "ge": "l",
    "le": "g", "g": "le",
    "b": "ae", "ae": "b",
    "be": "a", "a": "be",
    "s": "ns", "ns": "s",
}


@dataclass(frozen=True)
class Instruction:
    """A single decoded (or to-be-encoded) instruction.

    Attributes:
        mnemonic: the operation performed.
        operands: destination-first operand tuple.
        condition: condition code for ``JCC``/``CMOV``/``SET``; empty otherwise.
    """

    mnemonic: Mnemonic
    operands: Tuple[Operand, ...] = ()
    condition: str = ""

    def __post_init__(self) -> None:
        if self.mnemonic in (Mnemonic.JCC, Mnemonic.CMOV, Mnemonic.SET):
            if self.condition not in CONDITION_CODES:
                raise ValueError(
                    f"{self.mnemonic} requires a condition code, got {self.condition!r}"
                )
        elif self.condition:
            raise ValueError(f"{self.mnemonic} does not take a condition code")

    @property
    def name(self) -> str:
        """Full mnemonic string including any condition code (e.g. ``jne``)."""
        if self.mnemonic is Mnemonic.JCC:
            return f"j{self.condition}"
        if self.mnemonic in (Mnemonic.CMOV, Mnemonic.SET):
            return f"{self.mnemonic.value}{self.condition}"
        return self.mnemonic.value

    def is_control_flow(self) -> bool:
        """True for instructions that may divert the instruction pointer."""
        return self.mnemonic in (
            Mnemonic.JMP, Mnemonic.JCC, Mnemonic.CALL, Mnemonic.RET, Mnemonic.HLT,
        )

    def is_ret(self) -> bool:
        """True for ``ret``."""
        return self.mnemonic is Mnemonic.RET

    def reads_flags(self) -> bool:
        """True when the instruction's behaviour depends on condition flags."""
        return self.mnemonic in (Mnemonic.JCC, Mnemonic.CMOV, Mnemonic.SET,
                                 Mnemonic.ADC, Mnemonic.SBB)

    def writes_flags(self) -> bool:
        """True when the instruction updates condition flags."""
        return self.mnemonic in (
            Mnemonic.ADD, Mnemonic.SUB, Mnemonic.ADC, Mnemonic.SBB,
            Mnemonic.AND, Mnemonic.OR, Mnemonic.XOR, Mnemonic.NEG,
            Mnemonic.SHL, Mnemonic.SHR, Mnemonic.SAR, Mnemonic.IMUL,
            Mnemonic.INC, Mnemonic.DEC, Mnemonic.CMP, Mnemonic.TEST,
        )

    def __str__(self) -> str:
        if not self.operands:
            return self.name
        return f"{self.name} {', '.join(str(op) for op in self.operands)}"


def make(name: str, *operands: Operand) -> Instruction:
    """Build an :class:`Instruction` from a textual mnemonic.

    ``name`` may carry a condition code suffix, e.g. ``"jne"``, ``"cmove"``,
    ``"setle"``.  This is the main convenience constructor used by the
    compiler backend, the gadget synthesizer and the tests.
    """
    name = name.lower()
    if name.startswith("j") and name != "jmp":
        cc = name[1:]
        if cc in CONDITION_CODES:
            return Instruction(Mnemonic.JCC, tuple(operands), cc)
    if name.startswith("cmov"):
        cc = name[4:]
        if cc in CONDITION_CODES:
            return Instruction(Mnemonic.CMOV, tuple(operands), cc)
    if name.startswith("set"):
        cc = name[3:]
        if cc in CONDITION_CODES:
            return Instruction(Mnemonic.SET, tuple(operands), cc)
    mnemonic = Mnemonic(name)
    return Instruction(mnemonic, tuple(operands))


def has_label(instruction: Instruction) -> bool:
    """Return True if any operand is an unresolved :class:`Label`."""
    return any(isinstance(op, Label) for op in instruction.operands)
