"""Disassembly helpers built on :mod:`repro.isa.encoding`.

Three disassembly styles are offered, mirroring the tools the paper's
pipeline depends on:

* :func:`disassemble` — decode a single instruction at an address;
* :func:`disassemble_range` — sequential decoding of a byte range (the
  building block of linear-sweep CFG recovery in :mod:`repro.analysis`);
* :func:`linear_sweep` — tolerant sweep that skips undecodable bytes, used by
  the gadget finder to scan ``.text`` including dead artificial gadget code.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.isa.encoding import DecodeError, decode_instruction
from repro.isa.instructions import Instruction


def disassemble(data: bytes, offset: int = 0) -> Tuple[Instruction, int]:
    """Decode one instruction; alias of :func:`decode_instruction`."""
    return decode_instruction(data, offset)


def disassemble_range(
    data: bytes, start: int = 0, end: int = None
) -> List[Tuple[int, Instruction]]:
    """Sequentially decode ``data[start:end]``.

    Returns a list of ``(offset, instruction)`` pairs.  Decoding stops with a
    :class:`DecodeError` if an undecodable byte is reached before ``end``.
    """
    if end is None:
        end = len(data)
    out: List[Tuple[int, Instruction]] = []
    cursor = start
    while cursor < end:
        instruction, length = decode_instruction(data, cursor)
        out.append((cursor, instruction))
        cursor += length
    return out


def linear_sweep(data: bytes, start: int = 0, end: int = None) -> Dict[int, Instruction]:
    """Decode as much of ``data`` as possible, skipping undecodable bytes.

    Unlike :func:`disassemble_range` this never raises: offsets that do not
    start a valid instruction are skipped one byte at a time.  The result maps
    offsets to instructions and is the raw material of gadget discovery.
    """
    if end is None:
        end = len(data)
    out: Dict[int, Instruction] = {}
    cursor = start
    while cursor < end:
        try:
            instruction, length = decode_instruction(data, cursor)
        except DecodeError:
            cursor += 1
            continue
        out[cursor] = instruction
        cursor += length
    return out


def iter_all_offsets(data: bytes) -> Iterator[Tuple[int, Instruction, int]]:
    """Yield ``(offset, instruction, length)`` for every decodable offset.

    Every byte offset is tried independently (superset disassembly), which is
    what speculative gadget guessing needs.
    """
    for offset in range(len(data)):
        try:
            instruction, length = decode_instruction(data, offset)
        except DecodeError:
            continue
        yield offset, instruction, length
