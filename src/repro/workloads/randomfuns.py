"""Tigress RandomFuns analog: the 72 synthetic hash functions of §VII-B.

Table IV lists the six control structures; combined with four input sizes
(1, 2, 4, 8 bytes) and three seeds they give the 72 functions of Table II.
Each function mixes its input into a local state through randomly generated
arithmetic blocks (``bb(4)``), and either checks the resulting hash against a
secret (the G1 variant, ``RandomFunsPointTest``) or carries coverage probes
at every CFG split and join point (the G2 variant, ``RandomFunsTrace=2``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lang.ast import (
    Assign,
    BinOp,
    Const,
    For,
    Function,
    If,
    Probe,
    Program,
    Return,
    Stmt,
    Var,
    While,
)

_MASK64 = (1 << 64) - 1

#: The six control structures of Table IV, as (name, depth, ifs, loops).
CONTROL_STRUCTURES: Tuple[Tuple[str, int, int, int], ...] = (
    ("if(bb4,bb4)", 1, 1, 0),
    ("for(if(bb4,bb4))", 2, 1, 1),
    ("for(for(bb4))", 2, 0, 2),
    ("for(for(if(bb4,bb4)))", 3, 1, 2),
    ("for(if(if,if))", 3, 3, 1),
    ("if(if(if,if),if)", 3, 5, 0),
)

#: Input sizes in bytes, matching ``RandomFunsInputSize`` times the type width.
INPUT_SIZES: Tuple[int, ...] = (1, 2, 4, 8)

#: Number of loop iterations (the paper's ``RandomFunsLoopSize`` is 25; the
#: reproduction default is smaller so the full grid stays laptop-scale).
DEFAULT_LOOP_ITERATIONS = 6


@dataclass(frozen=True)
class RandomFunSpec:
    """Parameters identifying one generated function."""

    structure: str
    input_size: int
    seed: int
    point_test: bool = True
    loop_iterations: int = DEFAULT_LOOP_ITERATIONS

    @property
    def name(self) -> str:
        goal = "secret" if self.point_test else "cov"
        index = [s[0] for s in CONTROL_STRUCTURES].index(self.structure)
        return f"rf_s{index}_w{self.input_size}_r{self.seed}_{goal}"


class _Generator:
    def __init__(self, spec: RandomFunSpec) -> None:
        self.spec = spec
        import zlib

        key = f"{spec.seed}|{spec.structure}|{spec.input_size}".encode()
        self.rng = random.Random(zlib.crc32(key))
        self.probe_counter = 0
        self.state_vars = ["h0", "h1"]

    def _probe(self) -> List[Stmt]:
        if self.spec.point_test:
            return []
        self.probe_counter += 1
        return [Probe(self.probe_counter)]

    def _bb(self, count: int = 4) -> List[Stmt]:
        """A straight-line block of ``count`` random arithmetic statements."""
        statements: List[Stmt] = []
        for _ in range(count):
            destination = self.rng.choice(self.state_vars)
            source = self.rng.choice(self.state_vars + ["x"])
            op = self.rng.choice(["+", "-", "^", "*", "|"])
            constant = Const(self.rng.randrange(1, 1 << 16) | 1)
            inner = BinOp(self.rng.choice(["+", "^", "*"]), Var(source), constant)
            statements.append(Assign(destination, BinOp(op, Var(destination), inner)))
        return statements

    def _if(self, then_body: List[Stmt], else_body: List[Stmt]) -> List[Stmt]:
        comparison = self.rng.choice(["==", "<", ">", "!="])
        mask = (1 << (8 * min(self.spec.input_size, 2))) - 1
        condition = BinOp(comparison,
                          BinOp("&", Var(self.rng.choice(self.state_vars)), Const(mask)),
                          Const(self.rng.randrange(mask + 1)))
        return (self._probe()
                + [If(condition, then_body + self._probe(), else_body + self._probe())]
                + self._probe())

    def _for(self, body: List[Stmt]) -> List[Stmt]:
        counter = f"i{self.rng.randrange(1 << 16)}"
        return self._probe() + [For(
            Assign(counter, Const(0)),
            BinOp("<", Var(counter), Const(self.spec.loop_iterations)),
            Assign(counter, BinOp("+", Var(counter), Const(1))),
            body + [Assign("h0", BinOp("+", Var("h0"), Var(counter)))],
        )] + self._probe()

    def _structure(self) -> List[Stmt]:
        name = self.spec.structure
        if name == "if(bb4,bb4)":
            return self._if(self._bb(), self._bb())
        if name == "for(if(bb4,bb4))":
            return self._for(self._if(self._bb(), self._bb()))
        if name == "for(for(bb4))":
            return self._for(self._for(self._bb()))
        if name == "for(for(if(bb4,bb4)))":
            return self._for(self._for(self._if(self._bb(), self._bb())))
        if name == "for(if(if,if))":
            return self._for(self._if(self._if(self._bb(), self._bb()),
                                      self._if(self._bb(), self._bb())))
        if name == "if(if(if,if),if)":
            return self._if(self._if(self._if(self._bb(), self._bb()),
                                     self._if(self._bb(), self._bb())),
                            self._if(self._bb(), self._bb()))
        raise ValueError(f"unknown control structure {name!r}")

    def build(self) -> Tuple[Function, Optional[int], int]:
        """Return ``(function, secret_input, probe_count)``."""
        mask = (1 << (8 * self.spec.input_size)) - 1
        body: List[Stmt] = [
            Assign("x", BinOp("&", Var("input"), Const(mask))),
            Assign("h0", Const(self.rng.randrange(1, 1 << 16))),
            Assign("h1", Const(self.rng.randrange(1, 1 << 16))),
        ]
        body += self._probe()
        body += self._structure()
        hash_expression = BinOp("&", BinOp("^", Var("h0"), Var("h1")), Const(0xFFFF))
        body.append(Assign("hash", hash_expression))

        secret_input: Optional[int] = None
        if self.spec.point_test:
            # pick a reachable secret: evaluate the hash for a random input
            secret_input = self.rng.randrange(mask + 1)
            expected = _evaluate_hash(body, secret_input)
            body.append(If(BinOp("==", Var("hash"), Const(expected)),
                           [Return(Const(1))], [Return(Const(0))]))
        else:
            body += self._probe()
            body.append(Return(Var("hash")))
        function = Function(self.spec.name, ["input"], body)
        return function, secret_input, self.probe_counter


def _evaluate_hash(body: List[Stmt], input_value: int) -> int:
    """Reference interpreter used to pick a satisfiable secret."""
    variables: Dict[str, int] = {"input": input_value}

    def expr(node) -> int:
        if isinstance(node, Const):
            return node.value & _MASK64
        if isinstance(node, Var):
            return variables.get(node.name, 0) & _MASK64
        if isinstance(node, BinOp):
            a, b = expr(node.left), expr(node.right)
            sa = a - (1 << 64) if a >> 63 else a
            sb = b - (1 << 64) if b >> 63 else b
            table = {
                "+": a + b, "-": a - b, "*": a * b, "&": a & b, "|": a | b,
                "^": a ^ b, "<<": a << (b & 63), ">>": sa >> (b & 63),
                "==": int(a == b), "!=": int(a != b), "<": int(sa < sb),
                "<=": int(sa <= sb), ">": int(sa > sb), ">=": int(sa >= sb),
                "/": 0 if b == 0 else int(sa / sb),
                "%": 0 if b == 0 else sa - int(sa / sb) * sb,
            }
            return table[node.op] & _MASK64
        raise TypeError(node)

    def run(statements: List[Stmt]) -> None:
        for statement in statements:
            if isinstance(statement, Assign):
                variables[statement.name] = expr(statement.value)
            elif isinstance(statement, If):
                if expr(statement.condition):
                    run(statement.then_body)
                else:
                    run(statement.else_body)
            elif isinstance(statement, For):
                run([statement.init])
                while expr(statement.condition):
                    run(statement.body)
                    run([statement.step])
            elif isinstance(statement, While):
                while expr(statement.condition):
                    run(statement.body)
            elif isinstance(statement, (Probe, Return)):
                continue

    run(body)
    return variables.get("hash", 0)


def generate_random_function(spec: RandomFunSpec) -> Tuple[Program, Optional[int], int]:
    """Generate one RandomFuns program.

    Returns ``(program, secret_input, probe_count)``; ``secret_input`` is an
    input known to reach the accepting path (None for coverage variants).
    """
    function, secret_input, probes = _Generator(spec).build()
    return Program([function]), secret_input, probes


def generate_table2_suite(point_test: bool = True, seeds: Tuple[int, ...] = (1, 2, 3),
                          input_sizes: Tuple[int, ...] = INPUT_SIZES,
                          structures: Optional[Tuple[str, ...]] = None,
                          ) -> List[RandomFunSpec]:
    """The specs of the Table II function grid (72 functions at full size)."""
    structures = structures or tuple(s[0] for s in CONTROL_STRUCTURES)
    return [
        RandomFunSpec(structure=structure, input_size=size, seed=seed,
                      point_test=point_test)
        for structure in structures
        for size in input_sizes
        for seed in seeds
    ]
