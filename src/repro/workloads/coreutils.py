"""Synthetic coreutils-like corpus for the §VII-C1 rewriting coverage study.

The paper rewrites the 1354 unique functions of coreutils v8.28 and reports
which code shapes fail (functions smaller than the pivot stub, register
pressure beyond the single spill slot, ``push rsp``-style stack idioms, CFG
reconstruction failures).  The reproduction generates a corpus with the same
*mix of shapes* — ordinary functions of varying size and structure produced
by the mini-C compiler, a population of tiny stubs, plus a small number of
hand-assembled "exotic" functions exhibiting exactly the unsupported idioms —
so the coverage measurement exercises the same failure categories.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.binary.image import BinaryImage
from repro.compiler import compile_program
from repro.isa.assembler import assemble
from repro.isa.instructions import make
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import Register
from repro.lang.ast import (
    Assign,
    BinOp,
    Const,
    For,
    Function,
    If,
    Load,
    Program,
    Return,
    Store,
    Var,
)


@dataclass
class CorpusFunction:
    """One corpus entry: a function name plus its expected shape category."""

    name: str
    category: str  # "normal", "stub", "push_rsp", "indexed_rsp", "high_pressure"


def _normal_function(name: str, rng: random.Random) -> Function:
    """A mini-C function with a random mix of loops, branches and memory ops."""
    body = [
        Assign("acc", Const(rng.randrange(1, 1000))),
        Store(Var("buf"), Var("a"), 8),
    ]
    for _ in range(rng.randrange(1, 4)):
        shape = rng.random()
        if shape < 0.4:
            body.append(If(BinOp(rng.choice(["<", "==", ">"]), Var("a"),
                                 Const(rng.randrange(64))),
                           [Assign("acc", BinOp("^", Var("acc"), Var("a")))],
                           [Assign("acc", BinOp("+", Var("acc"), Const(rng.randrange(7, 99))))]))
        elif shape < 0.8:
            counter = f"i{rng.randrange(1000)}"
            body.append(For(Assign(counter, Const(0)),
                            BinOp("<", Var(counter), Const(rng.randrange(2, 6))),
                            Assign(counter, BinOp("+", Var(counter), Const(1))),
                            [Assign("acc", BinOp("+", Var("acc"),
                                                 BinOp("*", Var(counter), Var("b"))))]))
        else:
            body.append(Store(BinOp("+", Var("buf"), Const(8)),
                              BinOp("+", Load(Var("buf"), 8), Var("b")), 8))
            body.append(Assign("acc", BinOp("+", Var("acc"),
                                            Load(BinOp("+", Var("buf"), Const(8)), 8))))
    body.append(Return(BinOp("&", Var("acc"), Const(0xFFFFFFFF))))
    return Function(name, ["a", "b"], body, local_arrays={"buf": 16})


def _stub_function(name: str) -> Function:
    """A function small enough to be skipped (shorter than the pivot stub)."""
    return Function(name, [], [Return(Const(0))])


def _inject_exotic(image: BinaryImage, name: str, category: str) -> None:
    """Hand-assemble a function exhibiting an unsupported idiom and add it."""
    if category == "push_rsp":
        instructions = [
            make("push", Reg(Register.RBP)),
            make("mov", Reg(Register.RBP), Reg(Register.RSP)),
            make("push", Reg(Register.RSP)),
            make("pop", Reg(Register.RAX)),
            make("mov", Reg(Register.RAX), Imm(0)),
            make("leave"),
            make("ret"),
        ] + [make("nop")] * 24
    elif category == "indexed_rsp":
        instructions = [
            make("push", Reg(Register.RBP)),
            make("mov", Reg(Register.RBP), Reg(Register.RSP)),
            make("mov", Reg(Register.RAX),
                 Mem(base=Register.RSP, index=Register.RCX, scale=8, disp=8)),
            make("leave"),
            make("ret"),
        ] + [make("nop")] * 24
    elif category == "high_pressure":
        # every register is live across an inner call: the call protocol needs
        # five scratch registers and the single spill slot is not enough
        loads = [make("mov", Reg(reg), Imm(index + 1))
                 for index, reg in enumerate(Register)
                 if reg not in (Register.RSP, Register.RBP)]
        uses = [make("add", Reg(Register.RAX), Reg(reg))
                for reg in Register if reg not in (Register.RSP, Register.RBP, Register.RAX)]
        instructions = (
            [make("push", Reg(Register.RBP)), make("mov", Reg(Register.RBP), Reg(Register.RSP))]
            + loads
            + [make("call", Imm(image.text.address))]
            + uses
            + [make("leave"), make("ret")]
        )
    else:
        raise ValueError(f"unknown exotic category {category!r}")
    code, _ = assemble(instructions, base_address=image.text.end)
    address = image.text.append(code)
    image.add_function(name, address, len(code))


def build_coreutils_corpus(programs: int = 20, functions_per_program: int = 12,
                           stub_fraction: float = 0.09, exotic_per_corpus: int = 4,
                           seed: int = 1) -> List[Tuple[BinaryImage, List[CorpusFunction]]]:
    """Build the corpus: a list of ``(image, functions)`` pairs.

    Defaults are scaled down from the paper's 107 programs / 1354 functions;
    the full size is reachable by raising ``programs`` and
    ``functions_per_program`` (see EXPERIMENTS.md).
    """
    rng = random.Random(seed)
    corpus: List[Tuple[BinaryImage, List[CorpusFunction]]] = []
    exotic_cycle = ["push_rsp", "indexed_rsp", "high_pressure"]
    exotic_budget = exotic_per_corpus
    for program_index in range(programs):
        functions: List[Function] = []
        entries: List[CorpusFunction] = []
        for function_index in range(functions_per_program):
            name = f"p{program_index}_f{function_index}"
            if rng.random() < stub_fraction:
                functions.append(_stub_function(name))
                entries.append(CorpusFunction(name, "stub"))
            else:
                functions.append(_normal_function(name, rng))
                entries.append(CorpusFunction(name, "normal"))
        image = compile_program(Program(functions), name=f"coreutil_{program_index}")
        if exotic_budget > 0:
            category = exotic_cycle[exotic_budget % len(exotic_cycle)]
            name = f"p{program_index}_exotic"
            _inject_exotic(image, name, category)
            entries.append(CorpusFunction(name, category))
            exotic_budget -= 1
        corpus.append((image, entries))
    return corpus
