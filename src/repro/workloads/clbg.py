"""The Computer Language Benchmarks Game ("shootout") workloads of §VII-C.

Ten benchmarks with the same roles as the paper's clbg selection — allocation
heavy (b-trees), permutation heavy (fannkuch), table driven (fasta and
fasta-redux), arithmetic kernels (mandelbrot, n-body, pidigits, sp-norm),
byte-stream processing (regex-redux, rev-comp) — expressed in mini-C at
laptop scale.  Floating-point kernels use fixed-point arithmetic (the ISA is
integer only); each benchmark returns a checksum so functional equivalence of
obfuscated variants can be asserted.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.lang.ast import (
    Assign,
    BinOp,
    Call,
    Const,
    For,
    Function,
    GlobalArray,
    If,
    Load,
    Program,
    Return,
    Store,
    Var,
    While,
)


def _loop(counter: str, limit, body):
    return For(Assign(counter, Const(0)), BinOp("<", Var(counter), limit),
               Assign(counter, BinOp("+", Var(counter), Const(1))), body)


def _btrees() -> Program:
    """Binary tree allocation/checksum benchmark (malloc/free heavy)."""
    build = Function("bt_build", ["depth"], [
        Assign("node", Call("malloc", [Const(24)])),
        If(BinOp("<=", Var("depth"), Const(0)), [
            Store(Var("node"), Const(0), 8),
            Store(BinOp("+", Var("node"), Const(8)), Const(0), 8),
        ], [
            Assign("left", Call("bt_build", [BinOp("-", Var("depth"), Const(1))])),
            Assign("right", Call("bt_build", [BinOp("-", Var("depth"), Const(1))])),
            Store(Var("node"), Var("left"), 8),
            Store(BinOp("+", Var("node"), Const(8)), Var("right"), 8),
        ]),
        Store(BinOp("+", Var("node"), Const(16)), Var("depth"), 8),
        Return(Var("node")),
    ])
    check = Function("bt_check", ["node"], [
        If(BinOp("==", Load(Var("node"), 8), Const(0)),
           [Return(Const(1))]),
        Assign("a", Call("bt_check", [Load(Var("node"), 8)])),
        Assign("b", Call("bt_check", [Load(BinOp("+", Var("node"), Const(8)), 8)])),
        Return(BinOp("+", Const(1), BinOp("+", Var("a"), Var("b")))),
    ])
    main = Function("b_trees", ["depth"], [
        Assign("total", Const(0)),
        _loop("i", Const(3), [
            Assign("tree", Call("bt_build", [Var("depth")])),
            Assign("total", BinOp("+", Var("total"), Call("bt_check", [Var("tree")]))),
            Assign("unused", Call("free", [Var("tree")])),
        ]),
        Return(Var("total")),
    ])
    return Program([main, build, check])


def _fannkuch() -> Program:
    """Pancake-flipping permutation benchmark."""
    main = Function("fannkuch", ["n"], [
        _loop("i", Var("n"), [Store(BinOp("+", Var("perm"), BinOp("*", Var("i"), Const(8))),
                                    Var("i"), 8)]),
        Assign("maxflips", Const(0)),
        Assign("rounds", Const(0)),
        While(BinOp("<", Var("rounds"), Const(24)), [
            # rotate the permutation
            Assign("first", Load(Var("perm"), 8)),
            _loop("i", BinOp("-", Var("n"), Const(1)), [
                Store(BinOp("+", Var("perm"), BinOp("*", Var("i"), Const(8))),
                      Load(BinOp("+", Var("perm"), BinOp("*", BinOp("+", Var("i"), Const(1)), Const(8))), 8), 8),
            ]),
            Store(BinOp("+", Var("perm"), BinOp("*", BinOp("-", Var("n"), Const(1)), Const(8))),
                  Var("first"), 8),
            # count flips on a working copy
            _loop("i", Var("n"), [Store(BinOp("+", Var("work"), BinOp("*", Var("i"), Const(8))),
                                        Load(BinOp("+", Var("perm"), BinOp("*", Var("i"), Const(8))), 8), 8)]),
            Assign("flips", Const(0)),
            Assign("k", Load(Var("work"), 8)),
            While(BinOp("!=", Var("k"), Const(0)), [
                # reverse work[0..k]
                Assign("lo", Const(0)),
                Assign("hi", Var("k")),
                While(BinOp("<", Var("lo"), Var("hi")), [
                    Assign("t", Load(BinOp("+", Var("work"), BinOp("*", Var("lo"), Const(8))), 8)),
                    Store(BinOp("+", Var("work"), BinOp("*", Var("lo"), Const(8))),
                          Load(BinOp("+", Var("work"), BinOp("*", Var("hi"), Const(8))), 8), 8),
                    Store(BinOp("+", Var("work"), BinOp("*", Var("hi"), Const(8))), Var("t"), 8),
                    Assign("lo", BinOp("+", Var("lo"), Const(1))),
                    Assign("hi", BinOp("-", Var("hi"), Const(1))),
                ]),
                Assign("flips", BinOp("+", Var("flips"), Const(1))),
                Assign("k", Load(Var("work"), 8)),
            ]),
            If(BinOp(">", Var("flips"), Var("maxflips")), [Assign("maxflips", Var("flips"))]),
            Assign("rounds", BinOp("+", Var("rounds"), Const(1))),
        ]),
        Return(Var("maxflips")),
    ], local_arrays={"perm": 128, "work": 128})
    return Program([main])


_FASTA_TABLE = bytes((i * 37 + 11) % 251 for i in range(64))


def _fasta(redux: bool) -> Program:
    """Pseudo-random sequence generation with a lookup table."""
    name = "fasta_redux" if redux else "fasta"
    table = GlobalArray(f"{name}_table", 64, initial=_FASTA_TABLE)
    body = [
        Assign("seed", Const(42)),
        Assign("checksum", Const(0)),
        _loop("i", Var("n"), [
            Assign("seed", BinOp("%", BinOp("+", BinOp("*", Var("seed"), Const(3877)), Const(29573)),
                                 Const(139968))),
            Assign("index", BinOp("&", Var("seed"), Const(63))),
            Assign("value", Load(BinOp("+", Var(f"{name}_table"), Var("index")), 1)),
            Assign("checksum", BinOp("+", Var("checksum"),
                                     BinOp("*", Var("value"), Const(2)) if redux else Var("value"))),
        ]),
        Return(Var("checksum")),
    ]
    return Program([Function(name, ["n"], body)], globals=[table])


def _mandelbrot() -> Program:
    """Fixed-point escape-time kernel (scale 1/256)."""
    main = Function("mandelbrot", ["size"], [
        Assign("count", Const(0)),
        _loop("y", Var("size"), [
            _loop("x", Var("size"), [
                Assign("cr", BinOp("-", BinOp("/", BinOp("*", Var("x"), Const(512)), Var("size")), Const(384))),
                Assign("ci", BinOp("-", BinOp("/", BinOp("*", Var("y"), Const(512)), Var("size")), Const(256))),
                Assign("zr", Const(0)),
                Assign("zi", Const(0)),
                Assign("iter", Const(0)),
                Assign("inside", Const(1)),
                While(BinOp("<", Var("iter"), Const(12)), [
                    Assign("zr2", BinOp("/", BinOp("*", Var("zr"), Var("zr")), Const(256))),
                    Assign("zi2", BinOp("/", BinOp("*", Var("zi"), Var("zi")), Const(256))),
                    If(BinOp(">", BinOp("+", Var("zr2"), Var("zi2")), Const(1024)), [
                        Assign("inside", Const(0)),
                        Assign("iter", Const(99)),
                    ], [
                        Assign("zi", BinOp("+", BinOp("/", BinOp("*", BinOp("*", Var("zr"), Var("zi")), Const(2)), Const(256)), Var("ci"))),
                        Assign("zr", BinOp("+", BinOp("-", Var("zr2"), Var("zi2")), Var("cr"))),
                        Assign("iter", BinOp("+", Var("iter"), Const(1))),
                    ]),
                ]),
                Assign("count", BinOp("+", Var("count"), Var("inside"))),
            ]),
        ]),
        Return(Var("count")),
    ])
    return Program([main])


def _nbody() -> Program:
    """Fixed-point two-body energy integration."""
    main = Function("n_body", ["steps"], [
        Assign("x", Const(1000)), Assign("v", Const(0)),
        Assign("y", Const(-500 & ((1 << 64) - 1))), Assign("w", Const(30)),
        Assign("energy", Const(0)),
        _loop("i", Var("steps"), [
            Assign("dx", BinOp("-", Var("x"), Var("y"))),
            Assign("force", BinOp("/", Const(1 << 20), BinOp("+", BinOp("*", Var("dx"), Var("dx")), Const(1)))),
            Assign("v", BinOp("-", Var("v"), Var("force"))),
            Assign("w", BinOp("+", Var("w"), Var("force"))),
            Assign("x", BinOp("+", Var("x"), BinOp("/", Var("v"), Const(16)))),
            Assign("y", BinOp("+", Var("y"), BinOp("/", Var("w"), Const(16)))),
            Assign("energy", BinOp("+", Var("energy"), BinOp("&", BinOp("+", Var("v"), Var("w")), Const(0xFFFF)))),
        ]),
        Return(BinOp("&", Var("energy"), Const(0xFFFFFFFF))),
    ])
    return Program([main])


def _pidigits() -> Program:
    """Digit-by-digit pi spigot (integer arithmetic)."""
    main = Function("pidigits", ["n"], [
        Assign("q", Const(1)), Assign("r", Const(0)), Assign("t", Const(1)),
        Assign("k", Const(1)), Assign("digit", Const(3)), Assign("m", Const(3)),
        Assign("produced", Const(0)), Assign("checksum", Const(0)),
        While(BinOp("<", Var("produced"), Var("n")), [
            If(BinOp("<", BinOp("-", BinOp("+", BinOp("*", Var("q"), Const(4)), Var("r")), Var("t")),
                     BinOp("*", Var("m"), Var("t"))), [
                Assign("checksum", BinOp("+", BinOp("*", Var("checksum"), Const(10)), Var("m"))),
                Assign("checksum", BinOp("%", Var("checksum"), Const(1000000007))),
                Assign("produced", BinOp("+", Var("produced"), Const(1))),
                Assign("tmp", BinOp("*", Const(10), BinOp("-", Var("r"), BinOp("*", Var("m"), Var("t"))))),
                Assign("m", BinOp("-", BinOp("/", BinOp("*", Const(10), BinOp("+", BinOp("*", Const(3), Var("q")), Var("r"))), Var("t")), BinOp("*", Const(10), Var("m")))),
                Assign("q", BinOp("*", Var("q"), Const(10))),
                Assign("r", Var("tmp")),
            ], [
                Assign("tmp", BinOp("*", BinOp("+", BinOp("*", Const(2), Var("q")), Var("r")), BinOp("+", BinOp("*", Const(2), Var("k")), Const(1)))),
                Assign("m", BinOp("/", BinOp("+", BinOp("*", Var("q"), BinOp("+", BinOp("*", Const(7), Var("k")), Const(2))), BinOp("*", Var("r"), BinOp("+", BinOp("*", Const(2), Var("k")), Const(1)))),
                                  BinOp("*", Var("t"), BinOp("+", BinOp("*", Const(2), Var("k")), Const(1))))),
                Assign("q", BinOp("*", Var("q"), Var("k"))),
                Assign("t", BinOp("*", Var("t"), BinOp("+", BinOp("*", Const(2), Var("k")), Const(1)))),
                Assign("r", Var("tmp")),
                Assign("k", BinOp("+", Var("k"), Const(1))),
            ]),
        ]),
        Return(Var("checksum")),
    ])
    return Program([main])


_REGEX_INPUT = bytes((i * 17 + 3) % 256 for i in range(96))


def _regex_redux() -> Program:
    """Pattern-count benchmark over a byte buffer."""
    data = GlobalArray("regex_input", len(_REGEX_INPUT), initial=_REGEX_INPUT)
    main = Function("regex_redux", ["n"], [
        Assign("count", Const(0)),
        _loop("i", Var("n"), [
            Assign("a", Load(BinOp("+", Var("regex_input"), BinOp("%", Var("i"), Const(95))), 1)),
            Assign("b", Load(BinOp("+", Var("regex_input"), BinOp("%", BinOp("+", Var("i"), Const(1)), Const(95))), 1)),
            If(BinOp("==", BinOp("&", Var("a"), Const(0x0F)), BinOp("&", Var("b"), Const(0x0F))),
               [Assign("count", BinOp("+", Var("count"), Const(1)))]),
            If(BinOp(">", Var("a"), Const(200)),
               [Assign("count", BinOp("+", Var("count"), Const(2)))]),
        ]),
        Return(Var("count")),
    ])
    return Program([main], globals=[data])


def _rev_comp() -> Program:
    """Reverse-complement over a byte buffer."""
    data = GlobalArray("revcomp_input", len(_REGEX_INPUT), initial=_REGEX_INPUT)
    main = Function("rev_comp", ["n"], [
        Assign("lo", Const(0)),
        Assign("hi", BinOp("-", Var("n"), Const(1))),
        While(BinOp("<", Var("lo"), Var("hi")), [
            Assign("a", Load(BinOp("+", Var("revcomp_input"), Var("lo")), 1)),
            Assign("b", Load(BinOp("+", Var("revcomp_input"), Var("hi")), 1)),
            Store(BinOp("+", Var("revcomp_input"), Var("lo")), BinOp("^", Var("b"), Const(0xFF)), 1),
            Store(BinOp("+", Var("revcomp_input"), Var("hi")), BinOp("^", Var("a"), Const(0xFF)), 1),
            Assign("lo", BinOp("+", Var("lo"), Const(1))),
            Assign("hi", BinOp("-", Var("hi"), Const(1))),
        ]),
        Assign("checksum", Const(0)),
        _loop("i", Var("n"), [
            Assign("checksum", BinOp("+", Var("checksum"),
                                     Load(BinOp("+", Var("revcomp_input"), Var("i")), 1))),
        ]),
        Return(Var("checksum")),
    ])
    return Program([main], globals=[data])


def _sp_norm() -> Program:
    """Spectral-norm style kernel with a helper function called in a tight loop."""
    helper = Function("sp_a", ["i", "j"], [
        Return(BinOp("/", Const(1 << 16),
                     BinOp("+", BinOp("*", BinOp("+", Var("i"), Var("j")),
                                      BinOp("+", BinOp("+", Var("i"), Var("j")), Const(1))),
                           BinOp("+", BinOp("*", Const(2), Var("i")), Const(2))))),
    ])
    main = Function("sp_norm", ["n"], [
        Assign("total", Const(0)),
        _loop("i", Var("n"), [
            _loop("j", Var("n"), [
                Assign("total", BinOp("+", Var("total"), Call("sp_a", [Var("i"), Var("j")]))),
            ]),
        ]),
        Return(Var("total")),
    ])
    return Program([main, helper])


#: benchmark name -> (program builder, entry function, argument, obfuscation targets)
CLBG_BENCHMARKS: Dict[str, Tuple] = {
    "b-trees": (_btrees, "b_trees", 3, ("b_trees", "bt_build", "bt_check")),
    "fannkuch": (_fannkuch, "fannkuch", 6, ("fannkuch",)),
    "fasta": (lambda: _fasta(False), "fasta", 48, ("fasta",)),
    "fasta-redux": (lambda: _fasta(True), "fasta_redux", 48, ("fasta_redux",)),
    "mandelbrot": (_mandelbrot, "mandelbrot", 8, ("mandelbrot",)),
    "n-body": (_nbody, "n_body", 32, ("n_body",)),
    "pidigits": (_pidigits, "pidigits", 12, ("pidigits",)),
    "regex-redux": (lambda: _regex_redux(), "regex_redux", 64, ("regex_redux",)),
    "rev-comp": (_rev_comp, "rev_comp", 64, ("rev_comp",)),
    "sp-norm": (_sp_norm, "sp_norm", 6, ("sp_norm", "sp_a")),
}


def build_clbg_program(name: str) -> Tuple[Program, str, int, Tuple[str, ...]]:
    """Return ``(program, entry_function, argument, obfuscation_targets)``."""
    builder, entry, argument, targets = CLBG_BENCHMARKS[name]
    return builder(), entry, argument, targets
