"""base64 reference implementation for the §VII-C3 case study.

The encoder mirrors the structure of the b64.c reference the paper uses:
a 64-entry alphabet table indexed by 6-bit groups of the input.  Two entry
points are provided: ``base64_encode`` (buffer in, buffer out) and
``base64_check``, the secret-finding target that accepts exactly one 6-byte
input (the one whose encoding matches an embedded reference), reproducing the
"recover a 6-byte input" experiment.
"""

from __future__ import annotations

from typing import Tuple

from repro.lang.ast import (
    Assign,
    BinOp,
    Call,
    Const,
    For,
    Function,
    GlobalArray,
    If,
    Load,
    Program,
    Return,
    Store,
    Var,
)

#: The standard base64 alphabet.
ALPHABET = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"


def reference_encode(data: bytes) -> bytes:
    """Plain-Python reference encoder (used by tests and to embed the target)."""
    out = bytearray()
    for index in range(0, len(data), 3):
        chunk = data[index:index + 3]
        block = int.from_bytes(chunk.ljust(3, b"\0"), "big")
        for position in range(4):
            if position <= len(chunk):
                out.append(ALPHABET[(block >> (18 - 6 * position)) & 0x3F])
            else:
                out.append(ord("="))
    return bytes(out)


def _encode_function() -> Function:
    """``base64_encode(src, n, dst)``: encode ``n`` bytes, return output length."""
    return Function("base64_encode", ["src", "n", "dst"], [
        Assign("i", Const(0)),
        Assign("o", Const(0)),
        For(Assign("i", Const(0)), BinOp("<", Var("i"), Var("n")),
            Assign("i", BinOp("+", Var("i"), Const(3))), [
                Assign("b0", Load(BinOp("+", Var("src"), Var("i")), 1)),
                Assign("b1", Const(0)),
                Assign("b2", Const(0)),
                If(BinOp("<", BinOp("+", Var("i"), Const(1)), Var("n")),
                   [Assign("b1", Load(BinOp("+", Var("src"), BinOp("+", Var("i"), Const(1))), 1))]),
                If(BinOp("<", BinOp("+", Var("i"), Const(2)), Var("n")),
                   [Assign("b2", Load(BinOp("+", Var("src"), BinOp("+", Var("i"), Const(2))), 1))]),
                Assign("block", BinOp("|", BinOp("<<", Var("b0"), Const(16)),
                                      BinOp("|", BinOp("<<", Var("b1"), Const(8)), Var("b2")))),
                Store(BinOp("+", Var("dst"), Var("o")),
                      Load(BinOp("+", Var("b64_alphabet"),
                                 BinOp("&", BinOp(">>", Var("block"), Const(18)), Const(63))), 1), 1),
                Store(BinOp("+", Var("dst"), BinOp("+", Var("o"), Const(1))),
                      Load(BinOp("+", Var("b64_alphabet"),
                                 BinOp("&", BinOp(">>", Var("block"), Const(12)), Const(63))), 1), 1),
                Store(BinOp("+", Var("dst"), BinOp("+", Var("o"), Const(2))),
                      Load(BinOp("+", Var("b64_alphabet"),
                                 BinOp("&", BinOp(">>", Var("block"), Const(6)), Const(63))), 1), 1),
                Store(BinOp("+", Var("dst"), BinOp("+", Var("o"), Const(3))),
                      Load(BinOp("+", Var("b64_alphabet"),
                                 BinOp("&", Var("block"), Const(63))), 1), 1),
                Assign("o", BinOp("+", Var("o"), Const(4))),
            ]),
        Return(Var("o")),
    ])


def base64_program() -> Program:
    """A program exposing ``base64_encode`` plus the alphabet table."""
    return Program([_encode_function()],
                   globals=[GlobalArray("b64_alphabet", 64, initial=ALPHABET)])


def base64_check_program(secret: bytes = b"raindr") -> Tuple[Program, bytes]:
    """The case-study target: accept only the input that encodes to the reference.

    Returns ``(program, secret)``; the secret is the 6-byte input the attacker
    must recover (G1).
    """
    if len(secret) != 6:
        raise ValueError("the case study uses a 6-byte secret input")
    expected = reference_encode(secret)
    checker = Function("base64_check", ["src"], [
        Assign("len", Call("base64_encode", [Var("src"), Const(6), Var("out")])),
        Assign("ok", Const(1)),
        For(Assign("i", Const(0)), BinOp("<", Var("i"), Const(8)),
            Assign("i", BinOp("+", Var("i"), Const(1))), [
                If(BinOp("!=", Load(BinOp("+", Var("out"), Var("i")), 1),
                         Load(BinOp("+", Var("b64_expected"), Var("i")), 1)),
                   [Assign("ok", Const(0))]),
            ]),
        Return(Var("ok")),
    ], local_arrays={"out": 16})
    program = Program(
        [checker, _encode_function()],
        globals=[GlobalArray("b64_alphabet", 64, initial=ALPHABET),
                 GlobalArray("b64_expected", 8, initial=expected[:8])],
    )
    return program, secret
