"""Workloads of the evaluation: RandomFuns, CLBG, coreutils-like corpus, base64."""

from repro.workloads.randomfuns import (
    CONTROL_STRUCTURES,
    RandomFunSpec,
    generate_random_function,
    generate_table2_suite,
)
from repro.workloads.base64_ref import base64_program, base64_check_program
from repro.workloads.clbg import CLBG_BENCHMARKS, build_clbg_program
from repro.workloads.coreutils import build_coreutils_corpus

__all__ = [
    "CONTROL_STRUCTURES",
    "RandomFunSpec",
    "generate_random_function",
    "generate_table2_suite",
    "base64_program",
    "base64_check_program",
    "CLBG_BENCHMARKS",
    "build_clbg_program",
    "build_coreutils_corpus",
]
