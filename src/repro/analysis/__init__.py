"""Binary-level analyses used by the ROP rewriter.

These play the role of the off-the-shelf tools in the paper's pipeline
(Figure 2): CFG reconstruction (Ghidra/angr/radare2), liveness analysis and
the data-flow analysis that identifies input-derived ("symbolic") registers
for the P3 predicate.
"""

from repro.analysis.cfg_recovery import BasicBlock, FunctionCFG, recover_cfg, CFGError
from repro.analysis.liveness import LivenessResult, compute_liveness
from repro.analysis.dataflow import compute_symbolic_registers

__all__ = [
    "BasicBlock",
    "FunctionCFG",
    "CFGError",
    "recover_cfg",
    "LivenessResult",
    "compute_liveness",
    "compute_symbolic_registers",
]
