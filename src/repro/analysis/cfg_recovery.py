"""Control-flow graph recovery from function bytes.

The recovery mirrors what the paper obtains from Ghidra: recursive-descent
disassembly within the function's symbol range, splitting blocks at branch
targets, with direct branch targets taken from instruction immediates.  The
reproduction's compiler emits only direct intra-procedural branches (indirect
jumps would come from dense switch lowering, which the coverage study treats
as a recovery failure, matching the paper's single CFG-reconstruction
failure), so recursive descent is reliable here just as Ghidra was for the
authors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.binary.image import BinaryImage
from repro.binary.symbols import Symbol
from repro.isa.disassembler import disassemble_range
from repro.isa.encoding import DecodeError
from repro.isa.instructions import Instruction, Mnemonic
from repro.isa.operands import Imm


class CFGError(Exception):
    """Raised when a function's control flow cannot be recovered."""


@dataclass
class BasicBlock:
    """A basic block of recovered code.

    Attributes:
        start: address of the first instruction.
        instructions: ``(address, instruction)`` pairs in program order.
        successors: addresses of successor blocks inside the function.
        is_exit: True when the block ends the function (``ret`` terminated).
    """

    start: int
    instructions: List[Tuple[int, Instruction]] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)
    is_exit: bool = False

    @property
    def end(self) -> int:
        """One past the last byte of the block."""
        if not self.instructions:
            return self.start
        last_address, last_instruction = self.instructions[-1]
        from repro.isa.encoding import encoded_length

        return last_address + encoded_length(last_instruction)

    @property
    def terminator(self) -> Optional[Instruction]:
        """The last instruction of the block, if any."""
        return self.instructions[-1][1] if self.instructions else None


@dataclass
class FunctionCFG:
    """The recovered control-flow graph of one function.

    Attributes:
        name: function name.
        entry: entry address.
        blocks: mapping from block start address to :class:`BasicBlock`.
    """

    name: str
    entry: int
    blocks: Dict[int, BasicBlock]

    def block_order(self) -> List[BasicBlock]:
        """Blocks sorted by address (the original layout order)."""
        return [self.blocks[a] for a in sorted(self.blocks)]

    def instruction_count(self) -> int:
        """Total number of instructions across all blocks."""
        return sum(len(block.instructions) for block in self.blocks.values())

    def predecessors(self) -> Dict[int, Set[int]]:
        """Mapping from block start to the set of predecessor block starts."""
        preds: Dict[int, Set[int]] = {start: set() for start in self.blocks}
        for block in self.blocks.values():
            for successor in block.successors:
                preds.setdefault(successor, set()).add(block.start)
        return preds


def _branch_target(instruction: Instruction) -> Optional[int]:
    if instruction.mnemonic in (Mnemonic.JMP, Mnemonic.JCC):
        operand = instruction.operands[0]
        if isinstance(operand, Imm):
            return operand.value
        return None
    return None


def recover_cfg(image: BinaryImage, function_name: str) -> FunctionCFG:
    """Recover the CFG of ``function_name`` from its bytes in ``image``.

    Raises:
        CFGError: when the function contains an indirect intra-procedural
            branch whose targets cannot be determined, or when its bytes
            cannot be fully disassembled.
    """
    symbol: Symbol = image.function(function_name)
    try:
        code = image.function_bytes(function_name)
        listing = disassemble_range(code)
    except (DecodeError, ValueError) as exc:
        raise CFGError(f"{function_name}: cannot disassemble: {exc}") from exc

    base = symbol.address
    end = symbol.address + symbol.size
    instructions: Dict[int, Instruction] = {base + off: ins for off, ins in listing}

    # collect leaders: entry, branch targets, fall-throughs of branches
    leaders: Set[int] = {base}
    ordered = sorted(instructions)
    for index, address in enumerate(ordered):
        instruction = instructions[address]
        if instruction.mnemonic in (Mnemonic.JMP, Mnemonic.JCC):
            target = _branch_target(instruction)
            if target is None:
                raise CFGError(
                    f"{function_name}: indirect branch at {address:#x} "
                    f"({instruction}) has unresolved targets"
                )
            if not (base <= target < end):
                raise CFGError(
                    f"{function_name}: branch at {address:#x} targets {target:#x} "
                    "outside the function"
                )
            leaders.add(target)
            if index + 1 < len(ordered):
                leaders.add(ordered[index + 1])
        elif instruction.mnemonic is Mnemonic.RET and index + 1 < len(ordered):
            leaders.add(ordered[index + 1])

    # build blocks
    blocks: Dict[int, BasicBlock] = {}
    sorted_leaders = sorted(leaders)
    for leader_index, leader in enumerate(sorted_leaders):
        block = BasicBlock(start=leader)
        limit = sorted_leaders[leader_index + 1] if leader_index + 1 < len(sorted_leaders) else end
        for address in ordered:
            if leader <= address < limit:
                block.instructions.append((address, instructions[address]))
        if not block.instructions:
            continue
        terminator_address, terminator = block.instructions[-1]
        if terminator.mnemonic is Mnemonic.RET:
            block.is_exit = True
        elif terminator.mnemonic is Mnemonic.JMP:
            block.successors = [_branch_target(terminator)]
        elif terminator.mnemonic is Mnemonic.JCC:
            fall_through = block.end
            block.successors = [_branch_target(terminator)]
            if fall_through < end:
                block.successors.append(fall_through)
        else:
            # falls through into the next leader
            if block.end < end:
                block.successors = [block.end]
        blocks[leader] = block

    if base not in blocks:
        raise CFGError(f"{function_name}: no code at the entry point")
    return FunctionCFG(name=function_name, entry=base, blocks=blocks)
