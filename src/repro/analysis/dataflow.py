"""Forward data-flow analysis identifying input-derived registers.

The P3 predicate (§V-C) must be coupled with *symbolic registers*: live
registers whose value derives from the function's inputs and may concur to
its outputs.  The paper uses angr for this; the reproduction runs a forward
taint analysis over the recovered CFG, tracking both registers and
frame-pointer-relative stack slots (compiled code spills arguments to the
frame immediately, so register-only tracking would lose everything).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

from repro.analysis.cfg_recovery import FunctionCFG
from repro.isa.instructions import Instruction, Mnemonic
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import ARG_REGISTERS, CALLER_SAVED, Register


@dataclass(frozen=True)
class TaintState:
    """Immutable taint fact: tainted registers and tainted frame slots."""

    registers: frozenset
    slots: frozenset

    def union(self, other: "TaintState") -> "TaintState":
        return TaintState(self.registers | other.registers, self.slots | other.slots)


def _operand_tainted(operand, state: TaintState) -> bool:
    if isinstance(operand, Reg):
        return operand.reg in state.registers
    if isinstance(operand, Imm):
        return False
    if isinstance(operand, Mem):
        if operand.base is Register.RBP and operand.index is None:
            return operand.disp in state.slots
        # loads through a tainted pointer produce tainted data
        regs = {r for r in (operand.base, operand.index) if r is not None}
        return bool(regs & state.registers)
    return False


def _transfer(instruction: Instruction, state: TaintState) -> TaintState:
    registers = set(state.registers)
    slots = set(state.slots)
    m = instruction.mnemonic
    ops = instruction.operands

    def taint_of_sources(sources) -> bool:
        return any(_operand_tainted(s, state) for s in sources)

    if m is Mnemonic.CALL:
        # conservatively: the return value is tainted if any argument register is
        tainted_args = any(r in registers for r in ARG_REGISTERS)
        for reg in CALLER_SAVED:
            registers.discard(reg)
        if tainted_args:
            registers.add(Register.RAX)
        return TaintState(frozenset(registers), frozenset(slots))
    if m in (Mnemonic.RET, Mnemonic.LEAVE, Mnemonic.JMP, Mnemonic.JCC,
             Mnemonic.CMP, Mnemonic.TEST, Mnemonic.NOP, Mnemonic.HLT,
             Mnemonic.PUSH, Mnemonic.CQO):
        return state
    if not ops:
        return state

    destination = ops[0]
    if m is Mnemonic.POP:
        if isinstance(destination, Reg):
            registers.discard(destination.reg)
        return TaintState(frozenset(registers), frozenset(slots))

    if m in (Mnemonic.MOV, Mnemonic.MOVZX, Mnemonic.MOVSX):
        tainted = taint_of_sources(ops[1:])
    elif m in (Mnemonic.SET,):
        tainted = False
    elif m is Mnemonic.LEA:
        tainted = taint_of_sources(ops[1:])
    elif m in (Mnemonic.NEG, Mnemonic.NOT, Mnemonic.INC, Mnemonic.DEC):
        tainted = _operand_tainted(destination, state)
    else:
        tainted = _operand_tainted(destination, state) or taint_of_sources(ops[1:])

    if isinstance(destination, Reg):
        if tainted:
            registers.add(destination.reg)
        else:
            registers.discard(destination.reg)
    elif isinstance(destination, Mem) and destination.base is Register.RBP and destination.index is None:
        if tainted:
            slots.add(destination.disp)
        else:
            slots.discard(destination.disp)
    return TaintState(frozenset(registers), frozenset(slots))


def compute_symbolic_registers(cfg: FunctionCFG) -> Dict[int, Set[Register]]:
    """Return, per instruction address, the set of input-derived registers.

    The entry state taints the argument registers.  The result maps every
    instruction address to the registers tainted *before* that instruction
    executes, which is where P3 insertion consults it.
    """
    entry_state = TaintState(frozenset(ARG_REGISTERS), frozenset())
    in_states: Dict[int, TaintState] = {cfg.entry: entry_state}
    empty = TaintState(frozenset(), frozenset())

    changed = True
    while changed:
        changed = False
        for block in cfg.block_order():
            state = in_states.get(block.start, empty if block.start != cfg.entry else entry_state)
            for _, instruction in block.instructions:
                state = _transfer(instruction, state)
            for successor in block.successors:
                merged = in_states.get(successor, None)
                new = state if merged is None else merged.union(state)
                if new != merged:
                    in_states[successor] = new
                    changed = True

    per_instruction: Dict[int, Set[Register]] = {}
    for block in cfg.block_order():
        state = in_states.get(block.start, empty if block.start != cfg.entry else entry_state)
        for address, instruction in block.instructions:
            per_instruction[address] = set(state.registers)
            state = _transfer(instruction, state)
    return per_instruction
