"""Static cross-tier contract checker and determinism-hygiene lint.

``python -m repro.analysis.lint`` verifies, without executing any guest
code, that the independently implemented emulator tiers still agree with
the declarative per-mnemonic contracts in :mod:`repro.cpu.semantics`, and
that the concurrency-sensitive layers keep their determinism discipline.

Contract checks (driven by the tier registrations each tier module makes
at import time):

* **Coverage** — every dispatch-table mnemonic is either covered by a tier
  or on that tier's explicit decline list, and every tier the checker
  expects has registered at all.  (The partition itself is validated by
  ``register_tier`` at import; the checker surfaces violations as findings
  instead of an import-time stack trace.)
* **Flag slots** — for each covered mnemonic, the flag slots the tier's
  source actually assigns (``state.cf = …`` attribute stores, or ``cf = …``
  assignments inside the codegen tier's emitted source text) are computed
  transitively through same-module helper calls and compared against the
  registry: everything in ``flags_written`` must be assigned, and nothing
  outside ``flags_written | flags_preserved`` may be.  This catches the
  PR 5 bug class — a tier quietly clobbering or skipping a flag — at lint
  time instead of in a hypothesis differential.
* **Zero-count guards** — every tier covering a mnemonic with the
  ``zero_count_noop`` special (the shifts) must contain a ``count == 0``
  early-out reachable from its implementing function(s).

Hygiene checks (AST-based, over ``src/repro``):

* **env-read** — ``os.environ`` *reads* anywhere outside
  :mod:`repro.knobs` (writes — e.g. handing a worker its snapshot-budget
  share — are allowed).
* **wallclock** — wall-clock and module-level RNG calls in the
  byte-identity-gated layers (``evaluation/parallel``, ``attacks/frontier``,
  ``service/``), unless annotated ``# lint: allow-wallclock — reason``.
  Seeded ``random.Random(...)`` construction is always allowed.
* **mutable-global** — ``global`` statements (module-level mutable state
  touched from worker code paths) in the same layers, unless annotated
  ``# lint: allow-global — reason``.
* **broad-except** — ``except Exception:``/bare ``except:`` anywhere in
  ``src/repro``, unless annotated ``# lint: allow-broad-except — reason``
  on or directly above the handler.  Deliberate blast-containment
  catch-alls carry the annotation; everything else must narrow.

Exit status: 0 when clean, 1 when any finding is reported.
"""

from __future__ import annotations

import argparse
import ast
import importlib
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set

#: Tier names the checker requires to have registered (a future native
#: tier appends itself here and to the registrations).
EXPECTED_TIERS: Sequence[str] = ("handlers", "closures", "codegen", "shadow")

#: Modules whose import triggers the tier registrations.
TIER_MODULES: Sequence[str] = ("repro.cpu.emulator", "repro.cpu.trace",
                               "repro.cpu.codegen", "repro.attacks.shadow")

#: Layers whose outputs are byte-identity-gated: wall-clock and ambient
#: RNG need an explicit annotation here.
DETERMINISM_SCOPED = ("evaluation/parallel.py", "attacks/frontier.py",
                      "service/")

#: Mirrors :data:`repro.cpu.semantics.FLAGS`.  Spelled out here so the AST
#: fact collectors work even when the registry itself fails to import (the
#: clean path asserts agreement in :func:`check_tiers`).
_FLAG_NAMES = frozenset({"cf", "of", "zf", "sf"})

#: How many lines above a construct an ``# lint: allow-…`` annotation may
#: sit (multi-line justification comments).
_ALLOW_WINDOW = 4

_WALLCLOCK_TIME_ATTRS = frozenset({"time", "monotonic", "perf_counter",
                                   "time_ns", "monotonic_ns",
                                   "perf_counter_ns"})
_WALLCLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: Leading ``name =`` chain matcher for emitted source lines.
_ASSIGN_HEAD = re.compile(r"([A-Za-z_]\w*)\s*=(?!=)\s*")


@dataclass(frozen=True)
class Finding:
    """One reported contract or hygiene violation."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class _FunctionFacts:
    """Statically extracted facts about one function/method."""

    name: str
    line: int
    direct_flags: Set[str] = field(default_factory=set)
    calls: Set[str] = field(default_factory=set)
    zero_guard: bool = False
    # fixpoint results
    flags: Set[str] = field(default_factory=set)
    guarded: bool = False


def _emitted_strings(call: ast.Call) -> Iterator[str]:
    """The constant text of string arguments to an ``emit(...)`` call."""
    for arg in call.args:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            yield arg.value
        elif isinstance(arg, ast.JoinedStr):
            parts: List[str] = []
            for value in arg.values:
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    parts.append(value.value)
                else:
                    parts.append("\x00")  # formatted hole: never a flag name
            yield "".join(parts)
        elif isinstance(arg, ast.IfExp):
            # emit(f"of = …" if one else "of = 0") — both arms are emitted
            for branch in (arg.body, arg.orelse):
                if isinstance(branch, ast.Constant) and isinstance(branch.value, str):
                    yield branch.value
                elif isinstance(branch, ast.JoinedStr):
                    texts: List[str] = []
                    for value in branch.values:
                        if isinstance(value, ast.Constant) and \
                                isinstance(value.value, str):
                            texts.append(value.value)
                        else:
                            texts.append("\x00")
                    yield "".join(texts)


def _emitted_assigned_names(text: str) -> Set[str]:
    """Names assigned by one emitted source line (handles ``a = b = …``)."""
    names: Set[str] = set()
    remainder = text.lstrip()
    while True:
        match = _ASSIGN_HEAD.match(remainder)
        if match is None:
            return names
        names.add(match.group(1))
        remainder = remainder[match.end():]


def _is_zero_compare(test: ast.expr) -> bool:
    """``<name> == 0`` / ``0 == <name>`` (the masked-count zero test)."""
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return False
    if not isinstance(test.ops[0], ast.Eq):
        return False
    operands = [test.left, test.comparators[0]]
    return any(isinstance(op, ast.Constant) and op.value == 0
               for op in operands)


def _called_name(call: ast.Call) -> Optional[str]:
    """Same-module callee name: ``helper(...)`` or ``self.helper(...)``."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute) and \
            isinstance(func.value, ast.Name) and func.value.id == "self":
        return func.attr
    return None


def _collect_function_facts(function: ast.AST, name: str,
                            emitted: bool) -> _FunctionFacts:
    facts = _FunctionFacts(name=name, line=getattr(function, "lineno", 0))
    for node in ast.walk(function):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                elements = target.elts if isinstance(target, ast.Tuple) \
                    else [target]
                for element in elements:
                    if isinstance(element, ast.Attribute) and \
                            element.attr in _FLAG_NAMES:
                        facts.direct_flags.add(element.attr)
        elif isinstance(node, ast.Call):
            callee = _called_name(node)
            if callee is not None:
                facts.calls.add(callee)
            if emitted and callee in ("emit", "line"):
                for text in _emitted_strings(node):
                    facts.direct_flags |= (_emitted_assigned_names(text)
                                           & _FLAG_NAMES)
        elif isinstance(node, ast.If) and _is_zero_compare(node.test):
            if any(isinstance(child, ast.Return)
                   for statement in node.body
                   for child in ast.walk(statement)):
                facts.zero_guard = True
    return facts


def _module_function_facts(tree: ast.Module,
                           emitted: bool) -> Dict[str, _FunctionFacts]:
    """Facts for every module-level function and class method, after a
    transitive-closure fixpoint over same-module calls."""
    table: Dict[str, _FunctionFacts] = {}

    def register(node: ast.AST, name: str) -> None:
        table[name] = _collect_function_facts(node, name, emitted)

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            register(node, node.name)
        elif isinstance(node, ast.ClassDef):
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    register(member, member.name)

    for facts in table.values():
        facts.flags = set(facts.direct_flags)
        facts.guarded = facts.zero_guard
    changed = True
    while changed:
        changed = False
        for facts in table.values():
            for callee in facts.calls:
                other = table.get(callee)
                if other is None:
                    continue
                if not other.flags <= facts.flags:
                    facts.flags |= other.flags
                    changed = True
                if other.guarded and not facts.guarded:
                    facts.guarded = True
                    changed = True
    return table


def _relative(path: Path, root: Path) -> str:
    try:
        return str(path.relative_to(root))
    except ValueError:
        return str(path)


# -- contract checks ----------------------------------------------------------

def check_tiers(root: Path) -> List[Finding]:
    """Coverage, flag-slot and zero-count-guard checks for every tier.

    Importing :mod:`repro.cpu.semantics` pulls in the whole ``repro.cpu``
    package, whose tier modules call ``register_tier`` at import time — so
    a partition error in any registration surfaces right at the guarded
    import below, and becomes a reported finding rather than a checker
    stack trace.
    """
    try:
        from repro.cpu import semantics
    except Exception as exc:  # lint: allow-broad-except — any import-time
        # failure of the registry or a registering tier (including a
        # register_tier partition ValueError) must become a finding, not a
        # checker crash.
        return [Finding(
            "src/repro/cpu/semantics.py", 1, "tier-import",
            f"semantics registry (or a registering tier) failed to "
            f"import: {exc}")]
    if frozenset(semantics.FLAGS) != _FLAG_NAMES:
        return [Finding(
            "src/repro/cpu/semantics.py", 1, "tier-import",
            f"registry flag slots {sorted(semantics.FLAGS)} diverge from "
            f"the checker's {sorted(_FLAG_NAMES)}")]
    findings: List[Finding] = []
    for module_name in TIER_MODULES:
        try:
            importlib.import_module(module_name)
        except Exception as exc:  # lint: allow-broad-except — a tier whose
            # import fails (including a register_tier partition error) must
            # become a finding, not a checker crash.
            findings.append(Finding(module_name.replace(".", "/") + ".py", 1,
                                    "tier-import",
                                    f"tier module failed to import: {exc}"))
    for tier_name in EXPECTED_TIERS:
        if semantics.tier(tier_name) is None:
            findings.append(Finding("src/repro/cpu/semantics.py", 1,
                                    "tier-missing",
                                    f"expected tier {tier_name!r} never "
                                    f"registered"))
    for registration in semantics.TIERS.values():
        module = sys.modules.get(registration.module)
        if module is None or getattr(module, "__file__", None) is None:
            continue
        if registration.flag_style == "none":
            continue
        path = Path(module.__file__)
        tree = ast.parse(path.read_text(), filename=str(path))
        table = _module_function_facts(
            tree, emitted=registration.flag_style == "emitted")
        rel = _relative(path, root)
        for mnemonic, functions in sorted(registration.covered.items(),
                                          key=lambda item: item[0].name):
            if not functions:
                continue
            contract = semantics.SEMANTICS[mnemonic]
            allowed = contract.flags_written | contract.flags_preserved
            assigned: Set[str] = set()
            guarded = False
            for function_name in functions:
                facts = table.get(function_name)
                if facts is None:
                    findings.append(Finding(
                        rel, 1, "tier-function",
                        f"tier {registration.name!r} maps "
                        f"{mnemonic.name} to {function_name!r}, which does "
                        f"not exist in {registration.module}"))
                    continue
                assigned |= facts.flags
                guarded = guarded or facts.guarded
            extra = assigned - allowed
            if extra:
                findings.append(Finding(
                    rel, table[functions[0]].line if functions[0] in table
                    else 1, "flag-contract",
                    f"tier {registration.name!r} assigns flag(s) "
                    f"{sorted(extra)} for {mnemonic.name}, but the registry "
                    f"declares writes={sorted(contract.flags_written)} "
                    f"preserved={sorted(contract.flags_preserved)}"))
            missing = contract.flags_written - assigned
            if missing and functions and all(f in table for f in functions):
                findings.append(Finding(
                    rel, table[functions[0]].line, "flag-contract",
                    f"tier {registration.name!r} never assigns flag(s) "
                    f"{sorted(missing)} required for {mnemonic.name}"))
            if "zero_count_noop" in contract.specials and functions and \
                    any(f in table for f in functions) and not guarded:
                findings.append(Finding(
                    rel, table[functions[0]].line if functions[0] in table
                    else 1, "zero-count-guard",
                    f"tier {registration.name!r} covers {mnemonic.name} but "
                    f"has no reachable 'count == 0' early-out — a masked "
                    f"zero count must modify neither flags nor destination"))
    return findings


# -- hygiene checks -----------------------------------------------------------

def _has_allowance(lines: Sequence[str], lineno: int, rule: str) -> bool:
    marker = f"lint: allow-{rule}"
    start = max(0, lineno - 1 - _ALLOW_WINDOW)
    return any(marker in line for line in lines[start:lineno])


def _is_os_environ(node: ast.expr) -> bool:
    return (isinstance(node, ast.Attribute) and node.attr == "environ"
            and isinstance(node.value, ast.Name) and node.value.id == "os")


def _check_env_reads(path: Path, rel: str, tree: ast.Module,
                     lines: Sequence[str]) -> List[Finding]:
    if path.name == "knobs.py":
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        hit: Optional[int] = None
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "get" and \
                    _is_os_environ(func.value):
                hit = node.lineno
            elif isinstance(func, ast.Attribute) and func.attr == "getenv" \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == "os":
                hit = node.lineno
        elif isinstance(node, ast.Subscript) and _is_os_environ(node.value) \
                and isinstance(node.ctx, ast.Load):
            hit = node.lineno
        if hit is not None and not _has_allowance(lines, hit, "env"):
            findings.append(Finding(
                rel, hit, "env-read",
                "raw os.environ read; route REPRO_* knobs through "
                "repro.knobs (or annotate '# lint: allow-env — reason')"))
    return findings


def _check_wallclock(rel: str, tree: ast.Module,
                     lines: Sequence[str]) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or \
                not isinstance(func.value, ast.Name):
            continue
        base, attr = func.value.id, func.attr
        message: Optional[str] = None
        if base == "time" and attr in _WALLCLOCK_TIME_ATTRS:
            message = f"wall-clock call time.{attr}() in a byte-identity-" \
                      f"gated path"
        elif base == "datetime" and attr in _WALLCLOCK_DATETIME_ATTRS:
            message = f"wall-clock call datetime.{attr}() in a " \
                      f"byte-identity-gated path"
        elif base == "random" and attr != "Random":
            message = f"ambient (unseeded) RNG call random.{attr}() in a " \
                      f"byte-identity-gated path"
        if message is not None and \
                not _has_allowance(lines, node.lineno, "wallclock"):
            findings.append(Finding(
                rel, node.lineno, "wallclock",
                message + " (annotate '# lint: allow-wallclock — reason' "
                          "if deliberate)"))
    return findings


def _check_globals(rel: str, tree: ast.Module,
                   lines: Sequence[str]) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Global) and \
                not _has_allowance(lines, node.lineno, "global"):
            findings.append(Finding(
                rel, node.lineno, "mutable-global",
                f"module-level mutable state ({', '.join(node.names)}) "
                f"mutated from a worker-reachable path (annotate "
                f"'# lint: allow-global — reason' if deliberate)"))
    return findings


def _check_broad_except(rel: str, tree: ast.Module,
                        lines: Sequence[str]) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        broad = node.type is None
        caught = [node.type] if node.type is not None else []
        if isinstance(node.type, ast.Tuple):
            caught = list(node.type.elts)
        for expr in caught:
            if isinstance(expr, ast.Name) and \
                    expr.id in ("Exception", "BaseException"):
                broad = True
        if broad and not _has_allowance(lines, node.lineno, "broad-except"):
            findings.append(Finding(
                rel, node.lineno, "broad-except",
                "broad exception handler can mask EmulationError/"
                "KeyboardInterrupt; narrow it or annotate "
                "'# lint: allow-broad-except — reason'"))
    return findings


def check_hygiene(root: Path, package_dir: Path) -> List[Finding]:
    findings: List[Finding] = []
    for path in sorted(package_dir.rglob("*.py")):
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
        lines = source.splitlines()
        rel = _relative(path, root)
        posix = path.as_posix()
        findings.extend(_check_env_reads(path, rel, tree, lines))
        findings.extend(_check_broad_except(rel, tree, lines))
        if any(scoped in posix for scoped in DETERMINISM_SCOPED):
            findings.extend(_check_wallclock(rel, tree, lines))
            findings.extend(_check_globals(rel, tree, lines))
    return findings


# -- entry point --------------------------------------------------------------

def run(root: Optional[Path] = None) -> List[Finding]:
    """All findings for the tree rooted at ``root`` (default: the tree the
    imported ``repro`` package lives in, so fixture copies run via
    ``PYTHONPATH`` need no flags)."""
    import repro

    package_dir = Path(repro.__file__).resolve().parent
    if root is None:
        root = package_dir.parent.parent
    return check_tiers(root) + check_hygiene(root, package_dir)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="cross-tier semantic contract checker and hygiene lint")
    parser.add_argument("--root", type=Path, default=None,
                        help="repository root for finding paths (default: "
                             "inferred from the imported repro package)")
    arguments = parser.parse_args(argv)
    findings = run(arguments.root)
    for finding in findings:
        print(finding.render())
    try:
        from repro.cpu import semantics  # cached: check_tiers imported it
        tiers = ", ".join(sorted(semantics.TIERS))
        mnemonics = len(semantics.SEMANTICS)
    except Exception:  # lint: allow-broad-except — the failed import is
        # already reported as a tier-import finding above.
        tiers, mnemonics = "unavailable", 0
    if findings:
        print(f"repro.analysis.lint: {len(findings)} finding(s) "
              f"across tiers [{tiers}]")
        return 1
    print(f"repro.analysis.lint: OK — {mnemonics} mnemonics, "
          f"tiers [{tiers}] consistent, hygiene clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
