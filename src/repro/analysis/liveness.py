"""Register and flag liveness analysis over a recovered CFG.

The rewriter annotates every roplet with the registers live after the
original instruction (§IV-B1); the chain crafter then draws scratch registers
only from the dead ones and preserves the status register exactly where a
later instruction may read it (§IV-B2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.analysis.cfg_recovery import FunctionCFG
from repro.isa.instructions import Instruction, Mnemonic
from repro.isa.operands import Mem, Reg
from repro.isa.registers import ARG_REGISTERS, CALLER_SAVED, Register


@dataclass
class LivenessResult:
    """Per-instruction liveness facts.

    Attributes:
        live_after: registers live immediately after each instruction address.
        live_before: registers live immediately before each instruction address.
        flags_live_after: addresses after which the condition flags may still
            be read before being redefined.
    """

    live_after: Dict[int, Set[Register]]
    live_before: Dict[int, Set[Register]]
    flags_live_after: Set[int]

    def dead_registers(self, address: int, exclude: Tuple[Register, ...] = ()) -> List[Register]:
        """Registers that are dead after ``address`` (usable as scratch)."""
        live = self.live_after.get(address, set())
        reserved = {Register.RSP, Register.RBP, *exclude}
        return [reg for reg in Register if reg not in live and reg not in reserved]


def _operand_registers(operand) -> Set[Register]:
    if isinstance(operand, Reg):
        return {operand.reg}
    if isinstance(operand, Mem):
        out = set()
        if operand.base is not None:
            out.add(operand.base)
        if operand.index is not None:
            out.add(operand.index)
        return out
    return set()


def instruction_uses_defs(instruction: Instruction) -> Tuple[Set[Register], Set[Register]]:
    """Return ``(uses, defs)`` register sets of ``instruction``.

    Calls are treated conservatively: they use all argument registers and
    define every caller-saved register (matching the footnote-1 definition of
    liveness in the paper).
    """
    m = instruction.mnemonic
    ops = instruction.operands
    uses: Set[Register] = set()
    defs: Set[Register] = set()

    if m is Mnemonic.CALL:
        uses |= set(ARG_REGISTERS)
        uses |= _operand_registers(ops[0]) if ops else set()
        defs |= set(CALLER_SAVED)
        uses.add(Register.RSP)
        defs.add(Register.RSP)
        return uses, defs
    if m is Mnemonic.RET:
        uses |= {Register.RAX, Register.RSP}
        defs |= {Register.RSP}
        return uses, defs
    if m is Mnemonic.LEAVE:
        uses |= {Register.RBP, Register.RSP}
        defs |= {Register.RBP, Register.RSP}
        return uses, defs
    if m is Mnemonic.PUSH:
        uses |= _operand_registers(ops[0])
        uses.add(Register.RSP)
        defs.add(Register.RSP)
        return uses, defs
    if m is Mnemonic.POP:
        uses.add(Register.RSP)
        defs.add(Register.RSP)
        if isinstance(ops[0], Reg):
            defs.add(ops[0].reg)
        else:
            uses |= _operand_registers(ops[0])
        return uses, defs
    if m in (Mnemonic.CQO,):
        uses.add(Register.RAX)
        defs.add(Register.RDX)
        return uses, defs
    if m is Mnemonic.IDIV:
        uses |= {Register.RAX, Register.RDX}
        uses |= _operand_registers(ops[0])
        defs |= {Register.RAX, Register.RDX}
        return uses, defs
    if m in (Mnemonic.JMP, Mnemonic.JCC):
        uses |= _operand_registers(ops[0]) if ops else set()
        return uses, defs

    if not ops:
        return uses, defs

    destination = ops[0]
    sources = ops[1:]
    # destination semantics
    if isinstance(destination, Reg):
        if m in (Mnemonic.MOV, Mnemonic.MOVZX, Mnemonic.MOVSX, Mnemonic.LEA,
                 Mnemonic.SET, Mnemonic.POP):
            defs.add(destination.reg)
            if m is Mnemonic.SET or (isinstance(destination, Reg) and destination.size < 4):
                uses.add(destination.reg)  # partial write preserves upper bytes
        else:
            defs.add(destination.reg)
            uses.add(destination.reg)
        if m is Mnemonic.XCHG:
            uses.add(destination.reg)
    else:
        uses |= _operand_registers(destination)
        if m in (Mnemonic.CMP, Mnemonic.TEST):
            pass
    if m in (Mnemonic.CMP, Mnemonic.TEST):
        # comparisons do not define their "destination"
        defs.discard(destination.reg if isinstance(destination, Reg) else None)
        defs = {d for d in defs if d is not None}
        uses |= _operand_registers(destination)
    if m is Mnemonic.CMOV and isinstance(destination, Reg):
        uses.add(destination.reg)  # may keep the old value
    for source in sources:
        uses |= _operand_registers(source)
        if m is Mnemonic.XCHG and isinstance(source, Reg):
            defs.add(source.reg)
    return uses, defs


def compute_liveness(cfg: FunctionCFG) -> LivenessResult:
    """Run a backward may-liveness fixpoint over ``cfg``."""
    # block-level use/def summaries computed per instruction during iteration
    block_live_out: Dict[int, Set[Register]] = {start: set() for start in cfg.blocks}
    exit_live = {Register.RAX, Register.RSP, Register.RBP}

    changed = True
    while changed:
        changed = False
        for block in cfg.block_order():
            live_out: Set[Register] = set()
            if block.is_exit:
                live_out |= exit_live
            for successor in block.successors:
                if successor in cfg.blocks:
                    # live-in of successor = computed by walking it backwards
                    live_out |= _block_live_in(cfg.blocks[successor], block_live_out[successor])
            if live_out != block_live_out[block.start]:
                block_live_out[block.start] = live_out
                changed = True

    live_after: Dict[int, Set[Register]] = {}
    live_before: Dict[int, Set[Register]] = {}
    for block in cfg.block_order():
        live = set(block_live_out[block.start])
        if block.is_exit:
            live |= exit_live
        for address, instruction in reversed(block.instructions):
            live_after[address] = set(live)
            uses, defs = instruction_uses_defs(instruction)
            live = (live - defs) | uses
            live_before[address] = set(live)

    flags_live_after = _compute_flag_liveness(cfg)
    return LivenessResult(live_after=live_after, live_before=live_before,
                          flags_live_after=flags_live_after)


def _block_live_in(block, live_out: Set[Register]) -> Set[Register]:
    live = set(live_out)
    for _, instruction in reversed(block.instructions):
        uses, defs = instruction_uses_defs(instruction)
        live = (live - defs) | uses
    return live


def _compute_flag_liveness(cfg: FunctionCFG) -> Set[int]:
    """Addresses after which flags may be read before being rewritten.

    A simple backward pass per block plus a conservative cross-block rule:
    flags are considered live at a block's end if any successor block reads
    flags before writing them.
    """
    reads_first: Dict[int, bool] = {}
    for block in cfg.block_order():
        state = None
        for _, instruction in block.instructions:
            if instruction.reads_flags():
                state = True
                break
            if instruction.writes_flags():
                state = False
                break
        reads_first[block.start] = bool(state)

    flags_live: Set[int] = set()
    for block in cfg.block_order():
        live = any(reads_first.get(s, False) for s in block.successors)
        for address, instruction in reversed(block.instructions):
            if live:
                flags_live.add(address)
            if instruction.writes_flags():
                live = False
            if instruction.reads_flags():
                live = True
    return flags_live
