"""AST node definitions for mini-C.

All values are 64-bit integers.  Memory is accessed through explicit
:class:`Load`/:class:`Store` nodes with a byte size, which is how the
workloads implement byte arrays (base64 tables, fasta sequences, hash state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union


# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class Const:
    """An integer literal."""

    value: int


@dataclass(frozen=True)
class Var:
    """A reference to a parameter, local variable, local array or global.

    Referencing an array-valued name yields its base address, so arrays decay
    to pointers exactly like in C.
    """

    name: str


@dataclass(frozen=True)
class BinOp:
    """A binary operation.

    Supported operators: ``+ - * / % & | ^ << >>`` and the comparisons
    ``== != < <= > >=`` (signed), which evaluate to 0 or 1.
    """

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnOp:
    """A unary operation: ``-`` (negate), ``~`` (bitwise not), ``!`` (logical not)."""

    op: str
    operand: "Expr"


@dataclass(frozen=True)
class Load:
    """Load ``size`` bytes from the address computed by ``address``.

    Loads of fewer than 8 bytes are zero-extended.
    """

    address: "Expr"
    size: int = 8


@dataclass(frozen=True)
class Call:
    """Call a mini-C or host runtime function and use its return value."""

    name: str
    args: Tuple["Expr", ...] = ()

    def __init__(self, name: str, args: Sequence["Expr"] = ()) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", tuple(args))


Expr = Union[Const, Var, BinOp, UnOp, Load, Call]


# --------------------------------------------------------------------------
# statements
# --------------------------------------------------------------------------
@dataclass
class Assign:
    """Assign an expression to a scalar variable (created on first use)."""

    name: str
    value: Expr


@dataclass
class Store:
    """Store ``value`` (truncated to ``size`` bytes) at address ``address``."""

    address: Expr
    value: Expr
    size: int = 8


@dataclass
class If:
    """Two-way conditional."""

    condition: Expr
    then_body: List["Stmt"]
    else_body: List["Stmt"] = field(default_factory=list)


@dataclass
class While:
    """Pre-tested loop."""

    condition: Expr
    body: List["Stmt"]


@dataclass
class For:
    """C-style ``for`` loop, desugared to a :class:`While` by the compiler."""

    init: "Stmt"
    condition: Expr
    step: "Stmt"
    body: List["Stmt"]


@dataclass
class Switch:
    """Multi-way branch over an integer selector.

    Cases do not fall through; each case body is independent (this matches
    how the generated workloads use switches).
    """

    selector: Expr
    cases: Dict[int, List["Stmt"]]
    default: List["Stmt"] = field(default_factory=list)


@dataclass
class Break:
    """Exit the innermost loop."""


@dataclass
class Continue:
    """Continue with the next iteration of the innermost loop."""


@dataclass
class Return:
    """Return from the function with an optional value (default 0)."""

    value: Optional[Expr] = None


@dataclass
class ExprStmt:
    """Evaluate an expression for its side effects (typically a call)."""

    expr: Expr


@dataclass
class Probe:
    """A coverage probe: compiles to a call to the ``__probe`` host function.

    The RandomFuns workload places probes at CFG split and join points, which
    is how the code-coverage goal (G2) is measured, mirroring Tigress's
    ``RandomFunsTrace`` annotations.
    """

    probe_id: int


Stmt = Union[Assign, Store, If, While, For, Switch, Break, Continue, Return, ExprStmt, Probe]


# --------------------------------------------------------------------------
# functions and programs
# --------------------------------------------------------------------------
@dataclass
class Function:
    """A mini-C function definition.

    Attributes:
        name: function name (becomes the binary symbol).
        params: parameter names, passed in the first argument registers.
        body: statement list.
        local_arrays: mapping of local array names to their size in bytes;
            arrays live in the stack frame and their name evaluates to their
            base address.
    """

    name: str
    params: List[str]
    body: List[Stmt]
    local_arrays: Dict[str, int] = field(default_factory=dict)


@dataclass
class GlobalArray:
    """A global data object placed in ``.data``.

    Attributes:
        name: symbol name; a :class:`Var` reference yields its address.
        size: object size in bytes.
        initial: optional initial contents (zero padded to ``size``).
    """

    name: str
    size: int
    initial: bytes = b""


@dataclass
class Program:
    """A complete mini-C program: functions plus global data."""

    functions: List[Function]
    globals: List[GlobalArray] = field(default_factory=list)

    def function(self, name: str) -> Function:
        """Return the function named ``name``."""
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(f"no function {name!r} in program")
