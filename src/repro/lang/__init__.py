"""Mini-C: the small structured language workloads are written in.

The paper obfuscates compiled C functions (coreutils, CLBG benchmarks, Tigress
RandomFuns output, base64).  Without a C toolchain, the reproduction expresses
those workloads in *mini-C*: an AST of expressions and statements with 64-bit
integers, byte/word arrays, calls, loops and switches.  The compiler in
:mod:`repro.compiler` lowers mini-C to the reproduction ISA with ordinary
compiled-code shapes (stack frames, flag-driven branches, call conventions),
which is exactly what the ROP rewriter expects to find.
"""

from repro.lang.ast import (
    Assign,
    BinOp,
    Break,
    Call,
    Const,
    Continue,
    ExprStmt,
    For,
    Function,
    GlobalArray,
    If,
    Load,
    Probe,
    Program,
    Return,
    Store,
    Switch,
    UnOp,
    Var,
    While,
)

__all__ = [
    "Program",
    "Function",
    "GlobalArray",
    "Const",
    "Var",
    "BinOp",
    "UnOp",
    "Load",
    "Call",
    "Assign",
    "Store",
    "If",
    "While",
    "For",
    "Switch",
    "Break",
    "Continue",
    "Return",
    "ExprStmt",
    "Probe",
]
