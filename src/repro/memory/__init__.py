"""Flat byte-addressable memory used by the emulator and the attack engines."""

from repro.memory.memory import Memory, MemoryError_, Region

__all__ = ["Memory", "MemoryError_", "Region"]
