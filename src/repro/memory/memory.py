"""A simple region-based flat memory.

The memory is split into named regions (``.text``, ``.data``, stack, heap,
ROP stack, …).  Reads and writes must fall entirely inside one mapped region;
anything else raises :class:`MemoryError_`, which the emulator reports as a
fault — the behaviour the paper's P2 predicate relies on when brute-forced
branches send ``rsp`` into unintended code.

Two properties matter for throughput, because every emulated instruction
funnels through here:

* **Fast lookup** — regions are kept address-sorted so :meth:`Memory.region_at`
  is a bisect over the start addresses, fronted by a last-region-hit cache
  (almost all consecutive accesses hit the same region: the stack during ROP
  dispatch, ``.text`` during fetch).
* **Cheap forking** — :meth:`Memory.snapshot` is copy-on-write: forks share
  the backing bytearrays with their parent until either side writes, so the
  attack engines (shadow/DSE/TDS/ROPMEMU) can fork per execution without
  deep-copying a multi-megabyte stack each time.

Every region also carries a monotonically increasing ``generation`` counter,
bumped on each store into it.  The emulator's decode cache keys on it, which
keeps cached decodes correct in the presence of self-modifying code and
ROP-materialized instructions.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional

#: Truncation mask per access width; avoids recomputing ``(1 << (8*size)) - 1``
#: on every store (kept local so the memory layer stays import-free of cpu).
_INT_MASKS: Dict[int, int] = {1: 0xFF, 2: 0xFFFF, 4: 0xFFFFFFFF,
                              8: 0xFFFFFFFFFFFFFFFF}


class MemoryError_(RuntimeError):
    """Raised on out-of-bounds or unmapped accesses."""


class Region:
    """A contiguous mapped memory region.

    Attributes:
        name: human readable name (section or runtime area).
        start: first mapped address.
        data: backing byte storage.
        writable: whether stores are permitted.
        shared: True while ``data`` is shared copy-on-write with another
            :class:`Memory` (parent or fork); the first store detaches it.
        generation: store counter; consumers (the emulator decode cache) use
            it to detect that cached views of this region went stale.
    """

    __slots__ = ("name", "start", "data", "writable", "shared", "generation")

    def __init__(self, name: str, start: int, data: bytearray,
                 writable: bool = True, shared: bool = False,
                 generation: int = 0) -> None:
        self.name = name
        self.start = start
        self.data = data
        self.writable = writable
        self.shared = shared
        self.generation = generation

    @property
    def end(self) -> int:
        """One past the last mapped address."""
        return self.start + len(self.data)

    def contains(self, address: int, size: int = 1) -> bool:
        """True if ``[address, address+size)`` falls inside the region."""
        return self.start <= address and address + size <= self.start + len(self.data)

    def detach(self) -> None:
        """Privatize the backing storage (first write after a COW fork)."""
        self.data = bytearray(self.data)
        self.shared = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Region(name={self.name!r}, start={self.start:#x}, "
                f"size={len(self.data):#x}, writable={self.writable})")


class Memory:
    """Region-based flat memory with little-endian integer accessors."""

    def __init__(self) -> None:
        self._regions: List[Region] = []
        self._starts: List[int] = []
        self._hit: Optional[Region] = None

    def map(self, name: str, start: int, size: int, data: bytes = b"",
            writable: bool = True) -> Region:
        """Map a new region.

        Args:
            name: region name.
            start: base address.
            size: region size in bytes (grown to fit ``data`` if needed).
            data: initial contents, zero padded to ``size``.
            writable: whether the region accepts stores.

        Raises:
            MemoryError_: if the new region overlaps an existing one.
        """
        size = max(size, len(data))
        for region in self._regions:
            if start < region.end and region.start < start + size:
                raise MemoryError_(
                    f"region {name!r} [{start:#x}, {start + size:#x}) overlaps {region.name!r}"
                )
        backing = bytearray(size)
        backing[: len(data)] = data
        region = Region(name, start, backing, writable)
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.start)
        self._starts = [r.start for r in self._regions]
        return region

    @property
    def regions(self) -> List[Region]:
        """Mapped regions in address order."""
        return list(self._regions)

    def region_at(self, address: int) -> Optional[Region]:
        """Return the region containing ``address``, or None."""
        hit = self._hit
        if hit is not None and hit.start <= address < hit.start + len(hit.data):
            return hit
        index = bisect_right(self._starts, address) - 1
        if index >= 0:
            region = self._regions[index]
            if address < region.start + len(region.data):
                self._hit = region
                return region
        return None

    def _region_for(self, address: int, size: int) -> Region:
        region = self.region_at(address)
        if region is None or address + size > region.start + len(region.data):
            raise MemoryError_(f"unmapped access at {address:#x} size {size}")
        return region

    def is_mapped(self, address: int, size: int = 1) -> bool:
        """True if the full range is mapped inside a single region."""
        region = self.region_at(address)
        return region is not None and region.contains(address, size)

    def read(self, address: int, size: int) -> bytes:
        """Read ``size`` raw bytes."""
        region = self._region_for(address, size)
        offset = address - region.start
        return bytes(region.data[offset:offset + size])

    def write(self, address: int, data: bytes) -> None:
        """Write raw bytes.

        Raises:
            MemoryError_: on unmapped or read-only destinations.
        """
        region = self._region_for(address, len(data))
        if not region.writable:
            raise MemoryError_(f"write to read-only region {region.name!r} at {address:#x}")
        if region.shared:
            region.detach()
        offset = address - region.start
        region.data[offset:offset + len(data)] = data
        region.generation += 1

    def read_int(self, address: int, size: int = 8, signed: bool = False) -> int:
        """Read a little-endian integer of ``size`` bytes."""
        region = self._hit
        if region is not None:
            offset = address - region.start
            data = region.data
            if 0 <= offset <= len(data) - size:
                return int.from_bytes(data[offset:offset + size], "little",
                                      signed=signed)
        region = self._region_for(address, size)
        offset = address - region.start
        return int.from_bytes(region.data[offset:offset + size], "little", signed=signed)

    def write_int(self, address: int, value: int, size: int = 8) -> None:
        """Write a little-endian integer of ``size`` bytes (two's complement)."""
        region = self._hit
        if region is not None and region.writable and not region.shared:
            offset = address - region.start
            data = region.data
            if 0 <= offset <= len(data) - size:
                data[offset:offset + size] = \
                    (value & _INT_MASKS[size]).to_bytes(size, "little")
                region.generation += 1
                return
        region = self._region_for(address, size)
        if not region.writable:
            raise MemoryError_(f"write to read-only region {region.name!r} at {address:#x}")
        if region.shared:
            region.detach()
        offset = address - region.start
        region.data[offset:offset + size] = \
            (value & _INT_MASKS[size]).to_bytes(size, "little")
        region.generation += 1

    def read_qword(self, address: int) -> int:
        """Read a little-endian 64-bit unsigned integer.

        The width-specialized sibling of :meth:`read_int`: no size/signed
        parameters and no mask-table probe, so it is the cheapest mapped
        load the memory offers.  Stable low-level accessor the exec-compiled
        trace tier (:mod:`repro.cpu.codegen`) binds for stack traffic.
        """
        region = self._hit
        if region is not None:
            offset = address - region.start
            data = region.data
            if 0 <= offset <= len(data) - 8:
                return int.from_bytes(data[offset:offset + 8], "little")
        region = self._region_for(address, 8)
        offset = address - region.start
        return int.from_bytes(region.data[offset:offset + 8], "little")

    def write_qword(self, address: int, value: int) -> None:
        """Write a little-endian 64-bit integer (two's complement).

        Width-specialized sibling of :meth:`write_int`; identical fault and
        generation semantics.
        """
        region = self._hit
        if region is not None and region.writable and not region.shared:
            offset = address - region.start
            data = region.data
            if 0 <= offset <= len(data) - 8:
                data[offset:offset + 8] = \
                    (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
                region.generation += 1
                return
        self.write_int(address, value, 8)

    def peek_int(self, address: int, size: int = 8) -> Optional[int]:
        """Read a little-endian integer if mapped, else None — never faults.

        Speculative consumers (the emulator's trace builder peeking upcoming
        ret targets off the stack) use this so a probe beyond a region edge
        is an answer, not an emulation fault.
        """
        region = self.region_at(address)
        if region is None:
            return None
        offset = address - region.start
        data = region.data
        if offset + size > len(data):
            return None
        return int.from_bytes(data[offset:offset + size], "little")

    def read_cstring(self, address: int, limit: int = 4096) -> bytes:
        """Read a NUL-terminated byte string (without the terminator)."""
        region = self._region_for(address, 1)
        offset = address - region.start
        window_end = min(offset + limit, len(region.data))
        terminator = region.data.find(b"\0", offset, window_end)
        if terminator >= 0:
            return bytes(region.data[offset:terminator])
        if window_end - offset >= limit:
            # limit exhausted inside the region: return the unterminated window
            return bytes(region.data[offset:window_end])
        # string runs off the end of the region before hitting a terminator
        raise MemoryError_(f"unmapped access at {region.start + len(region.data):#x} size 1")

    def snapshot(self) -> "Memory":
        """Return a copy-on-write fork of the memory.

        Both the parent and the fork keep using the shared backing storage
        until either side writes into a region, at which point that side
        privatizes its copy.  Used by the attack engines to fork per
        execution at near-zero cost.
        """
        clone = Memory()
        for region in self._regions:
            region.shared = True
            clone._regions.append(
                Region(region.name, region.start, region.data, region.writable,
                       shared=True, generation=region.generation)
            )
        clone._starts = list(self._starts)
        return clone

    def restore_from(self, frozen: "Memory") -> bool:
        """Rewind this memory's region contents to ``frozen``, in place.

        Returns False (having changed nothing) when the region layout
        diverged, in which case the caller must fall back to replacing the
        memory with ``frozen.snapshot()``.  A region whose backing is still
        shared with ``frozen`` was never written by either side, so its
        contents — and every consumer view keyed on its generation (the
        emulator's decode/trace caches) — are still exact and it is left
        untouched.  A diverged region re-shares the frozen backing
        copy-on-write and bumps its generation so stale cached views
        invalidate.
        """
        live_regions = self._regions
        saved_regions = frozen._regions
        if len(live_regions) != len(saved_regions):
            return False
        for live, saved in zip(live_regions, saved_regions):
            if live.start != saved.start or len(live.data) != len(saved.data):
                return False
        for live, saved in zip(live_regions, saved_regions):
            if live.data is saved.data:
                continue  # untouched since the snapshot
            live.data = saved.data
            live.shared = True
            saved.shared = True
            # generations are monotonic: never reuse a value an older content
            # revision was cached under, or stale views would revalidate
            live.generation += 1
        return True
