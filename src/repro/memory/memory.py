"""A simple region-based flat memory.

The memory is split into named regions (``.text``, ``.data``, stack, heap,
ROP stack, …).  Reads and writes must fall entirely inside one mapped region;
anything else raises :class:`MemoryError_`, which the emulator reports as a
fault — the behaviour the paper's P2 predicate relies on when brute-forced
branches send ``rsp`` into unintended code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


class MemoryError_(RuntimeError):
    """Raised on out-of-bounds or unmapped accesses."""


@dataclass
class Region:
    """A contiguous mapped memory region.

    Attributes:
        name: human readable name (section or runtime area).
        start: first mapped address.
        data: backing byte storage.
        writable: whether stores are permitted.
    """

    name: str
    start: int
    data: bytearray
    writable: bool = True

    @property
    def end(self) -> int:
        """One past the last mapped address."""
        return self.start + len(self.data)

    def contains(self, address: int, size: int = 1) -> bool:
        """True if ``[address, address+size)`` falls inside the region."""
        return self.start <= address and address + size <= self.end


class Memory:
    """Region-based flat memory with little-endian integer accessors."""

    def __init__(self) -> None:
        self._regions: List[Region] = []

    def map(self, name: str, start: int, size: int, data: bytes = b"",
            writable: bool = True) -> Region:
        """Map a new region.

        Args:
            name: region name.
            start: base address.
            size: region size in bytes (grown to fit ``data`` if needed).
            data: initial contents, zero padded to ``size``.
            writable: whether the region accepts stores.

        Raises:
            MemoryError_: if the new region overlaps an existing one.
        """
        size = max(size, len(data))
        for region in self._regions:
            if start < region.end and region.start < start + size:
                raise MemoryError_(
                    f"region {name!r} [{start:#x}, {start + size:#x}) overlaps {region.name!r}"
                )
        backing = bytearray(size)
        backing[: len(data)] = data
        region = Region(name, start, backing, writable)
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.start)
        return region

    @property
    def regions(self) -> List[Region]:
        """Mapped regions in address order."""
        return list(self._regions)

    def region_at(self, address: int) -> Optional[Region]:
        """Return the region containing ``address``, or None."""
        for region in self._regions:
            if region.contains(address):
                return region
        return None

    def _region_for(self, address: int, size: int) -> Region:
        region = self.region_at(address)
        if region is None or not region.contains(address, size):
            raise MemoryError_(f"unmapped access at {address:#x} size {size}")
        return region

    def is_mapped(self, address: int, size: int = 1) -> bool:
        """True if the full range is mapped inside a single region."""
        region = self.region_at(address)
        return region is not None and region.contains(address, size)

    def read(self, address: int, size: int) -> bytes:
        """Read ``size`` raw bytes."""
        region = self._region_for(address, size)
        offset = address - region.start
        return bytes(region.data[offset:offset + size])

    def write(self, address: int, data: bytes) -> None:
        """Write raw bytes.

        Raises:
            MemoryError_: on unmapped or read-only destinations.
        """
        region = self._region_for(address, len(data))
        if not region.writable:
            raise MemoryError_(f"write to read-only region {region.name!r} at {address:#x}")
        offset = address - region.start
        region.data[offset:offset + len(data)] = data

    def read_int(self, address: int, size: int = 8, signed: bool = False) -> int:
        """Read a little-endian integer of ``size`` bytes."""
        return int.from_bytes(self.read(address, size), "little", signed=signed)

    def write_int(self, address: int, value: int, size: int = 8) -> None:
        """Write a little-endian integer of ``size`` bytes (two's complement)."""
        mask = (1 << (8 * size)) - 1
        self.write(address, (value & mask).to_bytes(size, "little"))

    def read_cstring(self, address: int, limit: int = 4096) -> bytes:
        """Read a NUL-terminated byte string (without the terminator)."""
        out = bytearray()
        for i in range(limit):
            byte = self.read(address + i, 1)[0]
            if byte == 0:
                break
            out.append(byte)
        return bytes(out)

    def snapshot(self) -> "Memory":
        """Return a deep copy of the memory (used by attack engines to fork)."""
        clone = Memory()
        for region in self._regions:
            clone._regions.append(
                Region(region.name, region.start, bytearray(region.data), region.writable)
            )
        return clone
