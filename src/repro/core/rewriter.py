"""The end-to-end ROP rewriter (Figure 2).

:func:`rop_obfuscate` is the main public entry point: it clones a compiled
binary image, translates the selected functions into roplets, crafts one
self-contained chain per function, embeds the chains, artificial gadgets and
runtime areas, and replaces each function body with a pivoting stub.  A
:class:`RewriteReport` records per-function statistics (the quantities behind
Table III) and failures (the categories of §VII-C1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.cfg_recovery import CFGError
from repro.binary.image import BinaryImage
from repro.core.config import PROTECTION_PROFILES, ProtectionProfile, RopConfig
from repro.core.crafting import ChainCrafter, RewriteError
from repro.core.materialization import (
    EmbeddingError,
    allocate_runtime_area,
    embed_chain,
    install_pivot_stub,
    pivot_stub_size,
    place_opaque_array,
)
from repro.core.predicates.p1_array import OpaqueArray
from repro.core.translation import TranslatedFunction, TranslationError, translate_function
from repro.gadgets.pool import GadgetPool

__all__ = ["RopRewriter", "RewriteReport", "FunctionResult", "RewriteError", "rop_obfuscate"]


@dataclass
class FunctionResult:
    """Outcome of rewriting one function.

    Attributes:
        name: function name.
        success: True when the function was rewritten.
        reason: failure category when ``success`` is False.
        program_points: number of translated roplets (Table III's N).
        total_gadgets: gadget slots emitted in the chain (Table III's A).
        unique_gadgets: distinct gadget addresses used (Table III's B).
        chain_bytes: size of the materialized chain.
        p3_instances: number of P3 templates inserted.
        opaque_slots: constants/gadget addresses materialized opaquely (+OC).
        hidden_instances: roplets wrapped in predicate bodies (+IH).
    """

    name: str
    success: bool
    reason: str = ""
    program_points: int = 0
    total_gadgets: int = 0
    unique_gadgets: int = 0
    chain_bytes: int = 0
    p3_instances: int = 0
    opaque_slots: int = 0
    hidden_instances: int = 0

    @property
    def gadgets_per_point(self) -> float:
        """Average gadgets per obfuscated program point (Table III's C)."""
        if not self.program_points:
            return 0.0
        return self.total_gadgets / self.program_points


@dataclass
class RewriteReport:
    """Aggregate outcome of a rewriting run."""

    results: List[FunctionResult] = field(default_factory=list)

    @property
    def rewritten(self) -> List[FunctionResult]:
        """Successfully rewritten functions."""
        return [r for r in self.results if r.success]

    @property
    def failed(self) -> List[FunctionResult]:
        """Functions the rewriter could not handle."""
        return [r for r in self.results if not r.success]

    @property
    def coverage(self) -> float:
        """Fraction of requested functions successfully rewritten."""
        if not self.results:
            return 0.0
        return len(self.rewritten) / len(self.results)

    def failure_categories(self) -> Dict[str, int]:
        """Histogram of failure reasons (register pressure, size, CFG, ...)."""
        categories: Dict[str, int] = {}
        for result in self.failed:
            categories[result.reason] = categories.get(result.reason, 0) + 1
        return categories

    def totals(self) -> Dict[str, float]:
        """Aggregate A/B/C statistics over rewritten functions (Table III)."""
        rewritten = self.rewritten
        total = sum(r.total_gadgets for r in rewritten)
        unique_points = sum(r.program_points for r in rewritten)
        unique_gadgets = sum(r.unique_gadgets for r in rewritten)
        return {
            "program_points": unique_points,
            "total_gadgets": total,
            "unique_gadgets": unique_gadgets,
            "gadgets_per_point": (total / unique_points) if unique_points else 0.0,
        }


class RopRewriter:
    """Rewrites selected functions of a binary image into ROP chains."""

    def __init__(self, image: BinaryImage, config: Optional[RopConfig] = None,
                 profiles: Optional[Dict[str, Union[str, ProtectionProfile]]] = None,
                 ) -> None:
        self.image = image
        self.config = config or RopConfig()
        self.profiles = dict(profiles or {})
        self.rng = random.Random(self.config.seed)
        self.report = RewriteReport()
        self._ss_address, self._spill_slot = allocate_runtime_area(image)
        self._pool: Optional[GadgetPool] = None

    # -- public API -----------------------------------------------------------
    def rewrite(self, function_names: Sequence[str]) -> RewriteReport:
        """Rewrite every function in ``function_names`` (best effort).

        Functions that cannot be handled are left untouched and recorded as
        failures in the report, mirroring the paper's coverage study.
        """
        stub_size = pivot_stub_size()
        candidates: List[str] = []
        translated: Dict[str, TranslatedFunction] = {}

        for name in function_names:
            symbol = self.image.function(name)
            if symbol.size < stub_size:
                self.report.results.append(FunctionResult(
                    name=name, success=False, reason="function smaller than pivot stub"))
                continue
            try:
                translated[name] = translate_function(self.image, name)
                candidates.append(name)
            except (TranslationError, CFGError) as exc:
                reason = "cfg reconstruction failed" if isinstance(exc, CFGError) \
                    else f"unsupported instruction: {exc}"
                self.report.results.append(FunctionResult(name=name, success=False,
                                                          reason=reason))

        # gadget pool: artificial gadgets plus reuse from parts left
        # unobfuscated (never from bytes that are about to be wiped)
        exclude_ranges = [(self.image.function(n).address, self.image.function(n).end)
                          for n in candidates]
        self._pool = GadgetPool(self.image, seed=self.config.seed,
                                diversify=self.config.diversify_gadgets,
                                seed_from_text=False)
        self._seed_pool(exclude_ranges)

        for name in candidates:
            self.report.results.append(self._rewrite_one(name, translated[name]))
        return self.report

    # -- internals -------------------------------------------------------------
    def _seed_pool(self, exclude_ranges: List[Tuple[int, int]]) -> None:
        from repro.gadgets.classify import classify_gadget
        from repro.gadgets.finder import find_gadgets_in_image

        for gadget in find_gadgets_in_image(self.image, ".text"):
            if any(start <= gadget.address < end for start, end in exclude_ranges):
                continue
            classified = classify_gadget(gadget)
            if classified is None:
                continue
            gadget.kind, gadget.params = classified
            self._pool.register(gadget)

    def _effective_config(self, name: str) -> RopConfig:
        """The per-function configuration: the base config plus its profile."""
        profile = self.profiles.get(name)
        if profile is None:
            return self.config
        if isinstance(profile, str):
            profile = PROTECTION_PROFILES[profile]
        return profile.apply(self.config)

    def _rewrite_one(self, name: str, translated: TranslatedFunction) -> FunctionResult:
        config = self._effective_config(name)
        opaque_array = None
        if config.p1_enabled or config.opaque_constants or config.instruction_hiding \
                or (config.p3_enabled and config.p3_variant in ("array", "mixed")):
            opaque_array = OpaqueArray(config, random.Random(self.rng.getrandbits(32)))
            place_opaque_array(self.image, opaque_array, name)
            # The array is runtime-constant unless a P3 array variant writes
            # into it; constant regions let the shadow tracker keep opaque
            # extraction loads exact (the DSE backtracking envelope).
            array_written = (config.p3_enabled and config.p3_fraction > 0
                            and config.p3_variant in ("array", "mixed")
                            and not config.read_only_chains)
            if not array_written:
                ranges = self.image.metadata.setdefault("rop_stable_ranges", [])
                ranges.append((opaque_array.address,
                               opaque_array.address + opaque_array.size))

        crafter = ChainCrafter(
            pool=self._pool,
            config=config,
            ss_address=self._ss_address,
            spill_slot=self._spill_slot,
            opaque_array=opaque_array,
            rng=random.Random(self.rng.getrandbits(32)),
        )
        try:
            chain = crafter.craft(translated)
        except RewriteError as exc:
            return FunctionResult(name=name, success=False,
                                  reason=f"register allocation failed: {exc}"
                                  if "pressure" in str(exc) else f"crafting failed: {exc}")

        materialized = embed_chain(self.image, chain, name,
                                   rng=random.Random(self.rng.getrandbits(32)),
                                   gadget_addresses=self._pool.addresses())
        try:
            install_pivot_stub(self.image, name, self._ss_address,
                               materialized.base_address)
        except EmbeddingError as exc:
            return FunctionResult(name=name, success=False, reason=str(exc))

        gadget_slots = chain.gadget_slots()
        return FunctionResult(
            name=name,
            success=True,
            program_points=translated.roplet_count(),
            total_gadgets=len(gadget_slots),
            unique_gadgets=len({slot.gadget.address for slot in gadget_slots}),
            chain_bytes=len(materialized.data),
            p3_instances=crafter._p3_instances,
            opaque_slots=crafter._opaque_slots + crafter._opaque_values,
            hidden_instances=crafter._hidden_instances,
        )


def rop_obfuscate(image: BinaryImage, function_names: Iterable[str],
                  config: Optional[RopConfig] = None,
                  profiles: Optional[Dict[str, Union[str, ProtectionProfile]]] = None,
                  ) -> Tuple[BinaryImage, RewriteReport]:
    """Clone ``image`` and rewrite ``function_names`` into ROP chains.

    Args:
        image: the compiled binary to protect (left unmodified).
        function_names: functions to rewrite.
        config: base rewriting configuration.
        profiles: optional per-function protection profiles — function name
            to a :class:`repro.core.config.ProtectionProfile` (or a key of
            :data:`repro.core.config.PROTECTION_PROFILES`) layered on top of
            ``config``.

    Returns ``(obfuscated_image, report)``.  The input image is not modified.
    """
    clone = image.clone()
    rewriter = RopRewriter(clone, config, profiles=profiles)
    report = rewriter.rewrite(list(function_names))
    return clone, report
