"""Chain crafting: lowering roplets to gadget sequences (Figure 2, stage 2).

The :class:`ChainCrafter` walks a translated function block by block in the
original layout order and emits chain elements for every roplet, drawing
gadgets from the :class:`repro.gadgets.GadgetPool`.  Scratch registers are
taken from registers that are dead around the roplet; when none are left the
crafter spills one register to the single data-section spill slot, and fails
with :class:`RewriteError` when even that is not enough — the same failure
mode the paper reports for 40 coreutils functions (§VII-C1).

Strengthening predicates hook in here: P1 replaces the branch-displacement
loads, P2 prepends perturbations to branch target blocks, P3 injects
state-widening templates at a fraction of program points, and gadget
confusion disguises immediates and misaligns the chain.  The ROPfuscator
layers hook in here too: opaque-constant materialization rewrites eligible
immediates and gadget-slot addresses into run-time recombinations
(:mod:`repro.core.predicates.opaque`), and instruction hiding wraps eligible
roplet lowerings inside opaque predicate bodies
(:mod:`repro.core.predicates.hiding`).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.chain import (
    Chain,
    DeltaSlot,
    DisguiseBaseSlot,
    DisguisedSlot,
    GadgetSlot,
    JunkSlot,
    RawPadding,
    ValueSlot,
)
from repro.core.config import RopConfig
from repro.core.predicates.hiding import emit_hidden
from repro.core.predicates.opaque import emit_opaque_gadget, emit_opaque_value
from repro.core.predicates.p1_array import OpaqueArray
from repro.core.predicates.p2_datadep import P2Perturbation, plan_p2, emit_p2
from repro.core.predicates.p3_state import emit_p3
from repro.core.roplets import Roplet, RopletKind
from repro.core.translation import TranslatedFunction
from repro.gadgets.gadget import Gadget
from repro.gadgets.pool import GadgetPool, GadgetPoolError
from repro.isa.instructions import Mnemonic
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import Register

_MASK64 = (1 << 64) - 1


class RewriteError(Exception):
    """Raised when a function cannot be rewritten into a ROP chain."""


#: Preferred scratch register order (rarely-live registers first).
_SCRATCH_ORDER = (
    Register.R12, Register.R13, Register.R14, Register.R15, Register.RBX,
    Register.R10, Register.R11, Register.RDX, Register.R9, Register.R8,
    Register.RDI, Register.RSI, Register.RCX, Register.RAX,
)


class ChainCrafter:
    """Builds the ROP chain of one translated function."""

    def __init__(self, pool: GadgetPool, config: RopConfig, ss_address: int,
                 spill_slot: int, opaque_array: Optional[OpaqueArray] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.pool = pool
        self.config = config
        self.ss_address = ss_address
        self.spill_slot = spill_slot
        self.opaque_array = opaque_array
        self.rng = rng or random.Random(config.seed)
        self.chain: Chain = Chain("")
        self._label_counter = 0
        self._pair_counter = 0
        self._p3_instances = 0
        self._branch_ordinal = 0
        #: registers pinned across nested lowerings (instruction hiding
        #: reserves its guard here); scratch() and emit_gadget() honor it
        self._reserved: frozenset = frozenset()
        #: the roplet currently being lowered (extraction sources)
        self._current_roplet: Optional[Roplet] = None
        #: opaque-constant bookkeeping (repro.core.predicates.opaque)
        self._opaque_ordinal = 0
        self._opaque_values = 0
        self._opaque_slots = 0
        self._hidden_instances = 0
        self._in_opaque = False
        self._opaque_gadget_pending = False

    # ------------------------------------------------------------------ utils
    def _fresh_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{hint}_{self._label_counter}"

    def block_label(self, address: int) -> str:
        """The chain label of the block starting at ``address``."""
        return f"blk_{address:#x}"

    def scratch(self, avoid: Set[Register], count: int,
                exclude: Sequence[Register] = ()) -> Tuple[List[Register], List[Register]]:
        """Pick ``count`` scratch registers not in ``avoid``/``exclude``.

        Returns ``(registers, spilled)``; ``spilled`` registers were saved to
        the spill slot and must be restored via :meth:`restore` once the
        roplet's lowering is complete.

        Raises:
            RewriteError: when the registers cannot be provided even with the
                single spill slot (the paper's register-pressure failure).
        """
        blocked = set(avoid) | set(exclude) | set(self._reserved) \
            | {Register.RSP, Register.RBP}
        free = [r for r in _SCRATCH_ORDER if r not in blocked]
        if len(free) >= count:
            return free[:count], []
        # spill fallback: one slot only
        needed = count - len(free)
        if needed > 1:
            raise RewriteError(
                f"register pressure: need {count} scratch registers, "
                f"{len(free)} free and only one spill slot available"
            )
        victims = [r for r in _SCRATCH_ORDER
                   if r in avoid and r not in exclude and r not in (Register.RSP, Register.RBP)]
        if not victims:
            raise RewriteError("register pressure: no spillable register available")
        victim = victims[-1]
        self.emit_gadget("spill", frozenset(), src=victim, slot=self.spill_slot)
        return free + [victim], [victim]

    def restore(self, spilled: Sequence[Register]) -> None:
        """Restore registers previously spilled by :meth:`scratch`."""
        for reg in spilled:
            self.emit_gadget("unspill", frozenset(), dst=reg, slot=self.spill_slot)

    # ------------------------------------------------------------- emission
    def emit_gadget(self, kind: str, avoid, operand=None, **params) -> Gadget:
        """Emit one gadget slot plus the chain slots its pops consume.

        ``operand`` fills the slot popped into ``params['dst']`` for ``pop``
        gadgets; every other popped register receives a junk slot.

        When an opaque gadget slot is pending (set per eligible roplet by
        :meth:`craft`), the first real gadget emitted is materialized through
        :func:`repro.core.predicates.opaque.emit_opaque_gadget` instead of a
        literal address slot; its pops follow the opaque slot as usual.
        """
        avoid = frozenset(avoid) | self._reserved
        try:
            gadget = self.pool.ensure(kind, avoid=avoid, **params)
        except GadgetPoolError as exc:
            raise RewriteError(str(exc)) from exc
        emitted_opaque = False
        if self._opaque_gadget_pending and not self._in_opaque \
                and kind not in ("spill", "unspill"):
            self._opaque_gadget_pending = False
            param_regs = frozenset(v for v in params.values()
                                   if isinstance(v, Register))
            if kind in ("cqo", "idiv"):
                # implicit operands the materializer must not clobber
                param_regs = param_regs | {Register.RAX, Register.RDX}
            emitted_opaque = emit_opaque_gadget(self, gadget,
                                                avoid | param_regs)
        if not emitted_opaque:
            self.chain.append(GadgetSlot(gadget))
        operand_pending = operand is not None and kind == "pop"
        for reg in gadget.pops:
            if operand_pending and reg == params.get("dst"):
                self.chain.append(operand)
                operand_pending = False
            else:
                self.chain.append(JunkSlot())
        if operand_pending:
            raise RewriteError(f"gadget for {kind} did not pop its operand register")
        return gadget

    def emit_constant(self, dst: Register, element, avoid,
                      allow_disguise: bool = True,
                      allow_opaque: bool = False) -> None:
        """Load a constant (or symbolic displacement) into ``dst``.

        With gadget confusion enabled the immediate is sometimes split across
        two address-looking slots recovered by a ``sub`` gadget (§V-D).

        With opaque constants enabled *and* ``allow_opaque``, the immediate
        is sometimes recombined at run time from the P1 opaque array so its
        literal never appears in the chain.  Callers only pass
        ``allow_opaque=True`` for pure data values at flag-safe sites: the
        recombination clobbers flags, and opaquifying a value later used as a
        memory *address* would force the attack-side shadow tracker to
        concretize, needlessly collapsing the DSE exactness envelope.
        """
        if isinstance(element, int):
            element = ValueSlot(element & _MASK64)
        use_opaque = (
            self.config.opaque_constants and allow_opaque
            and not self._in_opaque and isinstance(element, ValueSlot)
            and self.rng.random() < self.config.opaque_fraction
        )
        if use_opaque and emit_opaque_value(self, dst, element, avoid):
            return
        use_disguise = (
            self.config.gadget_confusion and allow_disguise
            and self.pool.addresses() and self.rng.random() < 0.4
        )
        if use_disguise:
            free = [r for r in _SCRATCH_ORDER
                    if r not in avoid and r is not dst and r not in self._reserved
                    and r not in (Register.RSP, Register.RBP)]
            if free:
                helper = free[0]
                self._pair_counter += 1
                pair = self._pair_counter
                work = frozenset(avoid) | {dst, helper}
                self.emit_gadget("pop", work, operand=DisguisedSlot(element, pair), dst=dst)
                self.emit_gadget("pop", work, operand=DisguiseBaseSlot(pair), dst=helper)
                self.emit_gadget("sub_rr", work, dst=dst, src=helper)
                return
        self.emit_gadget("pop", avoid, operand=element, dst=dst)

    def emit_cell_address(self, dst: Register, avoid) -> None:
        """Load the address of the current ``other_rsp`` cell into ``dst``.

        This is the ``pop reg, ss ; add reg, [reg]`` idiom used throughout
        §IV-B2: the first cell of the stack-switching array holds the byte
        offset of the innermost active frame's cell.
        """
        self.emit_constant(dst, ValueSlot(self.ss_address), avoid)
        self.emit_gadget("add_r_mem", avoid, dst=dst)

    # ----------------------------------------------------------- main entry
    def craft(self, translated: TranslatedFunction) -> Chain:
        """Lower ``translated`` into a complete chain."""
        self.chain = Chain(translated.name)
        p2_plan: Dict[int, List[P2Perturbation]] = {}
        if self.config.p2_enabled:
            p2_plan = plan_p2(translated)

        blocks = translated.block_order()
        for block in blocks:
            self.chain.label(self.block_label(block.start))
            for perturbation in p2_plan.get(block.start, []):
                first = block.roplets[0] if block.roplets else None
                flags_needed = bool(first and first.instruction.reads_flags())
                if not flags_needed:
                    emit_p2(self, perturbation,
                            avoid=first.avoid_set() if first else frozenset())
            for roplet in block.roplets:
                self._current_roplet = roplet
                self._maybe_insert_p3(roplet)
                self._maybe_insert_unaligned_update(roplet)
                self._maybe_request_opaque_gadget(roplet)
                if not self._maybe_hide(roplet):
                    self._lower_roplet(roplet)
                self._opaque_gadget_pending = False
        return self.chain

    # ------------------------------------------------------------ predicates
    def _maybe_insert_p3(self, roplet: Roplet) -> None:
        if not self.config.p3_enabled or self.config.p3_fraction <= 0:
            return
        if roplet.flags_live_after or roplet.instruction.reads_flags():
            return
        if not roplet.symbolic_registers:
            return
        if self.rng.random() >= self.config.p3_fraction:
            return
        variant = self.config.p3_variant
        if variant == "mixed":
            variant = "loop" if self.rng.random() < 0.5 else "array"
        if variant == "array" and (self.opaque_array is None or self.config.read_only_chains):
            variant = "loop"
        try:
            emit_p3(self, roplet, variant)
            self._p3_instances += 1
        except RewriteError:
            # not enough scratch registers at this point: skip the instance,
            # composition is opportunistic (§V-C)
            pass

    def _flag_safe(self, roplet: Roplet) -> bool:
        return not roplet.flags_live_after \
            and not roplet.instruction.reads_flags()

    def _maybe_request_opaque_gadget(self, roplet: Roplet) -> None:
        """Arm the opaque gadget-address form for this roplet's first gadget.

        The materializer clobbers flags and writes the chain, so eligibility
        requires a flag-safe roplet, a placed opaque array and writable
        chains; :meth:`emit_gadget` consumes the request.
        """
        if not self.config.opaque_constants or self.config.read_only_chains:
            return
        if self.opaque_array is None or self.opaque_array.address is None:
            return
        if not self._flag_safe(roplet):
            return
        if self.rng.random() >= self.config.opaque_fraction:
            return
        self._opaque_gadget_pending = True

    def _maybe_hide(self, roplet: Roplet) -> bool:
        """Lower ``roplet`` inside an opaque predicate body (§V-B coupling).

        Returns True when the hidden lowering was emitted.  Only pure
        data-movement/ALU roplets at flag-safe points are eligible: the
        prologue/epilogue clobber flags, and the epilogue must execute right
        after the real gadgets (a branching lowering would skip it).
        """
        if not self.config.instruction_hiding:
            return False
        if roplet.kind not in (RopletKind.DATA_MOVEMENT, RopletKind.ALU):
            return False
        if not self._flag_safe(roplet):
            return False
        if self.opaque_array is None or self.opaque_array.address is None:
            return False
        if self.rng.random() >= self.config.hiding_fraction:
            return False
        entered = [False]

        def lower() -> None:
            entered[0] = True
            self._lower_roplet(roplet)

        try:
            emit_hidden(self, roplet, lower)
            return True
        except RewriteError:
            if entered[0]:
                # the real gadgets are (partially) emitted: re-lowering
                # would duplicate them, so the failure must propagate
                raise
            # scratch pressure before anything was emitted: composition is
            # opportunistic, fall back to the plain lowering
            return False

    def _maybe_insert_unaligned_update(self, roplet: Roplet) -> None:
        if not self.config.gadget_confusion:
            return
        if roplet.flags_live_after or roplet.instruction.reads_flags():
            return
        if self.rng.random() >= 0.08:
            return
        avoid = roplet.avoid_set()
        try:
            regs, spilled = self.scratch(avoid, 1)
        except RewriteError:
            return
        eta = self.rng.choice([3, 5, 9, 11, 13])
        self.emit_constant(regs[0], ValueSlot(eta), avoid, allow_disguise=False)
        self.emit_gadget("add_rsp_r", avoid, src=regs[0])
        self.chain.append(RawPadding(eta))
        self.restore(spilled)

    # ------------------------------------------------------------- lowering
    def _lower_roplet(self, roplet: Roplet) -> None:
        kind = roplet.kind
        if kind is RopletKind.INTRA_TRANSFER:
            self._lower_intra_transfer(roplet)
        elif kind is RopletKind.INTER_TRANSFER:
            self._lower_call(roplet)
        elif kind is RopletKind.EPILOGUE:
            self._lower_epilogue(roplet)
        elif kind is RopletKind.DIRECT_STACK:
            self._lower_direct_stack(roplet)
        elif kind is RopletKind.STACK_POINTER_REF:
            self._lower_stack_pointer_ref(roplet)
        elif kind in (RopletKind.DATA_MOVEMENT, RopletKind.ALU):
            self._lower_generic(roplet)
        else:
            raise RewriteError(f"unsupported roplet kind {kind}")

    # -- branches -------------------------------------------------------------
    def _emit_displacement(self, dst: Register, target_address: int, roplet: Roplet,
                           avoid) -> None:
        """Load the chain displacement for a branch into ``dst`` (P1-aware)."""
        anchor = self._fresh_label("anchor")
        self._pending_anchor = anchor
        target_label = self.block_label(target_address)
        if self.config.p1_enabled and self.opaque_array is not None:
            ordinal = self._branch_ordinal % self.config.p1_branches
            self._branch_ordinal += 1
            fixed = self.opaque_array.fixed_part(ordinal)
            delta = DeltaSlot(target=target_label, anchor=anchor, subtract=fixed)
            work = frozenset(avoid) | {dst}
            self.opaque_array.emit_extraction(self, dst, ordinal, roplet, work)
            regs, spilled = self.scratch(work, 1, exclude=[dst])
            if spilled:
                raise RewriteError("register pressure in P1 branch encoding")
            work = work | {regs[0]}
            self.emit_constant(regs[0], delta, work, allow_disguise=False)
            self.emit_gadget("add_rr", work, dst=dst, src=regs[0])
        else:
            self._branch_ordinal += 1
            delta = DeltaSlot(target=target_label, anchor=anchor)
            self.emit_constant(dst, delta, avoid, allow_disguise=self.config.gadget_confusion)

    def _lower_intra_transfer(self, roplet: Roplet) -> None:
        avoid = roplet.avoid_set()
        target = roplet.branch_target
        if roplet.instruction.mnemonic is Mnemonic.JMP:
            regs, spilled = self.scratch(avoid, 1)
            if spilled:
                raise RewriteError("register pressure at unconditional branch")
            self._emit_displacement(regs[0], target, roplet, avoid)
            self.emit_gadget("add_rsp_r", avoid, src=regs[0])
            self.chain.label(self._pending_anchor)
            return
        # conditional transfer: leak the flag into a register first (Figure 1
        # idiom), then mask the displacement with it.
        regs, spilled = self.scratch(avoid, 2)
        if spilled:
            raise RewriteError("register pressure at conditional branch")
        cond_reg, disp_reg = regs
        work = frozenset(avoid) | {cond_reg, disp_reg}
        self.emit_gadget("set", work, cc=roplet.condition, dst=cond_reg)
        self.emit_gadget("movzx_rr1", work, dst=cond_reg, src=cond_reg)
        self.emit_gadget("neg", work, dst=cond_reg)
        self._emit_displacement(disp_reg, target, roplet, work)
        self.emit_gadget("and_rr", work, dst=disp_reg, src=cond_reg)
        self.emit_gadget("add_rsp_r", work, src=disp_reg)
        self.chain.label(self._pending_anchor)

    # -- calls ---------------------------------------------------------------
    def _lower_call(self, roplet: Roplet) -> None:
        avoid = roplet.avoid_set()
        target = roplet.instruction.operands[0]
        regs, spilled = self.scratch(avoid, 5)
        if spilled:
            # a spilled register cannot survive the call protocol
            raise RewriteError("register pressure at call site")
        cell, other, retg, const8, callee = regs
        work = frozenset(avoid) | set(regs)
        self.emit_cell_address(cell, work)
        self.emit_constant(const8, ValueSlot(8), work)
        self.emit_gadget("sub_mem_r", work, dst=cell, src=const8)
        self.emit_gadget("load8", work, dst=other, src=cell)
        func_ret = self.pool.ensure("func_ret", ss=self.ss_address)
        self.emit_constant(retg, ValueSlot(func_ret.address), work)
        self.emit_gadget("store8", work, dst=other, src=retg)
        if isinstance(target, Imm):
            self.emit_constant(callee, ValueSlot(target.value), work)
        elif isinstance(target, Reg):
            self.emit_gadget("mov_rr", work, dst=callee, src=target.reg)
        else:
            raise RewriteError(f"unsupported call target {target}")
        self.emit_gadget("xchg_rsp_mem_jmp", work, mem=cell, target=callee)

    # -- epilogue --------------------------------------------------------------
    def _lower_epilogue(self, roplet: Roplet) -> None:
        avoid = roplet.avoid_set()
        if roplet.instruction.mnemonic is Mnemonic.LEAVE:
            regs, spilled = self.scratch(avoid, 3)
            cell, cursor, const8 = regs
            work = frozenset(avoid) | set(regs)
            self.emit_cell_address(cell, work)
            self.emit_gadget("mov_rr", work, dst=cursor, src=Register.RBP)
            self.emit_gadget("load8", work, dst=Register.RBP, src=cursor)
            self.emit_constant(const8, ValueSlot(8), work)
            self.emit_gadget("add_rr", work, dst=cursor, src=const8)
            self.emit_gadget("store8", work, dst=cell, src=cursor)
            self.restore(spilled)
            return
        # ret: unpivot and return to the native caller (§A "from ROP to native")
        regs, spilled = self.scratch(avoid, 2)
        if spilled:
            raise RewriteError("register pressure at function epilogue")
        cell, const8 = regs
        work = frozenset(avoid) | set(regs)
        self.emit_constant(cell, ValueSlot(self.ss_address), work, allow_disguise=False)
        self.emit_constant(const8, ValueSlot(8), work, allow_disguise=False)
        self.emit_gadget("sub_mem_r", work, dst=cell, src=const8)
        self.emit_gadget("add_r_mem", work, dst=cell)
        self.emit_gadget("add_rr", work, dst=cell, src=const8)
        self.emit_gadget("mov_rsp_mem", work, src=cell)

    # -- direct stack accesses --------------------------------------------------
    def _lower_direct_stack(self, roplet: Roplet) -> None:
        avoid = roplet.avoid_set()
        instruction = roplet.instruction
        operand = instruction.operands[0]
        if instruction.mnemonic is Mnemonic.PUSH:
            regs, spilled = self.scratch(avoid, 3)
            cell, cursor, const8 = regs
            work = frozenset(avoid) | set(regs)
            self.emit_cell_address(cell, work)
            self.emit_gadget("load8", work, dst=cursor, src=cell)
            self.emit_constant(const8, ValueSlot(8), work)
            self.emit_gadget("sub_rr", work, dst=cursor, src=const8)
            self.emit_gadget("store8", work, dst=cell, src=cursor)
            if isinstance(operand, Reg):
                source = operand.reg
            elif isinstance(operand, Imm):
                extra, extra_spilled = self.scratch(work, 1)
                spilled += extra_spilled
                source = extra[0]
                work = work | {source}
                self.emit_constant(source, ValueSlot(operand.value), work,
                                   allow_opaque=True)
            else:
                raise RewriteError(f"unsupported push operand {operand}")
            self.emit_gadget("store8", work, dst=cursor, src=source)
            self.restore(spilled)
            return
        # pop DST
        if not isinstance(operand, Reg):
            raise RewriteError(f"unsupported pop operand {operand}")
        destination = operand.reg
        regs, spilled = self.scratch(avoid, 3, exclude=[destination])
        cell, cursor, const8 = regs
        work = frozenset(avoid) | set(regs) | {destination}
        self.emit_cell_address(cell, work)
        self.emit_gadget("load8", work, dst=cursor, src=cell)
        self.emit_gadget("load8", work, dst=destination, src=cursor)
        self.emit_constant(const8, ValueSlot(8), work)
        self.emit_gadget("add_rr", work, dst=cursor, src=const8)
        self.emit_gadget("store8", work, dst=cell, src=cursor)
        self.restore(spilled)

    # -- explicit rsp references -------------------------------------------------
    def _lower_stack_pointer_ref(self, roplet: Roplet) -> None:
        avoid = roplet.avoid_set()
        instruction = roplet.instruction
        m = instruction.mnemonic
        ops = instruction.operands

        def is_rsp_reg(op) -> bool:
            return isinstance(op, Reg) and op.reg is Register.RSP

        # mov REG, rsp
        if m is Mnemonic.MOV and isinstance(ops[0], Reg) and is_rsp_reg(ops[1]):
            regs, spilled = self.scratch(avoid, 1, exclude=[ops[0].reg])
            work = frozenset(avoid) | set(regs) | {ops[0].reg}
            self.emit_cell_address(regs[0], work)
            self.emit_gadget("load8", work, dst=ops[0].reg, src=regs[0])
            self.restore(spilled)
            return
        # mov rsp, REG
        if m is Mnemonic.MOV and is_rsp_reg(ops[0]) and isinstance(ops[1], Reg):
            regs, spilled = self.scratch(avoid, 1, exclude=[ops[1].reg])
            work = frozenset(avoid) | set(regs)
            self.emit_cell_address(regs[0], work)
            self.emit_gadget("store8", work, dst=regs[0], src=ops[1].reg)
            self.restore(spilled)
            return
        # add/sub rsp, imm|reg
        if m in (Mnemonic.ADD, Mnemonic.SUB) and is_rsp_reg(ops[0]):
            regs, spilled = self.scratch(avoid, 3)
            cell, cursor, amount = regs
            work = frozenset(avoid) | set(regs)
            self.emit_cell_address(cell, work)
            self.emit_gadget("load8", work, dst=cursor, src=cell)
            if isinstance(ops[1], Imm):
                self.emit_constant(amount, ValueSlot(ops[1].value), work)
            elif isinstance(ops[1], Reg):
                amount = ops[1].reg
            else:
                raise RewriteError(f"unsupported rsp arithmetic operand {ops[1]}")
            kind = "add_rr" if m is Mnemonic.ADD else "sub_rr"
            self.emit_gadget(kind, work, dst=cursor, src=amount)
            self.emit_gadget("store8", work, dst=cell, src=cursor)
            self.restore(spilled)
            return
        # lea REG, [rsp + disp]
        if m is Mnemonic.LEA and isinstance(ops[0], Reg) and isinstance(ops[1], Mem) \
                and ops[1].base is Register.RSP and ops[1].index is None:
            destination = ops[0].reg
            regs, spilled = self.scratch(avoid, 2, exclude=[destination])
            work = frozenset(avoid) | set(regs) | {destination}
            self.emit_cell_address(regs[0], work)
            self.emit_gadget("load8", work, dst=destination, src=regs[0])
            if ops[1].disp:
                self.emit_constant(regs[1], ValueSlot(ops[1].disp & _MASK64), work)
                self.emit_gadget("add_rr", work, dst=destination, src=regs[1])
            self.restore(spilled)
            return
        # memory accesses through rsp: rebase on the other_rsp value
        if m in (Mnemonic.MOV, Mnemonic.MOVZX) and any(
                isinstance(op, Mem) and op.base is Register.RSP for op in ops):
            self._lower_rsp_memory_access(roplet)
            return
        raise RewriteError(f"unsupported stack pointer reference {instruction}")

    def _lower_rsp_memory_access(self, roplet: Roplet) -> None:
        avoid = roplet.avoid_set()
        instruction = roplet.instruction
        ops = instruction.operands
        mem = next(op for op in ops if isinstance(op, Mem))
        other = next(op for op in ops if not isinstance(op, Mem))
        is_load = isinstance(ops[0], Reg)
        exclude = [other.reg] if isinstance(other, Reg) else []
        regs, spilled = self.scratch(avoid, 2, exclude=exclude)
        address_reg, disp_reg = regs
        work = frozenset(avoid) | set(regs) | set(exclude)
        self.emit_cell_address(address_reg, work)
        self.emit_gadget("load8", work, dst=address_reg, src=address_reg)
        if mem.disp:
            self.emit_constant(disp_reg, ValueSlot(mem.disp & _MASK64), work)
            self.emit_gadget("add_rr", work, dst=address_reg, src=disp_reg)
        if is_load:
            self.emit_gadget(f"load{mem.size}", work, dst=other.reg, src=address_reg)
        else:
            self.emit_gadget(f"store{mem.size}", work, dst=address_reg, src=other.reg)
        self.restore(spilled)

    # -- data movement and ALU -----------------------------------------------------
    _ALU_KINDS = {
        Mnemonic.ADD: "add_rr", Mnemonic.SUB: "sub_rr", Mnemonic.AND: "and_rr",
        Mnemonic.OR: "or_rr", Mnemonic.XOR: "xor_rr", Mnemonic.ADC: "adc_rr",
        Mnemonic.SBB: "sbb_rr", Mnemonic.IMUL: "imul_rr", Mnemonic.SHL: "shl_rr",
        Mnemonic.SHR: "shr_rr", Mnemonic.SAR: "sar_rr", Mnemonic.CMP: "cmp_rr",
        Mnemonic.TEST: "test_rr",
    }

    def _lower_generic(self, roplet: Roplet) -> None:
        avoid = roplet.avoid_set()
        instruction = roplet.instruction
        m = instruction.mnemonic
        ops = instruction.operands
        flag_safe = not roplet.flags_live_after

        if m is Mnemonic.NOP:
            return
        if m is Mnemonic.MOV and isinstance(ops[0], Reg) and isinstance(ops[1], Reg):
            self.emit_gadget("mov_rr", avoid, dst=ops[0].reg, src=ops[1].reg)
            return
        if m is Mnemonic.MOV and isinstance(ops[0], Reg) and isinstance(ops[1], Imm):
            self.emit_constant(ops[0].reg, ValueSlot(ops[1].value), avoid,
                               allow_disguise=flag_safe,
                               allow_opaque=flag_safe)
            return
        if m in (Mnemonic.MOV, Mnemonic.MOVZX) and isinstance(ops[0], Reg) \
                and isinstance(ops[1], Mem):
            self._emit_memory_load(ops[0].reg, ops[1], avoid, flag_safe)
            return
        if m is Mnemonic.MOV and isinstance(ops[0], Mem) and isinstance(ops[1], Reg):
            self._emit_memory_store(ops[0], ops[1].reg, avoid, flag_safe)
            return
        if m is Mnemonic.MOV and isinstance(ops[0], Mem) and isinstance(ops[1], Imm):
            regs, spilled = self.scratch(avoid, 1)
            self.emit_constant(regs[0], ValueSlot(ops[1].value), avoid,
                               allow_disguise=flag_safe,
                               allow_opaque=flag_safe and not spilled)
            self._emit_memory_store(ops[0], regs[0], avoid | {regs[0]}, flag_safe)
            self.restore(spilled)
            return
        if m is Mnemonic.MOVZX and isinstance(ops[0], Reg) and isinstance(ops[1], Reg):
            self.emit_gadget("movzx_rr1", avoid, dst=ops[0].reg, src=ops[1].reg)
            return
        if m is Mnemonic.MOVSX and isinstance(ops[0], Reg) and isinstance(ops[1], Reg):
            self.emit_gadget("movsx_rr1", avoid, dst=ops[0].reg, src=ops[1].reg)
            return
        if m is Mnemonic.LEA and isinstance(ops[0], Reg) and isinstance(ops[1], Mem):
            mem = ops[1]
            if mem.index is not None:
                raise RewriteError(f"indexed lea at {roplet.address:#x} is not supported")
            destination = ops[0].reg
            self.emit_constant(destination, ValueSlot(mem.disp & _MASK64), avoid,
                               allow_disguise=flag_safe)
            if mem.base is not None:
                self.emit_gadget("add_rr", avoid, dst=destination, src=mem.base)
            return
        if m is Mnemonic.SET and isinstance(ops[0], Reg):
            self.emit_gadget("set", avoid, cc=instruction.condition, dst=ops[0].reg)
            return
        if m is Mnemonic.CMOV and isinstance(ops[0], Reg) and isinstance(ops[1], Reg):
            self.emit_gadget("cmov", avoid, cc=instruction.condition,
                             dst=ops[0].reg, src=ops[1].reg)
            return
        if m is Mnemonic.CQO:
            self.emit_gadget("cqo", avoid)
            return
        if m is Mnemonic.IDIV and isinstance(ops[0], Reg):
            self.emit_gadget("idiv", avoid, src=ops[0].reg)
            return
        if m in (Mnemonic.NEG, Mnemonic.NOT) and isinstance(ops[0], Reg):
            self.emit_gadget(m.value, avoid, dst=ops[0].reg)
            return
        if m in (Mnemonic.INC, Mnemonic.DEC) and isinstance(ops[0], Reg):
            regs, spilled = self.scratch(avoid, 1, exclude=[ops[0].reg])
            self.emit_constant(regs[0], ValueSlot(1), avoid,
                               allow_disguise=flag_safe,
                               allow_opaque=flag_safe)
            kind = "add_rr" if m is Mnemonic.INC else "sub_rr"
            self.emit_gadget(kind, avoid, dst=ops[0].reg, src=regs[0])
            self.restore(spilled)
            return
        if m in self._ALU_KINDS and isinstance(ops[0], Reg):
            if isinstance(ops[1], Reg):
                self.emit_gadget(self._ALU_KINDS[m], avoid, dst=ops[0].reg, src=ops[1].reg)
                return
            if isinstance(ops[1], Imm):
                regs, spilled = self.scratch(avoid, 1, exclude=[ops[0].reg])
                # the recombination clobbers flags before the ALU op sets its
                # own, which only ADC/SBB (carry consumers) can observe
                self.emit_constant(regs[0], ValueSlot(ops[1].value), avoid,
                                   allow_disguise=False,
                                   allow_opaque=m not in (Mnemonic.ADC,
                                                          Mnemonic.SBB))
                self.emit_gadget(self._ALU_KINDS[m], avoid, dst=ops[0].reg, src=regs[0])
                self.restore(spilled)
                return
            if isinstance(ops[1], Mem):
                regs, spilled = self.scratch(avoid, 1, exclude=[ops[0].reg])
                self._emit_memory_load(regs[0], ops[1], avoid | {ops[0].reg}, False)
                self.emit_gadget(self._ALU_KINDS[m], avoid, dst=ops[0].reg, src=regs[0])
                self.restore(spilled)
                return
        raise RewriteError(f"unsupported instruction {instruction} at {roplet.address:#x}")

    def _emit_memory_load(self, destination: Register, mem: Mem, avoid,
                          flag_safe: bool) -> None:
        if mem.index is not None:
            raise RewriteError("indexed memory operands are not supported")
        if mem.base is None:
            # absolute address
            self.emit_constant(destination, ValueSlot(mem.disp & _MASK64), avoid,
                               allow_disguise=flag_safe)
            self.emit_gadget(f"load{mem.size}", avoid, dst=destination, src=destination)
            return
        if mem.disp == 0:
            self.emit_gadget(f"load{mem.size}", avoid, dst=destination, src=mem.base)
            return
        if destination != mem.base:
            self.emit_constant(destination, ValueSlot(mem.disp & _MASK64), avoid,
                               allow_disguise=flag_safe)
            self.emit_gadget("add_rr", avoid, dst=destination, src=mem.base)
            self.emit_gadget(f"load{mem.size}", avoid, dst=destination, src=destination)
            return
        regs, spilled = self.scratch(avoid, 1, exclude=[destination, mem.base])
        self.emit_constant(regs[0], ValueSlot(mem.disp & _MASK64), avoid,
                           allow_disguise=flag_safe)
        self.emit_gadget("add_rr", avoid, dst=regs[0], src=mem.base)
        self.emit_gadget(f"load{mem.size}", avoid, dst=destination, src=regs[0])
        self.restore(spilled)

    def _emit_memory_store(self, mem: Mem, source: Register, avoid,
                           flag_safe: bool) -> None:
        if mem.index is not None:
            raise RewriteError("indexed memory operands are not supported")
        if mem.base is not None and mem.disp == 0:
            self.emit_gadget(f"store{mem.size}", avoid, dst=mem.base, src=source)
            return
        regs, spilled = self.scratch(avoid, 1, exclude=[source] + ([mem.base] if mem.base else []))
        address_reg = regs[0]
        self.emit_constant(address_reg, ValueSlot(mem.disp & _MASK64), avoid,
                           allow_disguise=flag_safe)
        if mem.base is not None:
            self.emit_gadget("add_rr", avoid, dst=address_reg, src=mem.base)
        self.emit_gadget(f"store{mem.size}", avoid, dst=address_reg, src=source)
        self.restore(spilled)
