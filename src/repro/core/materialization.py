"""Materialization: embed chains, stubs and runtime areas in the binary (§IV-B3).

This stage:

* allocates the stack-switching array ``ss`` and the spill slot in ``.data``,
* places each generated chain in the ``.ropchains`` section,
* replaces the original function body with a pivoting stub that switches to
  the chain (and wipes the remaining original bytes),
* places the P1 opaque arrays in ``.data``.
"""

from __future__ import annotations

from typing import Tuple

from repro.binary.image import BinaryImage
from repro.core.chain import Chain, MaterializedChain
from repro.isa.assembler import assemble
from repro.isa.instructions import make
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import Register

#: Number of concurrently active ROP frames the stack-switching array supports
#: (recursion and interleaved native/ROP calls consume one cell each).
SS_CAPACITY = 128


class EmbeddingError(Exception):
    """Raised when a chain cannot be embedded into the binary."""


def allocate_runtime_area(image: BinaryImage) -> Tuple[int, int]:
    """Allocate (once) the ``ss`` array and the spill slot in ``.data``.

    Returns ``(ss_address, spill_slot_address)``.  The first cell of ``ss``
    holds the byte offset of the innermost active frame's ``other_rsp`` cell
    and starts at zero.
    """
    if "rop_ss_address" in image.metadata:
        return image.metadata["rop_ss_address"], image.metadata["rop_spill_slot"]
    ss_address = image.data.append(bytes(8 * (SS_CAPACITY + 1)))
    image.add_object("__rop_ss", ss_address, 8 * (SS_CAPACITY + 1))
    spill_slot = image.data.append(bytes(8))
    image.add_object("__rop_spill", spill_slot, 8)
    image.metadata["rop_ss_address"] = ss_address
    image.metadata["rop_spill_slot"] = spill_slot
    return ss_address, spill_slot


def pivot_stub_instructions(ss_address: int, chain_address: int):
    """The native stub that replaces an obfuscated function's body (§A).

    It reserves a new ``other_rsp`` cell, saves the native stack pointer
    there, points ``rsp`` at the chain and kicks it off with a ``ret``.
    """
    return [
        make("mov", Reg(Register.RAX), Imm(ss_address, 4)),
        make("add", Mem(base=Register.RAX), Imm(8, 1)),
        make("add", Reg(Register.RAX), Mem(base=Register.RAX)),
        make("mov", Mem(base=Register.RAX), Reg(Register.RSP)),
        make("mov", Reg(Register.RSP), Imm(chain_address, 4)),
        make("ret"),
    ]


def pivot_stub_size(ss_address: int = 0x600000, chain_address: int = 0x680000) -> int:
    """Size in bytes of the pivot stub (the paper's 22-byte threshold analog)."""
    code, _ = assemble(pivot_stub_instructions(ss_address, chain_address))
    return len(code)


def place_opaque_array(image: BinaryImage, array, function_name: str) -> int:
    """Append a P1 opaque array to ``.data`` and record its address."""
    address = image.data.append(array.data())
    image.add_object(f"__rop_p1_{function_name}", address, array.size)
    array.address = address
    return address


def embed_chain(image: BinaryImage, chain: Chain, function_name: str,
                rng=None, gadget_addresses=()) -> MaterializedChain:
    """Materialize ``chain`` into the ``.ropchains`` section."""
    base = image.ropchains.end if image.ropchains.size else image.ropchains.address
    materialized = chain.materialize(base, rng=rng, gadget_addresses=gadget_addresses)
    image.ropchains.append(materialized.data)
    image.add_object(f"__rop_chain_{function_name}", base, len(materialized.data))
    return materialized


def install_pivot_stub(image: BinaryImage, function_name: str, ss_address: int,
                       chain_address: int) -> int:
    """Overwrite a function's body with the pivot stub, wiping the rest.

    Returns the stub size.

    Raises:
        EmbeddingError: when the function is too small to hold the stub (the
            paper skips such functions, §VII-C1).
    """
    symbol = image.function(function_name)
    code, _ = assemble(pivot_stub_instructions(ss_address, chain_address),
                       base_address=symbol.address)
    if len(code) > symbol.size:
        raise EmbeddingError(
            f"{function_name}: function body ({symbol.size} bytes) smaller than "
            f"the pivot stub ({len(code)} bytes)"
        )
    filler = bytes(symbol.size - len(code))
    image.write(symbol.address, code + filler)
    return len(code)
