"""P1: anti-ROP-disassembly through a periodic opaque array (§V-A).

The array stores seemingly random 64-bit values with a periodic invariant:
for branch ordinal ``b`` every ``s``-th cell starting at ``b`` holds a value
congruent to ``a_b`` modulo ``m``.  A branch's chain displacement is split
into the fixed part ``a_b`` (recovered from the array through an
input-dependent index) and a branch-specific part stored in the chain, so a
static tool must both mimic the index computation and reason about the
aliasing the periodicity induces.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.chain import ValueSlot
from repro.core.config import RopConfig
from repro.isa.registers import Register

_MASK64 = (1 << 64) - 1


class OpaqueArray:
    """The P1 opaque value array of one obfuscated function.

    Args:
        config: the rewriter configuration (supplies ``n``, ``s``, ``p``, ``m``).
        rng: obfuscation-time randomness.

    Attributes:
        address: load address of the array; assigned when the rewriter places
            the array in ``.data``.
    """

    def __init__(self, config: RopConfig, rng: Optional[random.Random] = None) -> None:
        self.config = config
        self.rng = rng or random.Random(config.seed)
        self.address: Optional[int] = None
        #: the fixed displacement parts a_b, one per branch ordinal.
        self.fixed_parts: List[int] = [
            self.rng.randrange(config.p1_modulus) for _ in range(config.p1_branches)
        ]
        self.cells: List[int] = self._populate()

    def _populate(self) -> List[int]:
        config = self.config
        cells: List[int] = []
        for _ in range(config.p1_repetitions):
            for position in range(config.p1_period):
                if position < config.p1_branches:
                    base = self.rng.getrandbits(60) & ~(config.p1_modulus - 1)
                    cells.append((base | self.fixed_parts[position]) & _MASK64)
                else:
                    cells.append(self.rng.getrandbits(64))
        return cells

    @property
    def size(self) -> int:
        """Array size in bytes."""
        return 8 * len(self.cells)

    def data(self) -> bytes:
        """Raw bytes of the populated array."""
        out = bytearray()
        for cell in self.cells:
            out += cell.to_bytes(8, "little")
        return bytes(out)

    def fixed_part(self, ordinal: int) -> int:
        """The a_b value encoded for branch ordinal ``ordinal``."""
        return self.fixed_parts[ordinal % self.config.p1_branches]

    # -- chain emission -------------------------------------------------------
    def emit_extraction(self, crafter, destination: Register, ordinal: int,
                        roplet, avoid) -> None:
        """Emit gadgets computing ``destination = A[f(x)*s + b] mod m``.

        ``f(x)`` opaquely combines up to four input-derived live registers and
        is reduced modulo the repetition count ``p``, so any program state
        selects a valid repetition thanks to the array's periodicity.
        """
        if self.address is None:
            raise RuntimeError("opaque array not yet placed in the binary")
        config = self.config
        work = frozenset(avoid) | {destination}
        regs, spilled = crafter.scratch(work, 1, exclude=[destination])
        helper = regs[0]
        work = work | {helper}

        sources = [r for r in sorted(roplet.symbolic_registers, key=int)
                   if r not in (Register.RSP, Register.RBP, destination, helper)][:4]
        if sources:
            crafter.emit_gadget("mov_rr", work, dst=destination, src=sources[0])
            for source in sources[1:]:
                kind = self.rng.choice(["xor_rr", "add_rr"])
                crafter.emit_gadget(kind, work, dst=destination, src=source)
        else:
            crafter.emit_constant(destination, ValueSlot(self.rng.getrandbits(16)),
                                  work, allow_disguise=False)
        # index = f(x) mod p, scaled to a byte offset of one repetition
        crafter.emit_constant(helper, ValueSlot(config.p1_repetitions - 1), work,
                              allow_disguise=False)
        crafter.emit_gadget("and_rr", work, dst=destination, src=helper)
        stride = config.p1_period * 8
        crafter.emit_constant(helper, ValueSlot(stride.bit_length() - 1), work,
                              allow_disguise=False)
        crafter.emit_gadget("shl_rr", work, dst=destination, src=helper)
        crafter.emit_constant(helper, ValueSlot(self.address + 8 * (ordinal % config.p1_branches)),
                              work, allow_disguise=False)
        crafter.emit_gadget("add_rr", work, dst=destination, src=helper)
        crafter.emit_gadget("load8", work, dst=destination, src=destination)
        crafter.emit_constant(helper, ValueSlot(config.p1_modulus - 1), work,
                              allow_disguise=False)
        crafter.emit_gadget("and_rr", work, dst=destination, src=helper)
        crafter.restore(spilled)
