"""Opaque-constant materialization (the ROPfuscator layer, ``+OC``).

Chain slots holding sensitive constants — gadget addresses and immediates —
are no longer stored literally.  Instead the chain recombines each value at
run time from the P1 opaque array (§V-A): the extraction
``A[f(x)*s + b] mod m`` yields the fixed residue ``a_b`` for *any* program
state, and the chain stores only the remainder ``value - a_b``.  A static
tool that wants the literal back must both mimic the input-dependent index
computation and prove the array's periodic invariant — the same reasoning
burden P1 places on branch displacements, now extended to the chain's own
payload.

Two forms are emitted by :class:`repro.core.crafting.ChainCrafter`:

* **value form** (:func:`emit_opaque_value`) — an immediate destined for a
  register is rebuilt as ``pop remainder ; extract a_b ; add`` so the
  literal never appears among the chain bytes;
* **gadget-address form** (:func:`emit_opaque_gadget`) — a gadget slot is
  emitted as junk bytes (:class:`repro.core.chain.OpaqueGadgetSlot`) and a
  materializer sequence right before it recombines the real address and
  stores it into the slot (via a :class:`repro.core.chain.LabelAddressSlot`)
  just before the preceding ``ret`` consumes it.  This is why the layer is
  disabled under ``read_only_chains``: the chain writes to itself.

Grid-wise the layer realizes the ``+OC`` suffix of the Table II
configuration axis added by the protection profiles
(:data:`repro.core.config.PROTECTION_PROFILES`), e.g. ``ROP1.00+OC``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.chain import LabelAddressSlot, OpaqueGadgetSlot, ValueSlot
from repro.gadgets.gadget import Gadget
from repro.isa.registers import Register

_MASK64 = (1 << 64) - 1


def free_scratch(crafter, avoid, count: int) -> Optional[list]:
    """``count`` truly-free scratch registers, or None when unavailable.

    Unlike :meth:`ChainCrafter.scratch` this never spills: the opaque layers
    are opportunistic and fall back to literal slots under register pressure
    rather than emitting a spill that could fail half-way.
    """
    from repro.core.crafting import _SCRATCH_ORDER

    blocked = set(avoid) | set(crafter._reserved) | {Register.RSP, Register.RBP}
    free = [r for r in _SCRATCH_ORDER if r not in blocked]
    if len(free) < count:
        return None
    return free[:count]


def emit_opaque_value(crafter, dst: Register, element: ValueSlot,
                      avoid) -> bool:
    """Load ``element.value`` into ``dst`` without storing it in the chain.

    Emits ``extract a_b -> dst ; pop remainder ; add dst, remainder`` where
    ``remainder = value - a_b``.  Returns False (nothing emitted) when the
    register pressure does not allow it; the caller falls back to a literal
    slot.  Clobbers flags — callers gate on flag-safe sites.
    """
    array = crafter.opaque_array
    if array is None or array.address is None:
        return False
    # dst + remainder + the extraction's internal helper must all be free
    free = free_scratch(crafter, set(avoid) | {dst}, 2)
    if free is None:
        return False
    remainder_reg = free[0]
    work = frozenset(avoid) | {dst, remainder_reg}
    ordinal = crafter._opaque_ordinal
    crafter._opaque_ordinal += 1
    fixed = array.fixed_part(ordinal)
    crafter._in_opaque = True
    try:
        array.emit_extraction(crafter, dst, ordinal, crafter._current_roplet,
                              work)
        remainder = (element.value - fixed) & _MASK64
        crafter.emit_gadget("pop", work, operand=ValueSlot(remainder),
                            dst=remainder_reg)
        crafter.emit_gadget("add_rr", work, dst=dst, src=remainder_reg)
    finally:
        crafter._in_opaque = False
    crafter._opaque_values += 1
    return True


def emit_opaque_gadget(crafter, gadget: Gadget, avoid) -> bool:
    """Emit ``gadget``'s slot as junk bytes materialized at run time.

    The sequence placed right before the slot computes the real address
    (``extract a_b ; pop remainder ; add``), pops the slot's own chain
    address (a :class:`LabelAddressSlot`) and stores the recombined address
    through it.  When the store's gadget returns, the next slot — the opaque
    one — already holds the real address.  Returns False (nothing emitted)
    when register pressure or configuration forbids it.
    """
    array = crafter.opaque_array
    if array is None or array.address is None:
        return False
    if crafter.config.read_only_chains:
        return False
    # address + value + remainder + the extraction's internal helper
    free = free_scratch(crafter, avoid, 4)
    if free is None:
        return False
    addr_reg, value_reg, remainder_reg = free[:3]
    work = frozenset(avoid) | {addr_reg, value_reg, remainder_reg}
    ordinal = crafter._opaque_ordinal
    crafter._opaque_ordinal += 1
    fixed = array.fixed_part(ordinal)
    crafter._in_opaque = True
    try:
        array.emit_extraction(crafter, value_reg, ordinal,
                              crafter._current_roplet, work)
        remainder = (gadget.address - fixed) & _MASK64
        crafter.emit_gadget("pop", work, operand=ValueSlot(remainder),
                            dst=remainder_reg)
        crafter.emit_gadget("add_rr", work, dst=value_reg, src=remainder_reg)
        slot_label = crafter._fresh_label("opq")
        crafter.emit_gadget("pop", work, operand=LabelAddressSlot(slot_label),
                            dst=addr_reg)
        crafter.emit_gadget("store8", work, dst=addr_reg, src=value_reg)
        crafter.chain.label(slot_label)
        crafter.chain.append(OpaqueGadgetSlot(gadget))
    finally:
        crafter._in_opaque = False
    crafter._opaque_slots += 1
    return True
