"""P2: artificial data dependencies against brute-force path flipping (§V-B).

For an equality-driven branch ``cmp a, b ; je/jne L`` the rewriter prepends,
to each of the two destination blocks, a chain-pointer perturbation that is
zero exactly when the data condition that legitimately leads there holds:

* on the path taken when ``a == b``:       ``rsp += 16 * (a - b)``
* on the path taken when ``a != b``:       ``rsp += 16 * (1 - notZero(a - b))``

``notZero`` is computed without reading the condition flags, so an attacker
who flips the recorded branch decision (ROPMEMU/ROPDissector style) without
also fixing the operands sends the chain pointer into unintended bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

from repro.core.chain import ValueSlot
from repro.core.roplets import RopletKind
from repro.isa.operands import Imm, Reg
from repro.isa.registers import Register

#: Multiplier applied to the perturbation (the paper's ``x``).
PERTURBATION_SCALE_SHIFT = 4

_MASK64 = (1 << 64) - 1


@dataclass
class P2Perturbation:
    """A perturbation to prepend to one block.

    Attributes:
        block: start address of the protected block.
        reg_a: first compared operand (always a register).
        operand_b: second compared operand (register or immediate value).
        mode: ``"equal"`` when the block is legitimately reached with
            ``a == b``, ``"notequal"`` otherwise.
    """

    block: int
    reg_a: Register
    operand_b: Union[Register, int]
    mode: str


def plan_p2(translated) -> Dict[int, List[P2Perturbation]]:
    """Decide which blocks receive P2 perturbations.

    Only equality-conditioned branches whose compared operands are a register
    and a register-or-immediate are shielded, and only when the destination
    block has a single predecessor (so the zero-perturbation invariant holds
    on every legitimate path reaching it).

    The returned plan also reserves the compared registers on the branch
    roplets themselves (``roplet.compare_operands`` stays authoritative); the
    crafter adds them to the branch's avoid set so the branch lowering cannot
    clobber them before the perturbation runs.
    """
    plan: Dict[int, List[P2Perturbation]] = {}
    predecessors = translated.cfg.predecessors()
    for block in translated.block_order():
        for roplet in block.roplets:
            if roplet.kind is not RopletKind.INTRA_TRANSFER:
                continue
            if roplet.condition not in ("e", "ne") or not roplet.compare_operands:
                continue
            operands = roplet.compare_operands
            if not isinstance(operands[0], Reg):
                continue
            reg_a = operands[0].reg
            second = operands[1]
            if isinstance(second, Reg):
                operand_b: Union[Register, int] = second.reg
                if second.reg is reg_a:
                    operand_b = 0  # test reg, reg idiom: condition is reg == 0
            elif isinstance(second, Imm):
                operand_b = second.value
            else:
                continue
            taken = roplet.branch_target
            successors = [s for s in block.successors if s != taken]
            fallthrough = successors[0] if successors else None
            taken_mode = "equal" if roplet.condition == "e" else "notequal"
            fall_mode = "notequal" if roplet.condition == "e" else "equal"
            for target, mode in ((taken, taken_mode), (fallthrough, fall_mode)):
                if target is None or target not in translated.blocks:
                    continue
                if len(predecessors.get(target, set())) != 1:
                    continue
                plan.setdefault(target, []).append(
                    P2Perturbation(block=target, reg_a=reg_a, operand_b=operand_b, mode=mode)
                )
            # reserve the compared registers on the branch roplet so the
            # branch lowering's scratch choices cannot clobber them
            roplet.live_after = set(roplet.live_after) | {reg_a}
            if isinstance(operand_b, Register):
                roplet.live_after.add(operand_b)
    return plan


def emit_p2(crafter, perturbation: P2Perturbation, avoid) -> None:
    """Emit the chain-pointer perturbation at the head of a protected block."""
    work = frozenset(avoid) | {perturbation.reg_a}
    if isinstance(perturbation.operand_b, Register):
        work = work | {perturbation.operand_b}
    regs, spilled = crafter.scratch(work, 2)
    acc, helper = regs
    work = work | {acc, helper}

    # acc = a - b
    crafter.emit_gadget("mov_rr", work, dst=acc, src=perturbation.reg_a)
    if isinstance(perturbation.operand_b, Register):
        crafter.emit_gadget("sub_rr", work, dst=acc, src=perturbation.operand_b)
    else:
        crafter.emit_constant(helper, ValueSlot(perturbation.operand_b & _MASK64), work,
                              allow_disguise=False)
        crafter.emit_gadget("sub_rr", work, dst=acc, src=helper)

    if perturbation.mode == "equal":
        # rsp += 16 * (a - b): zero exactly on the legitimate path
        crafter.emit_constant(helper, ValueSlot(PERTURBATION_SCALE_SHIFT), work,
                              allow_disguise=False)
        crafter.emit_gadget("shl_rr", work, dst=acc, src=helper)
        crafter.restore(spilled)
        crafter.emit_gadget("add_rsp_r", work, src=acc)
        return

    # rsp += 16 * (1 - notZero(a - b)) with a flag-independent notZero
    crafter.emit_gadget("mov_rr", work, dst=helper, src=acc)
    crafter.emit_gadget("neg", work, dst=helper)
    crafter.emit_gadget("or_rr", work, dst=helper, src=acc)
    crafter.emit_constant(acc, ValueSlot(63), work, allow_disguise=False)
    crafter.emit_gadget("shr_rr", work, dst=helper, src=acc)
    crafter.emit_constant(acc, ValueSlot(1), work, allow_disguise=False)
    crafter.emit_gadget("xor_rr", work, dst=helper, src=acc)
    crafter.emit_constant(acc, ValueSlot(PERTURBATION_SCALE_SHIFT), work,
                          allow_disguise=False)
    crafter.emit_gadget("shl_rr", work, dst=helper, src=acc)
    crafter.restore(spilled)
    crafter.emit_gadget("add_rsp_r", work, src=helper)
