"""Instruction hiding inside opaque predicate bodies (``+IH``).

The second ROPfuscator layer: a roplet's real gadget sequence is emitted in
the *middle* of an opaque predicate evaluation, so a linear sweep over the
chain cannot separate predicate bookkeeping from program computation.

The wrapper is a P1 extraction split in two around the real lowering:

* **prologue** — ``guard = A[f(x)*s + b] mod m`` computes the invariant
  residue ``a_b`` into a reserved register (the predicate's first half);
* **body** — the roplet's genuine gadgets, emitted contiguously so their
  internal flag dependencies survive; the guard register is reserved across
  the lowering so neither scratch allocation nor diversified junk pops
  clobber it;
* **epilogue** — ``rsp += (guard - a_b) << PERTURBATION_SCALE_SHIFT``, the
  P2-style coupling (§V-B): on the legitimate path the perturbation is zero,
  but an attacker who guesses the predicate's outcome wrong derails the
  chain pointer, so brute-forcing the predicate away breaks the program.

Grid-wise the layer realizes the ``+IH`` suffix of the Table II
configuration axis added by the protection profiles
(:data:`repro.core.config.PROTECTION_PROFILES`), e.g. ``ROP1.00+OC+IH``.
"""

from __future__ import annotations

from typing import Callable, Set

from repro.core.chain import ValueSlot
from repro.core.predicates.opaque import free_scratch
from repro.core.predicates.p2_datadep import PERTURBATION_SCALE_SHIFT
from repro.isa.instructions import Mnemonic
from repro.isa.operands import Mem, Reg
from repro.isa.registers import Register


def _touched_registers(instruction) -> Set[Register]:
    """Every register the instruction may read or write.

    The roplet's ``avoid_set`` only covers *live* registers; a destination
    that is dead afterwards is not in it, yet the body's lowering writes it —
    the guard must not alias any such register.
    """
    registers: Set[Register] = set()
    for operand in instruction.operands:
        if isinstance(operand, Reg):
            registers.add(operand.reg)
        elif isinstance(operand, Mem):
            if operand.base is not None:
                registers.add(operand.base)
            if operand.index is not None:
                registers.add(operand.index)
    if instruction.mnemonic in (Mnemonic.CQO, Mnemonic.IDIV):
        registers |= {Register.RAX, Register.RDX}
    return registers


def emit_hidden(crafter, roplet, lower: Callable[[], None]) -> None:
    """Wrap ``lower()`` (the roplet's real lowering) in a predicate body.

    Raises:
        RewriteError: before anything is emitted when scratch registers are
            unavailable.  A failure raised by ``lower()`` itself propagates —
            the caller must not re-lower the roplet (its gadgets may already
            be partially emitted).
    """
    from repro.core.crafting import RewriteError

    array = crafter.opaque_array
    if array is None or array.address is None:
        raise RewriteError("instruction hiding requires the opaque array")
    avoid = frozenset(roplet.avoid_set()
                      | _touched_registers(roplet.instruction))
    # guard + helper + the extraction's internal helper, without spilling
    free = free_scratch(crafter, avoid, 3)
    if free is None:
        raise RewriteError("not enough scratch registers for instruction hiding")
    guard, helper = free[:2]
    work = frozenset(avoid) | {guard, helper}
    ordinal = crafter._opaque_ordinal
    crafter._opaque_ordinal += 1
    fixed = array.fixed_part(ordinal)

    # prologue: first half of the predicate evaluation
    array.emit_extraction(crafter, guard, ordinal, roplet, work)

    # body: the real instruction, with the guard pinned across it
    reserved = crafter._reserved
    crafter._reserved = frozenset(reserved) | {guard}
    try:
        lower()
    finally:
        crafter._reserved = reserved

    # epilogue: second half — a perturbation that is zero iff the predicate
    # held (helper may have been clobbered by the body; it is re-loaded)
    crafter.emit_constant(helper, ValueSlot(fixed), work, allow_disguise=False)
    crafter.emit_gadget("sub_rr", work, dst=guard, src=helper)
    crafter.emit_constant(helper, ValueSlot(PERTURBATION_SCALE_SHIFT), work,
                          allow_disguise=False)
    crafter.emit_gadget("shl_rr", work, dst=guard, src=helper)
    crafter.emit_gadget("add_rsp_r", work, src=guard)
    crafter._hidden_instances += 1
