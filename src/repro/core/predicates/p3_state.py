"""P3: state-space widening coupled with program data flows (§V-C).

Two variants are implemented:

* the **loop** variant (an adaptation of the FOR predicate of Ollivier et
  al.): a dead register is opaquely recomputed through a loop indexed by one
  input-derived byte and merged back into the symbolic register, preserving
  its value while introducing 2^8 artificial states for symbolic exploration;
* the **array** variant (the paper's new second variant): an input-derived
  value performs an opaque, residue-preserving update of the P1 array,
  creating implicit flows between program inputs and branch decisions taken
  later in the chain.
"""

from __future__ import annotations

from repro.core.chain import DeltaSlot, ValueSlot
from repro.isa.registers import Register

_MASK64 = (1 << 64) - 1


def _pick_symbolic(crafter, roplet) -> Register:
    candidates = [r for r in sorted(roplet.symbolic_registers, key=int)
                  if r not in (Register.RSP, Register.RBP)]
    if not candidates:
        from repro.core.crafting import RewriteError

        raise RewriteError("no symbolic register available for P3")
    return crafter.rng.choice(candidates)


def emit_p3(crafter, roplet, variant: str) -> None:
    """Insert one P3 instance before the lowering of ``roplet``."""
    if variant == "loop":
        _emit_loop_variant(crafter, roplet)
    elif variant == "array":
        _emit_array_variant(crafter, roplet)
    else:
        raise ValueError(f"unknown P3 variant {variant!r}")


def _emit_loop_variant(crafter, roplet) -> None:
    """``for (i = 0; i < (char) sym; ++i) dead++`` folded back into ``sym``."""
    from repro.core.crafting import RewriteError

    symbolic = _pick_symbolic(crafter, roplet)
    avoid = roplet.avoid_set() | {symbolic}
    regs, spilled = crafter.scratch(avoid, 5)
    if spilled:
        crafter.restore(spilled)
        raise RewriteError("not enough scratch registers for the P3 loop variant")
    dead, counter, limit, helper, disp = regs
    work = frozenset(avoid) | set(regs)

    head = crafter._fresh_label("p3_head")
    done = crafter._fresh_label("p3_done")
    exit_anchor = crafter._fresh_label("p3_exit_anchor")
    back_anchor = crafter._fresh_label("p3_back_anchor")

    # dead = 0 ; limit = sym & 0xff ; counter = 0
    crafter.emit_gadget("xor_rr", work, dst=dead, src=dead)
    crafter.emit_gadget("mov_rr", work, dst=limit, src=symbolic)
    crafter.emit_constant(helper, ValueSlot(0xFF), work, allow_disguise=False)
    crafter.emit_gadget("and_rr", work, dst=limit, src=helper)
    crafter.emit_gadget("xor_rr", work, dst=counter, src=counter)

    # loop head: exit when counter >= limit
    crafter.chain.label(head)
    crafter.emit_gadget("cmp_rr", work, dst=counter, src=limit)
    crafter.emit_gadget("set", work, cc="ge", dst=helper)
    crafter.emit_gadget("movzx_rr1", work, dst=helper, src=helper)
    crafter.emit_gadget("neg", work, dst=helper)
    crafter.emit_gadget("pop", work, operand=DeltaSlot(done, exit_anchor), dst=disp)
    crafter.emit_gadget("and_rr", work, dst=disp, src=helper)
    crafter.emit_gadget("add_rsp_r", work, src=disp)
    crafter.chain.label(exit_anchor)

    # body: dead++ ; counter++
    crafter.emit_constant(helper, ValueSlot(1), work, allow_disguise=False)
    crafter.emit_gadget("add_rr", work, dst=dead, src=helper)
    crafter.emit_gadget("add_rr", work, dst=counter, src=helper)
    # back edge
    crafter.emit_gadget("pop", work, operand=DeltaSlot(head, back_anchor), dst=disp)
    crafter.emit_gadget("add_rsp_r", work, src=disp)
    crafter.chain.label(back_anchor)

    crafter.chain.label(done)
    # sym = (sym & ~0xff) | (dead & 0xff)  — value preserving
    crafter.emit_constant(helper, ValueSlot(~0xFF & _MASK64), work, allow_disguise=False)
    crafter.emit_gadget("and_rr", work, dst=symbolic, src=helper)
    crafter.emit_constant(helper, ValueSlot(0xFF), work, allow_disguise=False)
    crafter.emit_gadget("and_rr", work, dst=dead, src=helper)
    crafter.emit_gadget("or_rr", work, dst=symbolic, src=dead)


def _emit_array_variant(crafter, roplet) -> None:
    """Opaquely update one P1 array cell with an input-derived multiple of m."""
    from repro.core.crafting import RewriteError

    array = crafter.opaque_array
    if array is None or array.address is None:
        raise RewriteError("P3 array variant requires the P1 opaque array")
    symbolic = _pick_symbolic(crafter, roplet)
    avoid = roplet.avoid_set() | {symbolic}
    regs, spilled = crafter.scratch(avoid, 4)
    if spilled:
        crafter.restore(spilled)
        raise RewriteError("not enough scratch registers for the P3 array variant")
    address, value, amount, helper = regs
    work = frozenset(avoid) | set(regs)
    config = crafter.config
    ordinal = crafter.rng.randrange(config.p1_branches)

    # address = base + ((sym mod p) * s + ordinal) * 8
    crafter.emit_gadget("mov_rr", work, dst=address, src=symbolic)
    crafter.emit_constant(helper, ValueSlot(config.p1_repetitions - 1), work, allow_disguise=False)
    crafter.emit_gadget("and_rr", work, dst=address, src=helper)
    stride = config.p1_period * 8
    crafter.emit_constant(helper, ValueSlot(stride.bit_length() - 1), work, allow_disguise=False)
    crafter.emit_gadget("shl_rr", work, dst=address, src=helper)
    crafter.emit_constant(helper, ValueSlot(array.address + 8 * ordinal), work, allow_disguise=False)
    crafter.emit_gadget("add_rr", work, dst=address, src=helper)

    # value = A[address] + m * (sym & 7)   — the residue class is preserved
    crafter.emit_gadget("load8", work, dst=value, src=address)
    crafter.emit_gadget("mov_rr", work, dst=amount, src=symbolic)
    crafter.emit_constant(helper, ValueSlot(7), work, allow_disguise=False)
    crafter.emit_gadget("and_rr", work, dst=amount, src=helper)
    crafter.emit_constant(helper, ValueSlot(config.p1_modulus.bit_length() - 1), work,
                          allow_disguise=False)
    crafter.emit_gadget("shl_rr", work, dst=amount, src=helper)
    crafter.emit_gadget("add_rr", work, dst=value, src=amount)
    crafter.emit_gadget("store8", work, dst=address, src=value)
