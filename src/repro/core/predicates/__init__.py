"""Strengthening predicates P1, P2, P3 and gadget confusion (§V).

Each predicate targets one of the general attack surfaces of §III-A:

* :mod:`repro.core.predicates.p1_array` — P1, anti-disassembly (A1): branch
  displacements are partly hidden in a periodic opaque array.
* :mod:`repro.core.predicates.p2_datadep` — P2, anti-brute-force (A2):
  artificial data dependencies break the control flow when branches are
  flipped without satisfying their data constraints.
* :mod:`repro.core.predicates.p3_state` — P3, state-space widening (A3):
  input-coupled opaque computations inflate the state space that semantic
  attacks must explore.

Gadget confusion (immediate disguising and unaligned chain strides) lives in
the crafter itself since it is a property of how chain slots are emitted.

Two further layers reuse the P1/P2 machinery to build the protection
profiles of :data:`repro.core.config.PROTECTION_PROFILES` (the ``+OC`` /
``+IH`` suffixes on the Table II configuration axis, stressing the same
Figure 5 / Table II grids as the paper's own rows):

* :mod:`repro.core.predicates.opaque` — opaque-constant materialization
  (``+OC``): eligible immediates and gadget-slot addresses are recombined at
  run time from P1-style array extractions instead of being stored literally.
* :mod:`repro.core.predicates.hiding` — instruction hiding (``+IH``): real
  roplet lowerings are interleaved inside opaque predicate evaluation
  bodies, sealed by a P2-style zero perturbation.
"""

from repro.core.predicates.p1_array import OpaqueArray
from repro.core.predicates.p2_datadep import P2Perturbation, plan_p2, emit_p2
from repro.core.predicates.p3_state import emit_p3
from repro.core.predicates.opaque import emit_opaque_value, emit_opaque_gadget
from repro.core.predicates.hiding import emit_hidden

__all__ = ["OpaqueArray", "P2Perturbation", "plan_p2", "emit_p2", "emit_p3",
           "emit_opaque_value", "emit_opaque_gadget", "emit_hidden"]
