"""Strengthening predicates P1, P2, P3 and gadget confusion (§V).

Each predicate targets one of the general attack surfaces of §III-A:

* :mod:`repro.core.predicates.p1_array` — P1, anti-disassembly (A1): branch
  displacements are partly hidden in a periodic opaque array.
* :mod:`repro.core.predicates.p2_datadep` — P2, anti-brute-force (A2):
  artificial data dependencies break the control flow when branches are
  flipped without satisfying their data constraints.
* :mod:`repro.core.predicates.p3_state` — P3, state-space widening (A3):
  input-coupled opaque computations inflate the state space that semantic
  attacks must explore.

Gadget confusion (immediate disguising and unaligned chain strides) lives in
the crafter itself since it is a property of how chain slots are emitted.
"""

from repro.core.predicates.p1_array import OpaqueArray
from repro.core.predicates.p2_datadep import P2Perturbation, plan_p2, emit_p2
from repro.core.predicates.p3_state import emit_p3

__all__ = ["OpaqueArray", "P2Perturbation", "plan_p2", "emit_p2", "emit_p3"]
