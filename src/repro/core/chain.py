"""The chain model: the sequence of 8-byte slots that makes up a ROP payload.

A chain is an ordered list of elements.  Most elements occupy one 8-byte slot
(gadget addresses, immediate operands, junk fillers); labels occupy no space
and mark positions that branch displacements refer to; raw padding of
arbitrary length implements the unaligned-RSP gadget confusion trick.

Branch displacements are symbolic until :meth:`Chain.materialize` runs: a
:class:`DeltaSlot` resolves to ``address(target) - address(anchor) -
subtract``, where the anchor label is placed right after the ``add rsp``
gadget consuming the displacement (that is where the chain pointer points
when the addition executes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.gadgets.gadget import Gadget


class ChainError(Exception):
    """Raised when a chain cannot be materialized."""


@dataclass
class ChainLabel:
    """A zero-size position marker."""

    name: str


@dataclass
class GadgetSlot:
    """An 8-byte slot holding a gadget's address."""

    gadget: Gadget


@dataclass
class ValueSlot:
    """An 8-byte immediate operand slot."""

    value: int


@dataclass
class DeltaSlot:
    """A slot whose value is a chain-relative displacement.

    Attributes:
        target: label of the branch destination inside the chain.
        anchor: label of the position the chain pointer will have when the
            displacement is added to ``rsp``.
        subtract: extra constant subtracted from the displacement (P1 stores
            this part in the opaque array instead of the chain).
    """

    target: str
    anchor: str
    subtract: int = 0


@dataclass
class JunkSlot:
    """An 8-byte slot whose content is irrelevant (filled with random bytes)."""


@dataclass
class RawPadding:
    """``length`` bytes of filler, used for unaligned-RSP gadget confusion."""

    length: int


@dataclass
class LabelAddressSlot:
    """A slot holding the absolute chain address of ``target``.

    Used by opaque-constant materialization: a ``pop`` of this slot gives the
    chain the address of one of its own slots, which a later ``store``
    overwrites at run time.
    """

    target: str


@dataclass
class OpaqueGadgetSlot:
    """A gadget slot whose static bytes are junk (opaque-constant layer).

    The materialized chain stores random bytes here; the gadget sequence
    emitted immediately before the slot recombines the real address from a
    P1-style opaque extraction and writes it into the slot just before the
    preceding gadget's ``ret`` consumes it.  A linear scan of the chain bytes
    therefore never sees ``gadget.address``.
    """

    gadget: Gadget


@dataclass
class DisguiseBaseSlot:
    """The second half of a disguised immediate: a real gadget address."""

    pair: int


@dataclass
class DisguisedSlot:
    """An immediate disguised as ``value + base`` where ``base`` is a gadget address.

    A ``sub`` gadget in the chain recovers the original value at run time, so
    a scan of the chain bytes sees two address-looking values (§V-D).
    """

    inner: Union[ValueSlot, DeltaSlot]
    pair: int


ChainElement = Union[ChainLabel, GadgetSlot, ValueSlot, DeltaSlot, JunkSlot,
                     RawPadding, DisguiseBaseSlot, DisguisedSlot,
                     LabelAddressSlot, OpaqueGadgetSlot]

_MASK64 = (1 << 64) - 1


@dataclass
class MaterializedChain:
    """The result of laying out a chain at a concrete address."""

    base_address: int
    data: bytes
    label_addresses: Dict[str, int]
    slot_count: int


class Chain:
    """An under-construction ROP chain for one function."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.elements: List[ChainElement] = []

    # -- construction --------------------------------------------------------
    def append(self, element: ChainElement) -> None:
        """Append one element."""
        self.elements.append(element)

    def extend(self, elements: Sequence[ChainElement]) -> None:
        """Append several elements."""
        self.elements.extend(elements)

    def label(self, name: str) -> None:
        """Place a label at the current position."""
        self.elements.append(ChainLabel(name))

    def gadget_slots(self) -> List[Union[GadgetSlot, OpaqueGadgetSlot]]:
        """All gadget slots, in order (used by the Table III statistics).

        Opaque gadget slots count too: each one dispatches a real gadget at
        run time even though its static bytes are junk.
        """
        return [e for e in self.elements
                if isinstance(e, (GadgetSlot, OpaqueGadgetSlot))]

    # -- layout --------------------------------------------------------------
    @staticmethod
    def _element_size(element: ChainElement) -> int:
        if isinstance(element, ChainLabel):
            return 0
        if isinstance(element, RawPadding):
            return element.length
        return 8

    def materialize(self, base_address: int, rng: Optional[random.Random] = None,
                    gadget_addresses: Sequence[int] = ()) -> MaterializedChain:
        """Lay the chain out at ``base_address`` and produce its raw bytes.

        Args:
            base_address: load address of the first slot.
            rng: randomness source for junk bytes and disguise bases.
            gadget_addresses: pool of addresses used for disguise bases; when
                empty, disguised slots fall back to plain values.
        """
        rng = rng or random.Random(0)
        # first pass: addresses of every element and label
        addresses: List[int] = []
        labels: Dict[str, int] = {}
        cursor = base_address
        for element in self.elements:
            addresses.append(cursor)
            if isinstance(element, ChainLabel):
                if element.name in labels:
                    raise ChainError(f"duplicate chain label {element.name!r}")
                labels[element.name] = cursor
            cursor += self._element_size(element)

        # choose disguise bases per pair id
        pair_bases: Dict[int, int] = {}
        for element in self.elements:
            pair = None
            if isinstance(element, (DisguiseBaseSlot, DisguisedSlot)):
                pair = element.pair
            if pair is not None and pair not in pair_bases:
                pair_bases[pair] = rng.choice(list(gadget_addresses)) if gadget_addresses else 0

        def resolve(element: ChainElement) -> int:
            if isinstance(element, GadgetSlot):
                return element.gadget.address
            if isinstance(element, ValueSlot):
                return element.value & _MASK64
            if isinstance(element, DeltaSlot):
                if element.target not in labels or element.anchor not in labels:
                    raise ChainError(
                        f"unresolved chain label in {self.name}: "
                        f"{element.target!r} / {element.anchor!r}"
                    )
                return (labels[element.target] - labels[element.anchor]
                        - element.subtract) & _MASK64
            if isinstance(element, JunkSlot):
                return rng.getrandbits(64)
            if isinstance(element, LabelAddressSlot):
                if element.target not in labels:
                    raise ChainError(
                        f"unresolved chain label in {self.name}: {element.target!r}")
                return labels[element.target] & _MASK64
            if isinstance(element, OpaqueGadgetSlot):
                # the real address is stored at run time; emit junk bytes
                return rng.getrandbits(64)
            if isinstance(element, DisguiseBaseSlot):
                return pair_bases[element.pair] & _MASK64
            if isinstance(element, DisguisedSlot):
                return (resolve(element.inner) + pair_bases[element.pair]) & _MASK64
            raise ChainError(f"cannot resolve element {element!r}")

        # second pass: emit bytes
        out = bytearray()
        slots = 0
        for element in self.elements:
            if isinstance(element, ChainLabel):
                continue
            if isinstance(element, RawPadding):
                out += bytes(rng.getrandbits(8) for _ in range(element.length))
                continue
            out += resolve(element).to_bytes(8, "little")
            slots += 1
        return MaterializedChain(base_address=base_address, data=bytes(out),
                                 label_addresses=labels, slot_count=slots)
