"""Roplets: the rewriter's intermediate representation (§IV-B1).

Each original instruction is translated into one roplet carrying the
instruction itself plus the analysis facts the crafter needs: registers live
around it, whether the condition flags are still needed afterwards, and which
live registers hold input-derived values (for P3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Set

from repro.isa.instructions import Instruction
from repro.isa.registers import Register


class RopletKind(enum.Enum):
    """The roplet taxonomy of §IV-B1."""

    INTRA_TRANSFER = "intra_transfer"
    INTER_TRANSFER = "inter_transfer"
    EPILOGUE = "epilogue"
    DIRECT_STACK = "direct_stack"
    STACK_POINTER_REF = "stack_pointer_ref"
    INSTRUCTION_POINTER_REF = "instruction_pointer_ref"
    DATA_MOVEMENT = "data_movement"
    ALU = "alu"


@dataclass
class Roplet:
    """One basic rewriting operation.

    Attributes:
        kind: the roplet kind.
        instruction: the original instruction being translated.
        address: original address of the instruction.
        live_before: registers live before the instruction.
        live_after: registers live after the instruction.
        flags_live_after: True when a later instruction may read the flags
            this instruction leaves behind.
        symbolic_registers: live registers holding input-derived values at
            this point (P3 insertion candidates).
        branch_target: original target address for transfers.
        condition: condition code for conditional transfers ('' otherwise).
        compare_operands: the operands of the flag-setting comparison that
            feeds a conditional transfer (used by P2).
    """

    kind: RopletKind
    instruction: Instruction
    address: int
    live_before: Set[Register] = field(default_factory=set)
    live_after: Set[Register] = field(default_factory=set)
    flags_live_after: bool = False
    symbolic_registers: Set[Register] = field(default_factory=set)
    branch_target: Optional[int] = None
    condition: str = ""
    compare_operands: Optional[tuple] = None

    def avoid_set(self) -> frozenset:
        """Registers a lowering of this roplet must not clobber."""
        return frozenset(self.live_before | self.live_after)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.kind.value} {self.address:#x}: {self.instruction}>"
