"""Translation: original instructions to roplets (Figure 2, first stage).

The translator walks the recovered CFG block by block and classifies every
instruction into a roplet kind, attaching liveness, flag-liveness and
input-taint facts.  Unsupported shapes (``push rsp``, rsp-indexed memory with
an index register, indirect intra-procedural branches) raise
:class:`TranslationError`, which the coverage study counts as rewriting
failures exactly like the paper does (§VII-C1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis import compute_liveness, compute_symbolic_registers, recover_cfg
from repro.analysis.cfg_recovery import FunctionCFG
from repro.binary.image import BinaryImage
from repro.core.roplets import Roplet, RopletKind
from repro.isa.instructions import Instruction, Mnemonic
from repro.isa.operands import Imm, Mem, Reg, references_rsp
from repro.isa.registers import Register


class TranslationError(Exception):
    """Raised when a function contains an instruction the rewriter cannot encode."""


@dataclass
class TranslatedBlock:
    """A basic block translated to roplets."""

    start: int
    roplets: List[Roplet] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)


@dataclass
class TranslatedFunction:
    """The output of the translation stage for one function."""

    name: str
    entry: int
    blocks: Dict[int, TranslatedBlock]
    cfg: FunctionCFG

    def block_order(self) -> List[TranslatedBlock]:
        """Blocks in original address order."""
        return [self.blocks[a] for a in sorted(self.blocks)]

    def roplet_count(self) -> int:
        """Number of roplets (== obfuscated program points, Table III's N)."""
        return sum(len(b.roplets) for b in self.blocks.values())


def classify_instruction(instruction: Instruction) -> RopletKind:
    """Map an instruction to its roplet kind (§IV-B1)."""
    m = instruction.mnemonic
    if m in (Mnemonic.JMP, Mnemonic.JCC):
        return RopletKind.INTRA_TRANSFER
    if m is Mnemonic.CALL:
        return RopletKind.INTER_TRANSFER
    if m in (Mnemonic.RET, Mnemonic.LEAVE):
        return RopletKind.EPILOGUE
    if m in (Mnemonic.PUSH, Mnemonic.POP):
        return RopletKind.DIRECT_STACK
    if any(references_rsp(op) for op in instruction.operands):
        return RopletKind.STACK_POINTER_REF
    if m in (Mnemonic.MOV, Mnemonic.MOVZX, Mnemonic.MOVSX, Mnemonic.LEA,
             Mnemonic.XCHG):
        return RopletKind.DATA_MOVEMENT
    return RopletKind.ALU


def _validate(instruction: Instruction, address: int) -> None:
    m = instruction.mnemonic
    if m is Mnemonic.PUSH and isinstance(instruction.operands[0], Reg) \
            and instruction.operands[0].reg is Register.RSP:
        raise TranslationError(f"push rsp at {address:#x} is not supported")
    if m is Mnemonic.POP and isinstance(instruction.operands[0], Reg) \
            and instruction.operands[0].reg is Register.RSP:
        raise TranslationError(f"pop rsp at {address:#x} is not supported")
    for operand in instruction.operands:
        if isinstance(operand, Mem) and operand.base is Register.RSP and operand.index is not None:
            raise TranslationError(
                f"rsp-based indexed memory operand at {address:#x} is not supported"
            )
        if isinstance(operand, Mem) and m is Mnemonic.PUSH and operand.base is Register.RSP:
            raise TranslationError(
                f"push of an rsp-relative operand at {address:#x} is not supported"
            )
    if m is Mnemonic.HLT:
        raise TranslationError(f"hlt at {address:#x} cannot be encoded in a chain")


def translate_function(image: BinaryImage, function_name: str) -> TranslatedFunction:
    """Recover, analyze and translate ``function_name`` into roplets."""
    cfg = recover_cfg(image, function_name)
    liveness = compute_liveness(cfg)
    symbolic = compute_symbolic_registers(cfg)

    blocks: Dict[int, TranslatedBlock] = {}
    for block in cfg.block_order():
        translated = TranslatedBlock(start=block.start, successors=list(block.successors))
        last_compare: Optional[Tuple] = None
        for address, instruction in block.instructions:
            _validate(instruction, address)
            kind = classify_instruction(instruction)
            roplet = Roplet(
                kind=kind,
                instruction=instruction,
                address=address,
                live_before=liveness.live_before.get(address, set()),
                live_after=liveness.live_after.get(address, set()),
                flags_live_after=address in liveness.flags_live_after,
                symbolic_registers=symbolic.get(address, set()) & liveness.live_before.get(address, set()),
            )
            if instruction.mnemonic in (Mnemonic.CMP, Mnemonic.TEST):
                last_compare = tuple(instruction.operands)
            if kind is RopletKind.INTRA_TRANSFER:
                target = instruction.operands[0]
                if not isinstance(target, Imm):
                    raise TranslationError(
                        f"indirect intra-procedural branch at {address:#x}"
                    )
                roplet.branch_target = target.value
                roplet.condition = instruction.condition
                roplet.compare_operands = last_compare
            blocks[block.start] = translated
            translated.roplets.append(roplet)
        blocks[block.start] = translated
    return TranslatedFunction(name=function_name, entry=cfg.entry, blocks=blocks, cfg=cfg)
