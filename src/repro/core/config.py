"""Configuration of the ROP rewriter (the ROPk settings of Table I).

Beyond the paper's own ``ROPk`` family this module also defines the
ROPfuscator-style *protection profiles*: named bundles of the two
opaque-predicate layers (opaque-constant materialization and instruction
hiding) with a qualitative robustness/overhead rank, applied on top of a base
:class:`RopConfig` either whole-program or per function.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict


@dataclass
class RopConfig:
    """Options controlling chain generation and strengthening predicates.

    The defaults reproduce the paper's ``ROPk`` configuration family
    (Table I): P1 instantiated with ``n=4, s=n, p=32`` and P3 applied to a
    fraction ``p3_fraction`` (the paper's *k*) of eligible program points.

    Attributes:
        p1_enabled: enable the anti-disassembly opaque-array predicate (§V-A).
        p2_enabled: enable the anti-brute-force data dependencies (§V-B).
        p3_enabled: enable state-space widening (§V-C).
        p3_fraction: fraction *k* of eligible program points receiving a P3
            instance.
        p3_variant: ``"loop"`` (the FOR-style first variant), ``"array"``
            (opaque P1-array updates, second variant) or ``"mixed"``.
        gadget_confusion: enable immediate disguising and unaligned RSP
            updates (§V-D).
        p1_branches: ``n`` — number of branch residues encoded in the array.
        p1_period: ``s`` — array period (cells per repetition, ``s >= n``).
        p1_repetitions: ``p`` — number of repetitions stored in the array.
        p1_modulus: ``m`` — residue modulus (power of two so the chain can
            reduce with a mask; the paper only requires ``m > n``).
        diversify_gadgets: draw diversified gadget variants from the pool.
        seed: RNG seed for all obfuscation-time random choices.
        read_only_chains: if True, P3's array-update variant is disabled so
            the generated chains never write to themselves or to the opaque
            array (the paper's read-only chain option, §IV-C), and the
            self-materializing opaque gadget slots (which write their own
            chain slot at run time) fall back to literal addresses.
        opaque_constants: enable opaque-constant materialization: eligible
            chain immediates and gadget-slot addresses are no longer stored
            literally but recombined at run time from a P1-style opaque
            extraction (the ROPfuscator layer).
        opaque_fraction: fraction of eligible slots materialized opaquely.
        instruction_hiding: interleave real roplet lowerings inside opaque
            predicate evaluation bodies, coupled to the chain pointer by a
            P2-style zero perturbation.
        hiding_fraction: fraction of eligible roplets hidden this way.
    """

    p1_enabled: bool = True
    p2_enabled: bool = True
    p3_enabled: bool = True
    p3_fraction: float = 0.0
    p3_variant: str = "mixed"
    gadget_confusion: bool = True
    p1_branches: int = 4
    p1_period: int = 4
    p1_repetitions: int = 32
    p1_modulus: int = 16
    diversify_gadgets: bool = True
    seed: int = 1
    read_only_chains: bool = False
    opaque_constants: bool = False
    opaque_fraction: float = 0.5
    instruction_hiding: bool = False
    hiding_fraction: float = 0.35

    def __post_init__(self) -> None:
        if not 0.0 <= self.p3_fraction <= 1.0:
            raise ValueError("p3_fraction must be in [0, 1]")
        if not 0.0 <= self.opaque_fraction <= 1.0:
            raise ValueError("opaque_fraction must be in [0, 1]")
        if not 0.0 <= self.hiding_fraction <= 1.0:
            raise ValueError("hiding_fraction must be in [0, 1]")
        if self.p1_modulus & (self.p1_modulus - 1):
            raise ValueError("p1_modulus must be a power of two")
        if self.p1_repetitions & (self.p1_repetitions - 1):
            raise ValueError("p1_repetitions must be a power of two")
        if self.p1_period < self.p1_branches:
            raise ValueError("p1_period must be >= p1_branches")
        if self.p3_variant not in ("loop", "array", "mixed"):
            raise ValueError("p3_variant must be 'loop', 'array' or 'mixed'")

    @classmethod
    def ropk(cls, k: float, seed: int = 1) -> "RopConfig":
        """The paper's ``ROPk`` configuration: all predicates on, P3 at ``k``."""
        return cls(p3_fraction=k, seed=seed)

    @classmethod
    def plain(cls, seed: int = 1) -> "RopConfig":
        """Plain ROP encoding with every strengthening predicate disabled.

        This is the baseline §V argues is *not* sufficient for obfuscation.
        """
        return cls(p1_enabled=False, p2_enabled=False, p3_enabled=False,
                   gadget_confusion=False, p3_fraction=0.0, seed=seed)


@dataclass(frozen=True)
class ProtectionProfile:
    """A named bundle of the opaque layers (ROPfuscator's protection table).

    Profiles are applied on top of a base :class:`RopConfig` — whole-program
    via :func:`repro.obfuscation.configs.apply_configuration` or per function
    via the ``profiles`` mapping of :func:`repro.core.rewriter.rop_obfuscate`
    — so different functions of one binary can trade robustness against
    overhead independently, mirroring ROPfuscator's per-function annotation.

    Attributes:
        name: profile name (the key in :data:`PROTECTION_PROFILES`).
        suffix: appended to configuration display names (``"ROP1.00+OC+IH"``).
        opaque_constants/opaque_fraction: see :class:`RopConfig`.
        instruction_hiding/hiding_fraction: see :class:`RopConfig`.
        robustness: qualitative rank (0-3) against automated deobfuscation.
        overhead: qualitative rank (0-3) of the size/run-time cost.
    """

    name: str
    suffix: str
    opaque_constants: bool = False
    opaque_fraction: float = 0.0
    instruction_hiding: bool = False
    hiding_fraction: float = 0.0
    robustness: int = 1
    overhead: int = 1

    def apply(self, config: RopConfig) -> RopConfig:
        """Return ``config`` with this profile's layers switched on.

        Profiles with an active layer also pin ``p3_variant`` to ``"loop"``:
        the opaque layers' security argument (and the shadow tracker's
        stable-region exactness) relies on the opaque array being
        runtime-constant, which P3's array-update variant would break.
        """
        updated = dataclasses.replace(
            config,
            opaque_constants=self.opaque_constants,
            opaque_fraction=self.opaque_fraction,
            instruction_hiding=self.instruction_hiding,
            hiding_fraction=self.hiding_fraction,
        )
        if self.opaque_constants or self.instruction_hiding:
            updated = dataclasses.replace(updated, p3_variant="loop")
        return updated


#: The robustness/overhead ladder, weakest to strongest.  ``baseline`` is the
#: paper's plain ROPk encoding; ``opaque`` adds opaque-constant
#: materialization (+OC); ``hidden`` adds instruction hiding (+IH); ``full``
#: stacks both — ROPfuscator's strongest row.
PROTECTION_PROFILES: Dict[str, ProtectionProfile] = {
    "baseline": ProtectionProfile(
        name="baseline", suffix="", robustness=1, overhead=1),
    "opaque": ProtectionProfile(
        name="opaque", suffix="+OC", opaque_constants=True,
        opaque_fraction=0.5, robustness=2, overhead=2),
    "hidden": ProtectionProfile(
        name="hidden", suffix="+IH", instruction_hiding=True,
        hiding_fraction=0.35, robustness=2, overhead=2),
    "full": ProtectionProfile(
        name="full", suffix="+OC+IH", opaque_constants=True,
        opaque_fraction=0.5, instruction_hiding=True, hiding_fraction=0.35,
        robustness=3, overhead=3),
}
