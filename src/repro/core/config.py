"""Configuration of the ROP rewriter (the ROPk settings of Table I)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RopConfig:
    """Options controlling chain generation and strengthening predicates.

    The defaults reproduce the paper's ``ROPk`` configuration family
    (Table I): P1 instantiated with ``n=4, s=n, p=32`` and P3 applied to a
    fraction ``p3_fraction`` (the paper's *k*) of eligible program points.

    Attributes:
        p1_enabled: enable the anti-disassembly opaque-array predicate (§V-A).
        p2_enabled: enable the anti-brute-force data dependencies (§V-B).
        p3_enabled: enable state-space widening (§V-C).
        p3_fraction: fraction *k* of eligible program points receiving a P3
            instance.
        p3_variant: ``"loop"`` (the FOR-style first variant), ``"array"``
            (opaque P1-array updates, second variant) or ``"mixed"``.
        gadget_confusion: enable immediate disguising and unaligned RSP
            updates (§V-D).
        p1_branches: ``n`` — number of branch residues encoded in the array.
        p1_period: ``s`` — array period (cells per repetition, ``s >= n``).
        p1_repetitions: ``p`` — number of repetitions stored in the array.
        p1_modulus: ``m`` — residue modulus (power of two so the chain can
            reduce with a mask; the paper only requires ``m > n``).
        diversify_gadgets: draw diversified gadget variants from the pool.
        seed: RNG seed for all obfuscation-time random choices.
        read_only_chains: if True, P3's array-update variant is disabled so
            the generated chains never write to themselves or to the opaque
            array (the paper's read-only chain option, §IV-C).
    """

    p1_enabled: bool = True
    p2_enabled: bool = True
    p3_enabled: bool = True
    p3_fraction: float = 0.0
    p3_variant: str = "mixed"
    gadget_confusion: bool = True
    p1_branches: int = 4
    p1_period: int = 4
    p1_repetitions: int = 32
    p1_modulus: int = 16
    diversify_gadgets: bool = True
    seed: int = 1
    read_only_chains: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.p3_fraction <= 1.0:
            raise ValueError("p3_fraction must be in [0, 1]")
        if self.p1_modulus & (self.p1_modulus - 1):
            raise ValueError("p1_modulus must be a power of two")
        if self.p1_repetitions & (self.p1_repetitions - 1):
            raise ValueError("p1_repetitions must be a power of two")
        if self.p1_period < self.p1_branches:
            raise ValueError("p1_period must be >= p1_branches")
        if self.p3_variant not in ("loop", "array", "mixed"):
            raise ValueError("p3_variant must be 'loop', 'array' or 'mixed'")

    @classmethod
    def ropk(cls, k: float, seed: int = 1) -> "RopConfig":
        """The paper's ``ROPk`` configuration: all predicates on, P3 at ``k``."""
        return cls(p3_fraction=k, seed=seed)

    @classmethod
    def plain(cls, seed: int = 1) -> "RopConfig":
        """Plain ROP encoding with every strengthening predicate disabled.

        This is the baseline §V argues is *not* sufficient for obfuscation.
        """
        return cls(p1_enabled=False, p2_enabled=False, p3_enabled=False,
                   gadget_confusion=False, p3_fraction=0.0, seed=seed)
