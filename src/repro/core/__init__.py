"""The paper's primary contribution: the ROP rewriter and its predicates.

:class:`repro.core.rewriter.RopRewriter` takes a compiled
:class:`repro.binary.BinaryImage` and a list of function names, and rewrites
each function into a self-contained ROP chain stored in the ``.ropchains``
section, replacing the original body with a pivoting stub (§IV).  The
strengthening predicates P1/P2/P3 and gadget confusion (§V) are controlled by
:class:`repro.core.config.RopConfig`; the opaque-constant and
instruction-hiding layers on top of them are bundled into named
:class:`repro.core.config.ProtectionProfile` instances
(:data:`repro.core.config.PROTECTION_PROFILES`), applied whole-program or per
function.
"""

from repro.core.config import (PROTECTION_PROFILES, ProtectionProfile,
                               RopConfig)
from repro.core.rewriter import RopRewriter, RewriteError, RewriteReport, rop_obfuscate

__all__ = ["RopConfig", "ProtectionProfile", "PROTECTION_PROFILES",
           "RopRewriter", "RewriteError", "RewriteReport", "rop_obfuscate"]
