"""Reproduction of "Hiding in the Particles: When ROP Meets Program Obfuscation".

The package is organised in layers (see DESIGN.md):

* substrates: :mod:`repro.isa`, :mod:`repro.memory`, :mod:`repro.binary`,
  :mod:`repro.cpu`, :mod:`repro.lang`, :mod:`repro.compiler`,
  :mod:`repro.analysis`, :mod:`repro.gadgets`;
* the paper's contribution: :mod:`repro.core` (the ROP rewriter and the
  P1/P2/P3 strengthening predicates);
* baselines: :mod:`repro.obfuscation` (VM obfuscation, flattening);
* attacks: :mod:`repro.attacks` (SE, DSE, TDS, ROP-aware tools);
* workloads and the evaluation harness: :mod:`repro.workloads`,
  :mod:`repro.evaluation`.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
