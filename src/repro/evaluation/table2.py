"""Table II: secret finding and code coverage across obfuscation configurations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.attacks import AttackBudget, coverage_attack, secret_finding_attack
from repro.attacks.dse import InputSpec
from repro.evaluation.configurations import (
    ObfuscationConfig,
    TABLE2_CONFIGURATIONS,
    apply_configuration,
)
from repro.workloads.randomfuns import RandomFunSpec, generate_random_function, generate_table2_suite


@dataclass
class Table2Row:
    """One row of Table II.

    Attributes:
        configuration: configuration name (``NATIVE``, ``ROP0.25``, ``2VM``...).
        secrets_found: functions whose secret was recovered within the budget.
        functions: functions attempted.
        average_time: mean time-to-success over the successful attempts.
        full_coverage: functions whose reachable probes were all covered.
        executions: total concrete executions spent across the attacks.
        instructions: total emulated instructions across the attacks.
        branch_restores: executions the backtracking DSE resumed from
            mid-path snapshots instead of the function entry.
    """

    configuration: str
    secrets_found: int
    functions: int
    average_time: float
    full_coverage: int
    executions: int = 0
    instructions: int = 0
    branch_restores: int = 0

    def as_cells(self) -> Sequence[object]:
        return (self.configuration, f"{self.secrets_found}/{self.functions}",
                f"{self.average_time:.2f}s", f"{self.full_coverage}/{self.functions}")


def run_table2(configurations: Optional[Sequence[ObfuscationConfig]] = None,
               specs: Optional[Sequence[RandomFunSpec]] = None,
               budget: Optional[AttackBudget] = None,
               include_coverage: bool = True, seed: int = 1) -> List[Table2Row]:
    """Run the Table II grid.

    The defaults use a scaled-down grid (see EXPERIMENTS.md); pass the full
    ``generate_table2_suite()`` and larger budgets to reproduce the paper's
    setup at full size.
    """
    configurations = list(configurations or TABLE2_CONFIGURATIONS)
    specs = list(specs or generate_table2_suite())
    budget = budget or AttackBudget()
    rows: List[Table2Row] = []

    # the reachable probe set is a property of the *native* function, so
    # sample it once per spec instead of once per (configuration, spec) pair
    reachable_by_spec: dict = {}

    for configuration in configurations:
        found = 0
        covered = 0
        executions = 0
        instructions = 0
        branch_restores = 0
        times: List[float] = []
        for spec in specs:
            secret_spec = RandomFunSpec(structure=spec.structure, input_size=spec.input_size,
                                        seed=spec.seed, point_test=True,
                                        loop_iterations=spec.loop_iterations)
            program, _, _ = generate_random_function(secret_spec)
            image = apply_configuration(program, [secret_spec.name], configuration, seed=seed)
            input_spec = InputSpec(argument_sizes=[spec.input_size])
            outcome = secret_finding_attack(image, secret_spec.name, input_spec, budget,
                                            seed=seed)
            executions += outcome.executions
            instructions += outcome.instructions
            branch_restores += outcome.branch_restores
            if outcome.success:
                found += 1
                times.append(outcome.time_to_success)

            if include_coverage:
                coverage_spec = RandomFunSpec(structure=spec.structure,
                                              input_size=spec.input_size, seed=spec.seed,
                                              point_test=False,
                                              loop_iterations=spec.loop_iterations)
                cov_program, _, probe_count = generate_random_function(coverage_spec)
                cov_image = apply_configuration(cov_program, [coverage_spec.name],
                                                configuration, seed=seed)
                spec_key = (spec.structure, spec.input_size, spec.seed,
                            spec.loop_iterations)
                reachable = reachable_by_spec.get(spec_key)
                if reachable is None:
                    reachable = _reachable_probes(cov_program, coverage_spec, probe_count)
                    reachable_by_spec[spec_key] = reachable
                cov_outcome = coverage_attack(cov_image, coverage_spec.name, reachable,
                                              input_spec, budget, seed=seed)
                executions += cov_outcome.executions
                instructions += cov_outcome.instructions
                branch_restores += cov_outcome.branch_restores
                if cov_outcome.success:
                    covered += 1
        rows.append(Table2Row(
            configuration=configuration.name,
            secrets_found=found,
            functions=len(specs),
            average_time=sum(times) / len(times) if times else 0.0,
            full_coverage=covered,
            executions=executions,
            instructions=instructions,
            branch_restores=branch_restores,
        ))
    return rows


def _reachable_probes(program, spec: RandomFunSpec, probe_count: int) -> set:
    """Determine the probes actually reachable by sampling the native function.

    Coverage is "all or nothing" against the *reachable* probe set, like the
    paper's use of Tigress's split/join annotations on the native CFG.
    """
    from repro.attacks.engine import preloaded_fork
    from repro.compiler import compile_program
    from repro.cpu import call_function

    image = compile_program(program)
    reachable = set()
    mask = (1 << (8 * spec.input_size)) - 1
    samples = list(range(0, min(mask + 1, 64))) + [mask, mask // 2, mask // 3]
    for sample in samples:
        _, emulator = call_function(preloaded_fork(image), spec.name, [sample & mask],
                                    max_steps=5_000_000)
        reachable.update(emulator.host.probes)
    return reachable
