"""Evaluation harness regenerating every table and figure of §VII."""

from repro.evaluation.configurations import TABLE2_CONFIGURATIONS, ROPK_SWEEP, NATIVE
from repro.evaluation.table2 import Table2Row, run_table2
from repro.evaluation.table3 import Table3Row, run_table3
from repro.evaluation.figure5 import Figure5Bar, run_figure5
from repro.evaluation.coverage_study import CoverageStudyResult, run_coverage_study
from repro.evaluation.case_study import CaseStudyResult, run_case_study
from repro.evaluation.efficacy import EfficacyResult, run_efficacy_study
from repro.evaluation.grid import run_grid
from repro.evaluation.reporting import render_table

__all__ = [
    "TABLE2_CONFIGURATIONS",
    "ROPK_SWEEP",
    "NATIVE",
    "Table2Row",
    "run_table2",
    "Table3Row",
    "run_table3",
    "Figure5Bar",
    "run_figure5",
    "CoverageStudyResult",
    "run_coverage_study",
    "CaseStudyResult",
    "run_case_study",
    "EfficacyResult",
    "run_efficacy_study",
    "run_grid",
    "render_table",
]
