"""§VII-C3: the base64 case study (DSE resilience and run-time slowdown)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.attacks import AttackBudget, secret_finding_attack
from repro.attacks.dse import InputSpec
from repro.binary import load_image
from repro.cpu import call_function
from repro.evaluation.configurations import ObfuscationConfig, apply_configuration, nvm, ropk, NATIVE
from repro.workloads.base64_ref import base64_check_program


@dataclass
class CaseStudyResult:
    """Result for one configuration of the base64 case study.

    Attributes:
        configuration: configuration name.
        secret_recovered: whether DSE (page memory model) recovered the 6-byte
            input within the budget.
        attack_time: seconds spent by the attack.
        execution_instructions: instructions for one legitimate run (the
            slowdown proxy of the paper's millisecond figures).
    """

    configuration: str
    secret_recovered: bool
    attack_time: float
    execution_instructions: int


#: Default configuration set of the case study.
DEFAULT_CONFIGURATIONS: Sequence[ObfuscationConfig] = (
    NATIVE,
    nvm(2, "last"),
    nvm(2, "all"),
    ropk(0.0),
    ropk(0.25),
    ropk(1.00),
)


def run_case_study(configurations: Optional[Sequence[ObfuscationConfig]] = None,
                   budget: Optional[AttackBudget] = None,
                   secret: bytes = b"raindr", seed: int = 1) -> List[CaseStudyResult]:
    """Attack ``base64_check`` under each configuration and measure slowdown."""
    configurations = list(configurations or DEFAULT_CONFIGURATIONS)
    budget = budget or AttackBudget(seconds=5.0, max_executions=80)
    program, secret_bytes = base64_check_program(secret)
    targets = ["base64_check", "base64_encode"]
    results: List[CaseStudyResult] = []

    for configuration in configurations:
        image = apply_configuration(program, targets, configuration, seed=seed)
        # runtime cost of one legitimate execution
        loaded = load_image(image)
        source = loaded.heap_base + 0x10
        for index, byte in enumerate(secret_bytes):
            loaded.memory.write_int(source + index, byte, 1)
        _, emulator = call_function(loaded, "base64_check", [source], max_steps=200_000_000)

        outcome = secret_finding_attack(
            image, "base64_check",
            InputSpec(argument_sizes=[], buffer_symbols=len(secret_bytes)),
            budget, memory_model="page", seed=seed)
        results.append(CaseStudyResult(
            configuration=configuration.name,
            secret_recovered=outcome.success,
            attack_time=outcome.time_to_success,
            execution_instructions=emulator.steps,
        ))
    return results
