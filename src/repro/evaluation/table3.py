"""Table III: gadget statistics for the clbg benchmarks across ROPk settings."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.compiler import compile_program
from repro.core import RopConfig, rop_obfuscate
from repro.evaluation.configurations import ROPK_SWEEP
from repro.workloads.clbg import CLBG_BENCHMARKS, build_clbg_program


@dataclass
class Table3Row:
    """Gadget statistics of one benchmark under one ROPk setting.

    Mirrors the paper's columns: ``N`` program points, ``A`` total gadgets,
    ``B`` unique gadgets, ``C`` average gadgets per program point.
    """

    benchmark: str
    k: float
    program_points: int
    total_gadgets: int
    unique_gadgets: int

    @property
    def gadgets_per_point(self) -> float:
        if not self.program_points:
            return 0.0
        return self.total_gadgets / self.program_points

    def as_cells(self) -> Sequence[object]:
        return (self.benchmark, f"{self.k:.2f}", self.program_points, self.total_gadgets,
                self.unique_gadgets, f"{self.gadgets_per_point:.2f}")


def run_table3(benchmarks: Optional[Sequence[str]] = None,
               k_values: Optional[Sequence[float]] = None,
               seed: int = 1) -> List[Table3Row]:
    """Rewrite each benchmark at every k and collect the A/B/C statistics."""
    benchmarks = list(benchmarks or sorted(CLBG_BENCHMARKS))
    k_values = list(k_values if k_values is not None else ROPK_SWEEP)
    rows: List[Table3Row] = []
    for name in benchmarks:
        program, _, _, targets = build_clbg_program(name)
        image = compile_program(program)
        for k in k_values:
            _, report = rop_obfuscate(image, targets, RopConfig.ropk(k, seed=seed))
            totals = report.totals()
            rows.append(Table3Row(
                benchmark=name,
                k=k,
                program_points=int(totals["program_points"]),
                total_gadgets=int(totals["total_gadgets"]),
                unique_gadgets=int(totals["unique_gadgets"]),
            ))
    return rows
