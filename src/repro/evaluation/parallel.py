"""Multiprocessing execution layer for the evaluation grids.

The three evaluation grids (Figure 5 overhead bars, Table II attack cells,
Table III gadget statistics) decompose into independent work units — one
Figure 5 bar, one Table II ``(configuration, spec)`` cell, one Table III
``(benchmark, k)`` cell.  This module defines those units, a persistent
fork-based :class:`WorkerPool` that dispatches them with dynamic load
balancing, and merge helpers that reassemble the streamed unit results into
exactly the rows the serial drivers produce.

Determinism: every unit measures in deterministic quantities (instruction
counts, execution counts bounded by deterministic caps, gadget statistics),
so a parallel run merges to *row-identical* JSON against a serial run at the
same seed — the property ``tests/evaluation/test_parallel_grid.py`` asserts.
The only nondeterministic fields are wall-clock times (``average_time``),
which are nondeterministic in serial runs too.

Worker-local caches keep shared preparation work amortized: a worker
computing several Figure 5 bars of one benchmark measures the native and
baseline runs once; a worker attacking several Table II configurations of
one spec samples the reachable probe set once.  Because those cached values
are themselves deterministic, two workers recomputing them independently
agree with the serial run.

Memory bounding: ``REPRO_SNAPSHOT_POOL`` is a *global* mid-path snapshot
budget; each worker gets its share via
:func:`repro.attacks.engine.sharded_pool_capacity` (exported to the worker
through its environment before any engine is built).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import queue as queue_module
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attacks import AttackBudget
from repro.evaluation.configurations import ObfuscationConfig
from repro.workloads.randomfuns import RandomFunSpec

#: Seconds between liveness checks while waiting on worker results.
_POLL_SECONDS = 1.0


def grid_workers() -> int:
    """Resolve the ``REPRO_GRID_WORKERS`` knob (default 1 = serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_GRID_WORKERS", "1")))
    except ValueError:
        return 1


def fork_available() -> bool:
    """Whether the platform supports the fork start method the pool needs.

    Fork lets workers inherit compiled programs and images without pickling
    them; platforms without it (Windows, some macOS configurations) fall
    back to in-process execution.
    """
    return "fork" in multiprocessing.get_all_start_methods()


# -- work units ---------------------------------------------------------------

@dataclass(frozen=True)
class Figure5Unit:
    """One Figure 5 bar: benchmark ``benchmark`` at ROP fraction ``k``."""

    benchmark: str
    k: float
    baseline: ObfuscationConfig
    seed: int


@dataclass(frozen=True)
class Table2Unit:
    """One Table II cell: attack one generated function under one config."""

    configuration: ObfuscationConfig
    spec: RandomFunSpec
    budget: AttackBudget
    include_coverage: bool
    seed: int


@dataclass(frozen=True)
class Table3Unit:
    """One Table III cell: gadget statistics of one benchmark at one ``k``."""

    benchmark: str
    k: float
    seed: int


GridUnit = object  # any of the three unit dataclasses


def figure5_units(benchmarks: Optional[Sequence[str]],
                  k_values: Optional[Sequence[float]],
                  baseline, seed: int) -> List[Figure5Unit]:
    """Decompose a Figure 5 sweep, resolving the serial driver's defaults."""
    from repro.evaluation.configurations import nvm, ROPK_SWEEP
    from repro.workloads.clbg import CLBG_BENCHMARKS

    benchmarks = list(benchmarks or sorted(CLBG_BENCHMARKS))
    k_values = list(k_values if k_values is not None
                    else [k for k in ROPK_SWEEP if k > 0])
    baseline = baseline or nvm(2, "last")
    return [Figure5Unit(benchmark=name, k=k, baseline=baseline, seed=seed)
            for name in benchmarks for k in k_values]


def table2_units(configurations, specs, budget: AttackBudget,
                 include_coverage: bool, seed: int) -> List[Table2Unit]:
    """Decompose a Table II grid in the serial config-outer/spec-inner order."""
    return [Table2Unit(configuration=configuration, spec=spec, budget=budget,
                       include_coverage=include_coverage, seed=seed)
            for configuration in configurations for spec in specs]


def table3_units(benchmarks: Optional[Sequence[str]],
                 k_values: Optional[Sequence[float]],
                 seed: int) -> List[Table3Unit]:
    """Decompose a Table III sweep, resolving the serial driver's defaults."""
    from repro.evaluation.configurations import ROPK_SWEEP
    from repro.workloads.clbg import CLBG_BENCHMARKS

    benchmarks = list(benchmarks or sorted(CLBG_BENCHMARKS))
    k_values = list(k_values if k_values is not None else ROPK_SWEEP)
    return [Table3Unit(benchmark=name, k=k, seed=seed)
            for name in benchmarks for k in k_values]


# -- unit execution (runs inside a worker) ------------------------------------

#: benchmark-level measurements shared by several Figure 5 bars:
#: (benchmark, baseline, seed) -> (program, entry, argument, targets,
#: native_steps, baseline_steps).  Worker-local; the cached values are
#: deterministic, so independent workers agree with each other and with the
#: serial driver.
_FIGURE5_CACHE: Dict[Tuple, Tuple] = {}

#: spec-level reachable-probe samples shared by several Table II cells
#: (the reachable set is a property of the *native* function).
_REACHABLE_CACHE: Dict[Tuple, set] = {}

#: benchmark-level compiled images shared by several Table III cells.
_TABLE3_CACHE: Dict[str, Tuple] = {}


def _figure5_measurements(unit: Figure5Unit) -> Tuple:
    from repro.compiler import compile_program
    from repro.evaluation.configurations import apply_configuration
    from repro.evaluation.figure5 import _run
    from repro.workloads.clbg import build_clbg_program

    key = (unit.benchmark, unit.baseline, unit.seed)
    cached = _FIGURE5_CACHE.get(key)
    if cached is None:
        program, entry, argument, targets = build_clbg_program(unit.benchmark)
        native_steps = _run(compile_program(program), entry, argument)
        baseline_image = apply_configuration(program, targets, unit.baseline,
                                             seed=unit.seed)
        baseline_steps = _run(baseline_image, entry, argument)
        cached = (program, entry, argument, targets, native_steps, baseline_steps)
        _FIGURE5_CACHE[key] = cached
    return cached


def _execute_figure5(unit: Figure5Unit) -> dict:
    from repro.evaluation.configurations import apply_configuration, ropk
    from repro.evaluation.figure5 import Figure5Bar, _run

    program, entry, argument, targets, native_steps, baseline_steps = \
        _figure5_measurements(unit)
    rop_image = apply_configuration(program, targets, ropk(unit.k),
                                    seed=unit.seed)
    bar = Figure5Bar(benchmark=unit.benchmark, k=unit.k,
                     native_instructions=native_steps,
                     rop_instructions=_run(rop_image, entry, argument),
                     baseline_instructions=baseline_steps)
    return {**dataclasses.asdict(bar),
            "slowdown_vs_native": bar.slowdown_vs_native,
            "slowdown_vs_baseline": bar.slowdown_vs_baseline}


def _execute_table2(unit: Table2Unit) -> dict:
    from repro.attacks import coverage_attack, secret_finding_attack
    from repro.attacks.dse import InputSpec
    from repro.evaluation.configurations import apply_configuration
    from repro.evaluation.table2 import _reachable_probes
    from repro.workloads.randomfuns import generate_random_function

    spec = unit.spec
    secret_spec = RandomFunSpec(structure=spec.structure,
                                input_size=spec.input_size, seed=spec.seed,
                                point_test=True,
                                loop_iterations=spec.loop_iterations)
    program, _, _ = generate_random_function(secret_spec)
    image = apply_configuration(program, [secret_spec.name],
                                unit.configuration, seed=unit.seed)
    input_spec = InputSpec(argument_sizes=[spec.input_size])
    outcome = secret_finding_attack(image, secret_spec.name, input_spec,
                                    unit.budget, seed=unit.seed)
    cell = {
        "configuration": unit.configuration.name,
        "secret_found": outcome.success,
        "time_to_success": outcome.time_to_success,
        "coverage_full": False,
        "executions": outcome.executions,
        "instructions": outcome.instructions,
        "branch_restores": outcome.branch_restores,
    }

    if unit.include_coverage:
        coverage_spec = RandomFunSpec(structure=spec.structure,
                                      input_size=spec.input_size,
                                      seed=spec.seed, point_test=False,
                                      loop_iterations=spec.loop_iterations)
        cov_program, _, probe_count = generate_random_function(coverage_spec)
        cov_image = apply_configuration(cov_program, [coverage_spec.name],
                                        unit.configuration, seed=unit.seed)
        spec_key = (spec.structure, spec.input_size, spec.seed,
                    spec.loop_iterations)
        reachable = _REACHABLE_CACHE.get(spec_key)
        if reachable is None:
            reachable = _reachable_probes(cov_program, coverage_spec,
                                          probe_count)
            _REACHABLE_CACHE[spec_key] = reachable
        cov_outcome = coverage_attack(cov_image, coverage_spec.name,
                                      reachable, input_spec, unit.budget,
                                      seed=unit.seed)
        cell["coverage_full"] = cov_outcome.success
        cell["executions"] += cov_outcome.executions
        cell["instructions"] += cov_outcome.instructions
        cell["branch_restores"] += cov_outcome.branch_restores
    return cell


def _execute_table3(unit: Table3Unit) -> dict:
    from repro.compiler import compile_program
    from repro.core import RopConfig, rop_obfuscate
    from repro.evaluation.table3 import Table3Row
    from repro.workloads.clbg import build_clbg_program

    cached = _TABLE3_CACHE.get(unit.benchmark)
    if cached is None:
        program, _, _, targets = build_clbg_program(unit.benchmark)
        cached = (compile_program(program), targets)
        _TABLE3_CACHE[unit.benchmark] = cached
    image, targets = cached
    _, report = rop_obfuscate(image, targets,
                              RopConfig.ropk(unit.k, seed=unit.seed))
    totals = report.totals()
    row = Table3Row(benchmark=unit.benchmark, k=unit.k,
                    program_points=int(totals["program_points"]),
                    total_gadgets=int(totals["total_gadgets"]),
                    unique_gadgets=int(totals["unique_gadgets"]))
    return {**dataclasses.asdict(row), "gadgets_per_point": row.gadgets_per_point}


def execute_unit(unit: GridUnit) -> dict:
    """Execute one work unit; dispatch point shared by serial and workers."""
    if isinstance(unit, Figure5Unit):
        return _execute_figure5(unit)
    if isinstance(unit, Table2Unit):
        return _execute_table2(unit)
    if isinstance(unit, Table3Unit):
        return _execute_table3(unit)
    raise TypeError(f"unknown work unit {type(unit).__name__}")


# -- the worker pool ----------------------------------------------------------

def _worker_main(worker_index: int, snapshot_share: int, task_queue,
                 result_queue) -> None:
    """Worker loop: claim units until the ``None`` sentinel arrives.

    The snapshot-pool share is exported *before* any attack engine is built,
    so every engine the unit executions construct sizes its mid-path pool to
    this worker's slice of the global budget.
    """
    os.environ["REPRO_SNAPSHOT_POOL"] = str(snapshot_share)
    while True:
        task = task_queue.get()
        if task is None:
            break
        index, unit = task
        try:
            result_queue.put((index, worker_index, "ok", execute_unit(unit)))
        except BaseException as exc:  # surface, don't hang the parent
            result_queue.put((index, worker_index, "error",
                              f"{type(exc).__name__}: {exc}"))


class WorkerPool:
    """Persistent pool of forked grid workers with dynamic load balancing.

    Workers are spawned lazily on the first :meth:`map` call and stay alive
    across calls (and hence across the three grid parts), so benchmark
    programs, preloaded images and reachable-probe samples cached inside a
    worker keep paying off for later units.  ``workers <= 1`` — or a
    platform without the fork start method — degrades to in-process
    execution with identical results.
    """

    def __init__(self, workers: int,
                 snapshot_share: Optional[int] = None) -> None:
        from repro.attacks.engine import sharded_pool_capacity

        self.workers = max(1, workers)
        self.snapshot_share = (sharded_pool_capacity(self.workers)
                               if snapshot_share is None else snapshot_share)
        self._processes: List = []
        self._task_queue = None
        self._result_queue = None

    @property
    def parallel(self) -> bool:
        return self.workers > 1 and fork_available()

    def _ensure_started(self) -> None:
        if self._processes:
            return
        context = multiprocessing.get_context("fork")
        self._task_queue = context.Queue()
        self._result_queue = context.Queue()
        for worker_index in range(self.workers):
            process = context.Process(
                target=_worker_main,
                args=(worker_index, self.snapshot_share, self._task_queue,
                      self._result_queue),
                daemon=True)
            process.start()
            self._processes.append(process)

    def map(self, units: Sequence[GridUnit]) -> Tuple[List[dict], List[int]]:
        """Execute every unit; return ``(results, worker_ids)`` unit-ordered.

        Units are claimed dynamically, so expensive cells (Table II attacks)
        and cheap ones (Table III statistics) balance across workers; the
        returned lists are nevertheless in input order, which is what makes
        the downstream merge order-independent of the execution schedule.
        """
        if not units:
            return [], []
        if not self.parallel:
            return [execute_unit(unit) for unit in units], [0] * len(units)

        self._ensure_started()
        for index, unit in enumerate(units):
            self._task_queue.put((index, unit))

        results: List[Optional[dict]] = [None] * len(units)
        worker_ids: List[int] = [0] * len(units)
        received = 0
        while received < len(units):
            try:
                index, worker_index, status, payload = \
                    self._result_queue.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                dead = [p for p in self._processes
                        if not p.is_alive() and p.exitcode not in (0, None)]
                if dead:
                    self.close()
                    raise RuntimeError(
                        f"grid worker died with exit code {dead[0].exitcode} "
                        f"({received}/{len(units)} units completed)")
                continue
            if status == "error":
                self.close()
                raise RuntimeError(f"grid unit {index} failed in worker "
                                   f"{worker_index}: {payload}")
            results[index] = payload
            worker_ids[index] = worker_index
            received += 1
        return results, worker_ids

    def close(self) -> None:
        """Stop the workers; safe to call twice."""
        if not self._processes:
            return
        for _ in self._processes:
            try:
                self._task_queue.put(None)
            except (OSError, ValueError):
                break
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self._processes = []
        self._task_queue = None
        self._result_queue = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- deterministic merges -----------------------------------------------------

def merge_table2(units: Sequence[Table2Unit],
                 cells: Sequence[dict]) -> List[dict]:
    """Reassemble Table II rows from per-cell results.

    ``units`` must be in the serial config-outer/spec-inner order (what
    :func:`table2_units` produces); accumulating cells in that order makes
    each output row identical to the serial driver's — including
    ``average_time``, which averages time-to-success over successful cells
    in spec order.
    """
    rows: List[dict] = []
    by_config: Dict[str, dict] = {}
    spec_counts: Dict[str, int] = {}
    for unit, cell in zip(units, cells):
        name = unit.configuration.name
        spec_counts[name] = spec_counts.get(name, 0) + 1
        row = by_config.get(name)
        if row is None:
            row = {"configuration": name, "secrets_found": 0, "functions": 0,
                   "average_time": 0.0, "full_coverage": 0, "executions": 0,
                   "instructions": 0, "branch_restores": 0, "_times": []}
            by_config[name] = row
            rows.append(row)
        if cell["secret_found"]:
            row["secrets_found"] += 1
            row["_times"].append(cell["time_to_success"])
        if cell["coverage_full"]:
            row["full_coverage"] += 1
        row["executions"] += cell["executions"]
        row["instructions"] += cell["instructions"]
        row["branch_restores"] += cell["branch_restores"]
    for row in rows:
        times = row.pop("_times")
        row["functions"] = spec_counts[row["configuration"]]
        row["average_time"] = sum(times) / len(times) if times else 0.0
    return rows


def executions_by_worker(worker_ids: Sequence[int],
                         cells: Sequence[dict]) -> Dict[str, int]:
    """Per-worker concrete-execution totals for the summary's attack_engine."""
    totals: Dict[str, int] = {}
    for worker_index, cell in zip(worker_ids, cells):
        key = str(worker_index)
        totals[key] = totals.get(key, 0) + cell["executions"]
    return totals
