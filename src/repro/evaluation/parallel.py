"""Multiprocessing execution layer for the evaluation grids.

The three evaluation grids (Figure 5 overhead bars, Table II attack cells,
Table III gadget statistics) decompose into independent work units — one
Figure 5 bar, one Table II ``(configuration, spec)`` cell, one Table III
``(benchmark, k)`` cell.  This module defines those units, a persistent
fork-based :class:`WorkerPool` that dispatches them with dynamic load
balancing, and merge helpers that reassemble the streamed unit results into
exactly the rows the serial drivers produce.

Determinism: every unit measures in deterministic quantities (instruction
counts, execution counts bounded by deterministic caps, gadget statistics),
so a parallel run merges to *row-identical* JSON against a serial run at the
same seed — the property ``tests/evaluation/test_parallel_grid.py`` asserts.
The only nondeterministic fields are wall-clock times (``average_time``),
which are nondeterministic in serial runs too.

Worker-local caches keep shared preparation work amortized: a worker
computing several Figure 5 bars of one benchmark measures the native and
baseline runs once; a worker attacking several Table II configurations of
one spec samples the reachable probe set once.  Because those cached values
are themselves deterministic, two workers recomputing them independently
agree with the serial run.

Memory bounding: ``REPRO_SNAPSHOT_POOL`` is a *global* mid-path snapshot
budget; each worker gets its share via
:func:`repro.attacks.engine.sharded_pool_capacity` (exported to the worker
through its environment before any engine is built).

Fault tolerance: :meth:`WorkerPool.map` supervises its workers.  A unit
whose worker raises, exceeds the ``REPRO_UNIT_TIMEOUT`` deadline or dies —
any premature exit counts, including a *clean* exit code 0 mid-unit — is
retried up to ``REPRO_UNIT_RETRIES`` times on a respawned worker, and when
retries exhaust, the unit is **quarantined**: its slot in the results
becomes a ``{"status": "failed", "error": ...}`` row and the run continues
instead of aborting a CPU-hours grid.  :class:`FaultStats` counts the
recoveries; every path is provoked deliberately by the deterministic
fault-injection harness (:mod:`repro.faults`, ``REPRO_FAULT_INJECT``).

The supervision core is exposed below :meth:`WorkerPool.map` as an
incremental :meth:`WorkerPool.submit` / :meth:`WorkerPool.pump` event API:
``submit`` enqueues one unit under a pool-lifetime dispatch id, ``pump``
performs one supervision round (claim polling, deadline kills, death
detection, slot respawns) and returns :class:`PoolEvent` records.  ``map``
is a client of that API; the long-lived attack service
(:mod:`repro.service`) is another, with its own retry/backoff and terminal
states layered on the same events.  Units beyond the three grid dataclasses
plug in through :func:`register_unit_executor`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import queue as queue_module
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import knobs
from repro.attacks import AttackBudget
from repro.evaluation.configurations import ObfuscationConfig
from repro.faults import inject_fault, parse_fault_spec, unit_retries, unit_timeout
from repro.workloads.randomfuns import RandomFunSpec

#: Seconds between liveness checks while waiting on worker results.
_POLL_SECONDS = 1.0


def grid_workers() -> int:
    """Resolve the ``REPRO_GRID_WORKERS`` knob (default 1 = serial)."""
    return knobs.positive_int("REPRO_GRID_WORKERS")


def fork_available() -> bool:
    """Whether the platform supports the fork start method the pool needs.

    Fork lets workers inherit compiled programs and images without pickling
    them; platforms without it (Windows, some macOS configurations) fall
    back to in-process execution.
    """
    return "fork" in multiprocessing.get_all_start_methods()


# -- work units ---------------------------------------------------------------

@dataclass(frozen=True)
class Figure5Unit:
    """One Figure 5 bar: benchmark ``benchmark`` at ROP fraction ``k``."""

    benchmark: str
    k: float
    baseline: ObfuscationConfig
    seed: int


@dataclass(frozen=True)
class Table2Unit:
    """One Table II cell: attack one generated function under one config."""

    configuration: ObfuscationConfig
    spec: RandomFunSpec
    budget: AttackBudget
    include_coverage: bool
    seed: int


@dataclass(frozen=True)
class Table3Unit:
    """One Table III cell: gadget statistics of one benchmark at one ``k``."""

    benchmark: str
    k: float
    seed: int


GridUnit = object  # any of the three unit dataclasses


def figure5_units(benchmarks: Optional[Sequence[str]],
                  k_values: Optional[Sequence[float]],
                  baseline, seed: int) -> List[Figure5Unit]:
    """Decompose a Figure 5 sweep, resolving the serial driver's defaults."""
    from repro.evaluation.configurations import nvm, ROPK_SWEEP
    from repro.workloads.clbg import CLBG_BENCHMARKS

    benchmarks = list(benchmarks or sorted(CLBG_BENCHMARKS))
    k_values = list(k_values if k_values is not None
                    else [k for k in ROPK_SWEEP if k > 0])
    baseline = baseline or nvm(2, "last")
    return [Figure5Unit(benchmark=name, k=k, baseline=baseline, seed=seed)
            for name in benchmarks for k in k_values]


def table2_units(configurations, specs, budget: AttackBudget,
                 include_coverage: bool, seed: int) -> List[Table2Unit]:
    """Decompose a Table II grid in the serial config-outer/spec-inner order."""
    return [Table2Unit(configuration=configuration, spec=spec, budget=budget,
                       include_coverage=include_coverage, seed=seed)
            for configuration in configurations for spec in specs]


def table3_units(benchmarks: Optional[Sequence[str]],
                 k_values: Optional[Sequence[float]],
                 seed: int) -> List[Table3Unit]:
    """Decompose a Table III sweep, resolving the serial driver's defaults."""
    from repro.evaluation.configurations import ROPK_SWEEP
    from repro.workloads.clbg import CLBG_BENCHMARKS

    benchmarks = list(benchmarks or sorted(CLBG_BENCHMARKS))
    k_values = list(k_values if k_values is not None else ROPK_SWEEP)
    return [Table3Unit(benchmark=name, k=k, seed=seed)
            for name in benchmarks for k in k_values]


# -- unit identity, fingerprints and quarantine rows --------------------------

def unit_identity(unit: GridUnit) -> Dict[str, object]:
    """Human-readable identity fields of a unit (embedded in failure rows)."""
    if isinstance(unit, Figure5Unit):
        return {"part": "figure5", "benchmark": unit.benchmark, "k": unit.k}
    if isinstance(unit, Table2Unit):
        return {"part": "table2", "configuration": unit.configuration.name,
                "structure": unit.spec.structure,
                "input_size": unit.spec.input_size,
                "spec_seed": unit.spec.seed}
    if isinstance(unit, Table3Unit):
        return {"part": "table3", "benchmark": unit.benchmark, "k": unit.k}
    return {"part": "unknown", "unit": type(unit).__name__}


def unit_fingerprint(unit: GridUnit) -> str:
    """Deterministic cross-run identity of a unit — the checkpoint key.

    Hashes every field of the unit (configuration, spec, budget, seed via
    the nested ``dataclasses.asdict``), so two runs agree on what "the same
    cell" means exactly when they would compute the same row, and any
    parameter change (a retuned budget, a different seed) invalidates the
    old checkpoint entry instead of silently reusing a stale result.
    """
    if dataclasses.is_dataclass(unit):
        payload = json.dumps(dataclasses.asdict(unit), sort_keys=True,
                             default=repr)
    else:
        payload = repr(unit)
    digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
    return f"{type(unit).__name__}:{digest}"


def quarantine_row(unit: GridUnit, error: str) -> dict:
    """The artifact row recorded for a unit whose retries exhausted."""
    return {"status": "failed", "error": error, **unit_identity(unit)}


@dataclass
class FaultStats:
    """Recovery counters of one :class:`WorkerPool` (cumulative over maps).

    Attributes:
        failed_units: units quarantined after exhausting their retries.
        retries: re-dispatches of a unit after a failure/timeout/death.
        respawns: replacement workers forked after a death or a kill.
        timeouts: units whose ``REPRO_UNIT_TIMEOUT`` deadline expired.
    """

    failed_units: int = 0
    retries: int = 0
    respawns: int = 0
    timeouts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class PoolEvent:
    """One supervision outcome surfaced by :meth:`WorkerPool.pump`.

    ``kind`` is ``"result"`` (the worker reported back; ``status`` is
    ``"ok"`` with a payload dict or ``"error"`` with an error string),
    ``"deadline"`` (the unit's ``REPRO_UNIT_TIMEOUT`` expired and its worker
    was killed) or ``"death"`` (the worker died mid-unit; ``exitcode``
    carries how).  Exactly one event is emitted per outstanding dispatch id
    — the pool removes the id from its outstanding set before emitting, so
    a result racing a kill is never double-reported.
    """

    kind: str
    dispatch_id: int
    status: str
    payload: object
    worker: int
    exitcode: Optional[int] = None


# -- unit execution (runs inside a worker) ------------------------------------

#: benchmark-level measurements shared by several Figure 5 bars:
#: (benchmark, baseline, seed) -> (program, entry, argument, targets,
#: native_steps, baseline_steps).  Worker-local; the cached values are
#: deterministic, so independent workers agree with each other and with the
#: serial driver.
_FIGURE5_CACHE: Dict[Tuple, Tuple] = {}

#: spec-level reachable-probe samples shared by several Table II cells
#: (the reachable set is a property of the *native* function).
_REACHABLE_CACHE: Dict[Tuple, set] = {}

#: benchmark-level compiled images shared by several Table III cells.
_TABLE3_CACHE: Dict[str, Tuple] = {}


def _figure5_measurements(unit: Figure5Unit) -> Tuple:
    from repro.compiler import compile_program
    from repro.evaluation.configurations import apply_configuration
    from repro.evaluation.figure5 import _run
    from repro.workloads.clbg import build_clbg_program

    key = (unit.benchmark, unit.baseline, unit.seed)
    cached = _FIGURE5_CACHE.get(key)
    if cached is None:
        program, entry, argument, targets = build_clbg_program(unit.benchmark)
        native_steps = _run(compile_program(program), entry, argument)
        baseline_image = apply_configuration(program, targets, unit.baseline,
                                             seed=unit.seed)
        baseline_steps = _run(baseline_image, entry, argument)
        cached = (program, entry, argument, targets, native_steps, baseline_steps)
        _FIGURE5_CACHE[key] = cached
    return cached


def _execute_figure5(unit: Figure5Unit) -> dict:
    from repro.evaluation.configurations import apply_configuration, ropk
    from repro.evaluation.figure5 import Figure5Bar, _run

    program, entry, argument, targets, native_steps, baseline_steps = \
        _figure5_measurements(unit)
    rop_image = apply_configuration(program, targets, ropk(unit.k),
                                    seed=unit.seed)
    bar = Figure5Bar(benchmark=unit.benchmark, k=unit.k,
                     native_instructions=native_steps,
                     rop_instructions=_run(rop_image, entry, argument),
                     baseline_instructions=baseline_steps)
    return {**dataclasses.asdict(bar),
            "slowdown_vs_native": bar.slowdown_vs_native,
            "slowdown_vs_baseline": bar.slowdown_vs_baseline}


def _execute_table2(unit: Table2Unit) -> dict:
    from repro.attacks import coverage_attack, secret_finding_attack
    from repro.attacks.dse import InputSpec
    from repro.evaluation.configurations import apply_configuration
    from repro.evaluation.table2 import _reachable_probes
    from repro.workloads.randomfuns import generate_random_function

    spec = unit.spec
    secret_spec = RandomFunSpec(structure=spec.structure,
                                input_size=spec.input_size, seed=spec.seed,
                                point_test=True,
                                loop_iterations=spec.loop_iterations)
    program, _, _ = generate_random_function(secret_spec)
    image = apply_configuration(program, [secret_spec.name],
                                unit.configuration, seed=unit.seed)
    input_spec = InputSpec(argument_sizes=[spec.input_size])
    outcome = secret_finding_attack(image, secret_spec.name, input_spec,
                                    unit.budget, seed=unit.seed)
    cell = {
        "configuration": unit.configuration.name,
        "secret_found": outcome.success,
        "time_to_success": outcome.time_to_success,
        "coverage_full": False,
        "executions": outcome.executions,
        "instructions": outcome.instructions,
        "branch_restores": outcome.branch_restores,
    }

    if unit.include_coverage:
        coverage_spec = RandomFunSpec(structure=spec.structure,
                                      input_size=spec.input_size,
                                      seed=spec.seed, point_test=False,
                                      loop_iterations=spec.loop_iterations)
        cov_program, _, probe_count = generate_random_function(coverage_spec)
        cov_image = apply_configuration(cov_program, [coverage_spec.name],
                                        unit.configuration, seed=unit.seed)
        spec_key = (spec.structure, spec.input_size, spec.seed,
                    spec.loop_iterations)
        reachable = _REACHABLE_CACHE.get(spec_key)
        if reachable is None:
            reachable = _reachable_probes(cov_program, coverage_spec,
                                          probe_count)
            _REACHABLE_CACHE[spec_key] = reachable
        cov_outcome = coverage_attack(cov_image, coverage_spec.name,
                                      reachable, input_spec, unit.budget,
                                      seed=unit.seed)
        cell["coverage_full"] = cov_outcome.success
        cell["executions"] += cov_outcome.executions
        cell["instructions"] += cov_outcome.instructions
        cell["branch_restores"] += cov_outcome.branch_restores
    return cell


def _execute_table3(unit: Table3Unit) -> dict:
    from repro.compiler import compile_program
    from repro.core import RopConfig, rop_obfuscate
    from repro.evaluation.table3 import Table3Row
    from repro.workloads.clbg import build_clbg_program

    cached = _TABLE3_CACHE.get(unit.benchmark)
    if cached is None:
        program, _, _, targets = build_clbg_program(unit.benchmark)
        cached = (compile_program(program), targets)
        _TABLE3_CACHE[unit.benchmark] = cached
    image, targets = cached
    _, report = rop_obfuscate(image, targets,
                              RopConfig.ropk(unit.k, seed=unit.seed))
    totals = report.totals()
    row = Table3Row(benchmark=unit.benchmark, k=unit.k,
                    program_points=int(totals["program_points"]),
                    total_gadgets=int(totals["total_gadgets"]),
                    unique_gadgets=int(totals["unique_gadgets"]))
    return {**dataclasses.asdict(row), "gadgets_per_point": row.gadgets_per_point}


#: Extension point for unit types beyond the three grid dataclasses —
#: populated via :func:`register_unit_executor` in the parent process
#: *before* the pool forks, so workers inherit the registry.
_UNIT_EXECUTORS: Dict[type, Callable[[object], dict]] = {}


def register_unit_executor(unit_type: type,
                           executor: Callable[[object], dict]) -> None:
    """Register the executor for a custom unit type (idempotent).

    The service layer registers its :class:`~repro.service.AttackRequest`
    here at import time; because workers are forked from the parent, any
    registration made before the first dispatch is visible inside every
    worker (and every respawned replacement).
    """
    _UNIT_EXECUTORS[unit_type] = executor


def execute_unit(unit: GridUnit) -> dict:
    """Execute one work unit; dispatch point shared by serial and workers."""
    if isinstance(unit, Figure5Unit):
        return _execute_figure5(unit)
    if isinstance(unit, Table2Unit):
        return _execute_table2(unit)
    if isinstance(unit, Table3Unit):
        return _execute_table3(unit)
    executor = _UNIT_EXECUTORS.get(type(unit))
    if executor is not None:
        return executor(unit)
    raise TypeError(f"unknown work unit {type(unit).__name__}")


# -- the worker pool ----------------------------------------------------------

def _worker_main(worker_index: int, snapshot_share: int, task_queue,
                 result_queue, claim_cell) -> None:
    """Worker loop: claim units until the ``None`` sentinel arrives.

    The snapshot-pool share is exported *before* any attack engine is built,
    so every engine the unit executions construct sizes its mid-path pool to
    this worker's slice of the global budget.

    Every claimed unit is announced in ``claim_cell`` — a shared int the
    supervisor reads to attribute a worker death or a deadline expiry to
    the exact unit it must retry.  The claim must NOT travel through the
    result queue: queue puts are flushed by a background feeder thread, so
    a worker dying right after claiming (SIGKILL, OOM) would lose the
    in-flight claim message and strand the unit forever; the shared-memory
    write is synchronous and survives any death.  Interrupts
    (``KeyboardInterrupt``/``SystemExit``) re-raise instead of being
    reported as unit errors: the supervisor treats the dying worker like any
    other premature exit, and a Ctrl-C reaches the driver's own handler.
    """
    os.environ["REPRO_SNAPSHOT_POOL"] = str(snapshot_share)
    fault_spec = parse_fault_spec()
    while True:
        task = task_queue.get()
        if task is None:
            break
        dispatch_id, attempt, unit = task
        claim_cell.value = dispatch_id
        try:
            inject_fault(dispatch_id, attempt, fault_spec)
            result_queue.put((worker_index, dispatch_id, "ok",
                              execute_unit(unit)))
        except (KeyboardInterrupt, SystemExit):
            raise
        # lint: allow-broad-except — worker blast containment: any
        # failure becomes an error event for the supervisor (KeyboardInterrupt/
        # SystemExit re-raised above)
        except BaseException as exc:  # surface, don't hang the parent
            result_queue.put((worker_index, dispatch_id, "error",
                              f"{type(exc).__name__}: {exc}"))
        # cleared only after the result is queued: a death in between leaves
        # a stale claim, which the supervisor's drain-first recovery ignores
        claim_cell.value = -1


class WorkerPool:
    """Persistent pool of forked grid workers with dynamic load balancing.

    Workers are spawned lazily on the first :meth:`map` call and stay alive
    across calls (and hence across the three grid parts), so benchmark
    programs, preloaded images and reachable-probe samples cached inside a
    worker keep paying off for later units.  ``workers <= 1`` — or a
    platform without the fork start method — degrades to in-process
    execution with identical results.
    """

    def __init__(self, workers: int,
                 snapshot_share: Optional[int] = None) -> None:
        from repro.attacks.engine import sharded_pool_capacity

        self.workers = max(1, workers)
        self.snapshot_share = (sharded_pool_capacity(self.workers)
                               if snapshot_share is None else snapshot_share)
        self.stats = FaultStats()
        self._processes: List = []
        self._task_queue = None
        self._result_queue = None
        #: per-slot shared claim cells (-1 = idle); see :func:`_worker_main`
        self._claim_cells: List = []
        #: global dispatch sequence across the pool's lifetime — the index
        #: space ``REPRO_FAULT_INJECT`` directives target (deterministic:
        #: units are numbered in enqueue order, not completion order).
        self._units_dispatched = 0
        #: dispatch ids enqueued but not yet surfaced as a :class:`PoolEvent`
        self._outstanding: set = set()
        #: slot -> (claimed dispatch id, first observed) — the supervisor's
        #: view of the shared claim cells; deadlines run from observation
        self._observed: Dict[int, Optional[Tuple[int, float]]] = {}

    @property
    def parallel(self) -> bool:
        return self.workers > 1 and fork_available()

    def _spawn(self, worker_index: int):
        context = multiprocessing.get_context("fork")
        process = context.Process(
            target=_worker_main,
            args=(worker_index, self.snapshot_share, self._task_queue,
                  self._result_queue, self._claim_cells[worker_index]),
            daemon=True)
        process.start()
        return process

    def _ensure_started(self) -> None:
        if self._processes:
            return
        context = multiprocessing.get_context("fork")
        self._task_queue = context.Queue()
        self._result_queue = context.Queue()
        self._claim_cells = [context.Value("q", -1, lock=False)
                             for _ in range(self.workers)]
        self._observed = {slot: None for slot in range(self.workers)}
        self._processes = [self._spawn(worker_index)
                           for worker_index in range(self.workers)]

    def _respawn(self, slot: int) -> None:
        """Replace a dead/killed worker in place, keeping its slot index."""
        self._claim_cells[slot].value = -1
        self._observed[slot] = None
        self._processes[slot] = self._spawn(slot)
        self.stats.respawns += 1

    # -- incremental supervision API ------------------------------------------

    def submit(self, unit: GridUnit, dispatch_id: Optional[int] = None,
               attempt: int = 0) -> int:
        """Enqueue one unit; return its pool-lifetime dispatch id.

        ``dispatch_id`` defaults to the next slot of the global dispatch
        sequence; a retry re-submits under the unit's *original* id with a
        bumped ``attempt``, preserving the fault-injection index semantics
        (a ``count``-limited directive stops sabotaging once ``attempt``
        reaches its count).  Parallel pools only — inline execution has no
        queue to supervise.
        """
        if not self.parallel:
            raise RuntimeError("submit() requires a parallel pool "
                               "(workers > 1 with fork available)")
        if dispatch_id is None:
            dispatch_id = self._units_dispatched
            self._units_dispatched += 1
        self._ensure_started()
        self._outstanding.add(dispatch_id)
        self._task_queue.put((dispatch_id, attempt, unit))
        return dispatch_id

    def pump(self, timeout: float = _POLL_SECONDS,
             deadline: Optional[float] = None) -> List[PoolEvent]:
        """One supervision round; block at most ``timeout`` for a result.

        Polls the claim cells, waits (briefly) on the result queue, enforces
        ``deadline`` seconds per claimed unit (kill + respawn on expiry) and
        recovers dead workers — any premature exit counts, clean code 0
        included.  Every outcome is returned as a :class:`PoolEvent`; the
        caller owns retry policy (:meth:`submit` again under the same id) and
        respawn budgets (watch :attr:`stats` ``.respawns``).  Results
        drained while recovering a kill or a death win over the synthetic
        deadline/death event — the unit finished, so it is reported
        finished.
        """
        events: List[PoolEvent] = []

        def handle(message) -> None:
            worker, dispatch_id, status, payload = message
            if dispatch_id not in self._outstanding:
                return  # stale duplicate drained around a worker death
            self._outstanding.discard(dispatch_id)
            events.append(PoolEvent(kind="result", dispatch_id=dispatch_id,
                                    status=status, payload=payload,
                                    worker=worker))

        def drain() -> None:
            while True:
                try:
                    handle(self._result_queue.get_nowait())
                except queue_module.Empty:
                    return

        self._ensure_started()
        now = time.monotonic()  # lint: allow-wallclock — worker-liveness deadline, not row content
        for slot, cell in enumerate(self._claim_cells):
            value = cell.value
            observed = self._observed.get(slot)
            if value < 0:
                self._observed[slot] = None
            elif observed is None or observed[0] != value:
                self._observed[slot] = (value, now)

        # wake early enough to enforce the nearest unit deadline
        wake = timeout
        if deadline is not None:
            for claim in self._observed.values():
                if claim is not None and claim[0] in self._outstanding:
                    remaining = deadline - (now - claim[1])
                    wake = max(0.05, min(wake, remaining))
        try:
            handle(self._result_queue.get(timeout=wake))
            drain()
            return events
        except queue_module.Empty:
            pass

        # per-unit deadline: kill the worker hosting an expired unit, then
        # surface the expiry and refill the slot
        if deadline is not None:
            now = time.monotonic()  # lint: allow-wallclock — worker-liveness deadline, not row content
            for slot, claim in list(self._observed.items()):
                if claim is None or claim[0] not in self._outstanding \
                        or now - claim[1] <= deadline:
                    continue
                process = self._processes[slot]
                if process.is_alive():
                    process.kill()
                    process.join(timeout=5.0)
                self.stats.timeouts += 1
                drain()  # a result that raced the kill wins over a retry
                if claim[0] in self._outstanding:
                    self._outstanding.discard(claim[0])
                    events.append(PoolEvent(
                        kind="deadline", dispatch_id=claim[0],
                        status="error",
                        payload=(f"unit deadline exceeded "
                                 f"(REPRO_UNIT_TIMEOUT={deadline:g}s)"),
                        worker=slot))
                self._respawn(slot)

        # supervise: ANY dead worker with work outstanding is a fault —
        # including a clean exit code 0, which the close() sentinel
        # handshake alone may legitimately produce, but a mid-unit exit
        # never can
        for slot, process in enumerate(self._processes):
            if process.is_alive():
                continue
            drain()
            value = self._claim_cells[slot].value
            if value >= 0 and value in self._outstanding:
                self._outstanding.discard(value)
                events.append(PoolEvent(
                    kind="death", dispatch_id=value, status="error",
                    payload=(f"worker died mid-unit (exit code "
                             f"{process.exitcode})"),
                    worker=slot, exitcode=process.exitcode))
            self._respawn(slot)
        return events

    def map(self, units: Sequence[GridUnit],
            on_result: Optional[Callable] = None,
            ) -> Tuple[List[dict], List[int]]:
        """Execute every unit; return ``(results, worker_ids)`` unit-ordered.

        Units are claimed dynamically, so expensive cells (Table II attacks)
        and cheap ones (Table III statistics) balance across workers; the
        returned lists are nevertheless in input order, which is what makes
        the downstream merge order-independent of the execution schedule.

        Fault tolerance (see the module docstring): failed, timed-out and
        orphaned units are retried ``REPRO_UNIT_RETRIES`` times and then
        quarantined as ``{"status": "failed", ...}`` rows instead of
        aborting the run.  ``on_result``, when given, is called with
        ``(index, unit, payload)`` as each unit resolves (completion order)
        — the grid driver streams completed units to its checkpoint with it.
        """
        if not units:
            return [], []
        base = self._units_dispatched
        self._units_dispatched += len(units)
        if not self.parallel:
            return self._map_inline(units, base, on_result)
        self._ensure_started()
        try:
            return self._map_supervised(units, base, on_result)
        # lint: allow-broad-except — error-path cleanup that re-raises:
        # the pool is aborted so a failed run cannot hang close()
        except BaseException:
            # error path: terminate instead of the sentinel handshake, so a
            # failed run does not block up to 10 s per process in close()
            self._abort()
            raise

    def _map_inline(self, units: Sequence[GridUnit], base: int,
                    on_result: Optional[Callable]) -> Tuple[List[dict], List[int]]:
        """In-process execution (serial fallback) with the same quarantine
        semantics; only ``raise`` faults are injectable here."""
        retries = unit_retries()
        fault_spec = parse_fault_spec()
        results: List[dict] = []
        for index, unit in enumerate(units):
            attempt = 0
            while True:
                try:
                    inject_fault(base + index, attempt, fault_spec,
                                 inline=True)
                    payload = execute_unit(unit)
                    break
                # lint: allow-broad-except — the inline pool mirrors the
                # forked workers' blast containment: *any* unit failure
                # (including EmulationError) is retried then quarantined as
                # a row, never allowed to kill the whole grid.
                except Exception as exc:
                    if attempt < retries:
                        attempt += 1
                        self.stats.retries += 1
                        continue
                    payload = quarantine_row(unit,
                                             f"{type(exc).__name__}: {exc}")
                    self.stats.failed_units += 1
                    break
            results.append(payload)
            if on_result is not None:
                on_result(index, unit, payload)
        return results, [0] * len(units)

    def _map_supervised(self, units: Sequence[GridUnit], base: int,
                        on_result: Optional[Callable],
                        ) -> Tuple[List[dict], List[int]]:
        retries = unit_retries()
        deadline = unit_timeout()
        # a worker that keeps dying before even claiming a unit (e.g. a
        # crash in the fork prologue) must not respawn forever
        respawn_limit = max(8, self.workers * (retries + 2))
        respawns_before = self.stats.respawns
        results: List[Optional[dict]] = [None] * len(units)
        worker_ids: List[int] = [0] * len(units)
        attempts: Dict[int, int] = {}
        index_of: Dict[int, int] = {}
        for index, unit in enumerate(units):
            dispatch_id = self.submit(unit, dispatch_id=base + index)
            index_of[dispatch_id] = index
            attempts[dispatch_id] = 0
        unresolved = set(index_of)

        def resolve(dispatch_id: int, payload: dict, worker: int) -> None:
            index = index_of[dispatch_id]
            results[index] = payload
            worker_ids[index] = worker
            unresolved.discard(dispatch_id)
            if on_result is not None:
                on_result(index, units[index], payload)

        def fail(dispatch_id: int, worker: int, error: str) -> None:
            if attempts[dispatch_id] < retries:
                attempts[dispatch_id] += 1
                self.stats.retries += 1
                self.submit(units[index_of[dispatch_id]],
                            dispatch_id=dispatch_id,
                            attempt=attempts[dispatch_id])
            else:
                self.stats.failed_units += 1
                resolve(dispatch_id,
                        quarantine_row(units[index_of[dispatch_id]], error),
                        worker)

        while unresolved:
            for event in self.pump(deadline=deadline):
                if event.dispatch_id not in unresolved:
                    continue
                if event.kind == "result" and event.status == "ok":
                    resolve(event.dispatch_id, event.payload, event.worker)
                else:
                    fail(event.dispatch_id, event.worker, event.payload)
            if self.stats.respawns - respawns_before > respawn_limit:
                raise RuntimeError(
                    f"grid worker respawn limit exceeded "
                    f"({self.stats.respawns - respawns_before} respawns "
                    f"with {len(unresolved)} unit(s) unresolved)")
        return results, worker_ids

    def abort(self) -> None:
        """Tear the pool down immediately, skipping the sentinel handshake.

        The close() handshake waits on workers draining the task queue; a
        pool being abandoned *because* its workers keep dying (the service's
        circuit breaker) must not wait on them.
        """
        self._abort()

    def _abort(self) -> None:
        """Tear the pool down immediately (error path: no sentinels)."""
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
        for queue in (self._task_queue, self._result_queue):
            if queue is not None:
                queue.cancel_join_thread()
        self._processes = []
        self._task_queue = None
        self._result_queue = None
        self._claim_cells = []
        self._outstanding = set()
        self._observed = {}

    def close(self) -> None:
        """Stop the workers; safe to call twice."""
        if not self._processes:
            return
        for _ in self._processes:
            try:
                self._task_queue.put(None)
            except (OSError, ValueError):
                break
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self._processes = []
        self._task_queue = None
        self._result_queue = None
        self._claim_cells = []
        self._outstanding = set()
        self._observed = {}

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- deterministic merges -----------------------------------------------------

def merge_table2(units: Sequence[Table2Unit],
                 cells: Sequence[dict]) -> List[dict]:
    """Reassemble Table II rows from per-cell results.

    ``units`` must be in the serial config-outer/spec-inner order (what
    :func:`table2_units` produces); accumulating cells in that order makes
    each output row identical to the serial driver's — including
    ``average_time``, which averages time-to-success over successful cells
    in spec order.

    Quarantined cells (``{"status": "failed", ...}``) are excluded from the
    aggregation entirely — they were never measured, so they count toward
    neither ``functions`` nor any attack counter; the grid driver appends
    them to the artifact as their own rows.
    """
    rows: List[dict] = []
    by_config: Dict[str, dict] = {}
    spec_counts: Dict[str, int] = {}
    for unit, cell in zip(units, cells):
        if cell.get("status") == "failed":
            continue
        name = unit.configuration.name
        spec_counts[name] = spec_counts.get(name, 0) + 1
        row = by_config.get(name)
        if row is None:
            row = {"configuration": name, "secrets_found": 0, "functions": 0,
                   "average_time": 0.0, "full_coverage": 0, "executions": 0,
                   "instructions": 0, "branch_restores": 0, "_times": []}
            by_config[name] = row
            rows.append(row)
        if cell["secret_found"]:
            row["secrets_found"] += 1
            row["_times"].append(cell["time_to_success"])
        if cell["coverage_full"]:
            row["full_coverage"] += 1
        row["executions"] += cell["executions"]
        row["instructions"] += cell["instructions"]
        row["branch_restores"] += cell["branch_restores"]
    for row in rows:
        times = row.pop("_times")
        row["functions"] = spec_counts[row["configuration"]]
        row["average_time"] = sum(times) / len(times) if times else 0.0
    return rows


def executions_by_worker(worker_ids: Sequence[int],
                         cells: Sequence[dict]) -> Dict[str, int]:
    """Per-worker concrete-execution totals for the summary's attack_engine."""
    totals: Dict[str, int] = {}
    for worker_index, cell in zip(worker_ids, cells):
        if cell.get("status") == "failed":
            continue  # quarantined cells carry no execution counters
        key = str(worker_index)
        totals[key] = totals.get(key, 0) + cell["executions"]
    return totals
