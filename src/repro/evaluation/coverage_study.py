"""§VII-C1: how much of a heterogeneous code base the rewriter can handle."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core import RopConfig, rop_obfuscate
from repro.core.materialization import pivot_stub_size
from repro.workloads.coreutils import build_coreutils_corpus


@dataclass
class CoverageStudyResult:
    """Outcome of rewriting the synthetic coreutils-like corpus.

    Attributes:
        total_functions: unique functions in the corpus.
        skipped_small: functions shorter than the pivot stub.
        attempted: functions the rewriter attempted.
        rewritten: functions successfully converted to chains.
        failure_categories: failure reason histogram (register pressure,
            unsupported instructions, CFG recovery...).
    """

    total_functions: int
    skipped_small: int
    attempted: int
    rewritten: int
    failure_categories: Dict[str, int] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Fraction of attempted (non-stub) functions successfully rewritten."""
        if not self.attempted:
            return 0.0
        return self.rewritten / self.attempted


def run_coverage_study(programs: int = 20, functions_per_program: int = 12,
                       seed: int = 1, config: Optional[RopConfig] = None) -> CoverageStudyResult:
    """Rewrite every function of the corpus and tally the outcome categories."""
    corpus = build_coreutils_corpus(programs=programs,
                                    functions_per_program=functions_per_program, seed=seed)
    config = config or RopConfig.ropk(0.25, seed=seed)
    stub_size = pivot_stub_size()

    total = 0
    skipped_small = 0
    attempted = 0
    rewritten = 0
    failures: Dict[str, int] = {}

    for image, entries in corpus:
        names = [entry.name for entry in entries]
        total += len(names)
        small = [n for n in names if image.function(n).size < stub_size]
        skipped_small += len(small)
        candidates = [n for n in names if n not in small]
        if not candidates:
            continue
        attempted += len(candidates)
        _, report = rop_obfuscate(image, candidates, config)
        rewritten += len(report.rewritten)
        for reason, count in report.failure_categories().items():
            key = _categorize(reason)
            failures[key] = failures.get(key, 0) + count

    return CoverageStudyResult(
        total_functions=total,
        skipped_small=skipped_small,
        attempted=attempted,
        rewritten=rewritten,
        failure_categories=failures,
    )


def _categorize(reason: str) -> str:
    if "pressure" in reason or "register allocation" in reason:
        return "register pressure"
    if "unsupported instruction" in reason or "push" in reason:
        return "unsupported stack idiom"
    if "cfg" in reason.lower():
        return "cfg reconstruction"
    if "smaller than pivot" in reason:
        return "too small"
    return "other"
