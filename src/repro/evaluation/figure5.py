"""Figure 5: run-time overhead of ROPk on the clbg suite vs 2VM-IMPlast."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.attacks.engine import preloaded_fork
from repro.compiler import compile_program
from repro.cpu import call_function
from repro.evaluation.configurations import ROPK_SWEEP, apply_configuration, nvm, ropk
from repro.workloads.clbg import CLBG_BENCHMARKS, build_clbg_program

#: Maximum emulated instructions per benchmark run.
_RUN_BUDGET = 30_000_000


@dataclass
class Figure5Bar:
    """One bar of the stacked chart: slowdown of ROPk vs the VM baseline.

    Slowdowns are measured in executed instructions (the emulator's unit of
    work), which is the deterministic analog of the paper's wall-clock ratios.
    """

    benchmark: str
    k: float
    native_instructions: int
    rop_instructions: int
    baseline_instructions: int

    @property
    def slowdown_vs_native(self) -> float:
        return self.rop_instructions / max(1, self.native_instructions)

    @property
    def slowdown_vs_baseline(self) -> float:
        """The Figure 5 metric: ROPk relative to 2VM-IMPlast."""
        return self.rop_instructions / max(1, self.baseline_instructions)


def _run(image, entry: str, argument: int) -> int:
    """Measure one execution against a COW fork of the preloaded ``image``.

    The first measurement of an image pays a load through the attack
    engines' shared :func:`repro.attacks.engine.preloaded_fork` cache; every
    later one forks the cached pristine memory in O(regions).  Forks are
    never mutated back into the preload, so the cache stays pristine.
    """
    from repro.cpu.state import EmulationError

    fork = preloaded_fork(image)
    try:
        _, emulator = call_function(fork, entry, [argument],
                                    max_steps=_RUN_BUDGET)
        return emulator.steps
    except EmulationError:
        # instruction cap reached: report the cap (a lower bound on the cost)
        return _RUN_BUDGET


def run_figure5(benchmarks: Optional[Sequence[str]] = None,
                k_values: Optional[Sequence[float]] = None,
                baseline=None, seed: int = 1) -> List[Figure5Bar]:
    """Measure the relative cost of every ROPk setting for each benchmark.

    ``baseline`` defaults to the paper's 2VM-IMPlast configuration; scaled
    benchmark runs may pass a single-layer VM baseline to keep emulation time
    bounded (see benchmarks/conftest.py).
    """
    benchmarks = list(benchmarks or sorted(CLBG_BENCHMARKS))
    k_values = list(k_values if k_values is not None else [k for k in ROPK_SWEEP if k > 0])
    baseline_config = baseline or nvm(2, "last")
    bars: List[Figure5Bar] = []
    for name in benchmarks:
        program, entry, argument, targets = build_clbg_program(name)
        native_image = compile_program(program)
        native_steps = _run(native_image, entry, argument)
        baseline_image = apply_configuration(program, targets, baseline_config, seed=seed)
        baseline_steps = _run(baseline_image, entry, argument)
        for k in k_values:
            rop_image = apply_configuration(program, targets, ropk(k), seed=seed)
            rop_steps = _run(rop_image, entry, argument)
            bars.append(Figure5Bar(
                benchmark=name,
                k=k,
                native_instructions=native_steps,
                rop_instructions=rop_steps,
                baseline_instructions=baseline_steps,
            ))
    return bars
