"""Full-scale evaluation grid driver for the scheduled CI job.

Runs configurable slices of the paper's evaluation grids (Figure 5 run-time
overhead, Table II secret finding / coverage, Table III gadget statistics)
and writes each result set as a JSON artifact plus a ``summary.json`` with
run metadata, aggregate attack-engine statistics (executions, instructions,
backtracking restores) and per-configuration efficacy/overhead aggregates.
The scheduled GitHub Actions workflow (``.github/workflows/grid.yml``) runs
the ``reduced`` slice nightly and archives the artifacts;
``workflow_dispatch`` selects any slice manually.

Usage::

    PYTHONPATH=src python -m repro.evaluation.grid --slice reduced --out grid-results

Slices:

* ``smoke``   — minutes-scale sanity slice (used by PR CI and local runs).
* ``reduced`` — the recurring job's slice: a representative subset of the
  ``REPRO_FULL_SCALE`` grids with minute-scale attack budgets.
* ``full``    — the paper-sized grids (CPU-hours; ``workflow_dispatch``
  only).

Trend reporting compares the ``summary.json`` of two archived runs::

    PYTHONPATH=src python -m repro.evaluation.grid --compare old/summary.json new/summary.json

It prints per-configuration secret-finding/coverage deltas and per-benchmark
overhead shifts, and exits nonzero when any delta exceeds the thresholds
(``--efficacy-threshold``, relative ``--overhead-threshold``) — the alarm
hook for diffing consecutive nightly artifacts.  Runs carrying quarantined
cells (``summary.json``'s ``faults.failed_units``) are flagged in the diff,
since their rows are partial.

Fault tolerance: every completed unit is appended to ``checkpoint.jsonl``
in the output directory the moment it arrives, and ``--resume <dir>`` loads
a previous run's checkpoint and skips the units it already completed (keyed
on a deterministic unit fingerprint) — a nightly run killed by a runner
timeout continues where it stopped instead of restarting from zero.  Units
whose worker crashed/hung/errored past the retry budget are *quarantined*
as ``{"status": "failed", "error": ...}`` rows (see
``repro.evaluation.parallel``) rather than aborting the run; they are never
checkpointed, so a resumed run retries them.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro import knobs
from repro.attacks import AttackBudget
from repro.evaluation import parallel
from repro.evaluation.configurations import TABLE2_CONFIGURATIONS, nvm
from repro.evaluation.figure5 import run_figure5
from repro.evaluation.table2 import run_table2
from repro.evaluation.table3 import run_table3
from repro.workloads.randomfuns import generate_table2_suite

#: Per-slice grid parameters.  ``None`` means "everything the generator
#: offers" (the paper-sized default).
SLICES: Dict[str, Dict] = {
    # smoke is fully deterministic: the wall-clock budget is generous enough
    # to never bind (the +OC+IH row's select-heavy solver queries are slow,
    # hence the wide margin), so the deterministic caps (executions, solver
    # queries, instructions) are what stop each attack — identical rows on
    # any machine and at any --workers count (the serial-vs-parallel tests
    # assert exactly this)
    "smoke": {
        "structures": ("if(bb4,bb4)",),
        "input_sizes": (1,),
        "seeds": (1,),
        "attack_seconds": 600.0,
        "attack_executions": 6,
        "attack_instructions": 150_000,
        "attack_solver_queries": 48,
        "clbg_benchmarks": ("fasta",),
        "k_values": (0.25, 1.00),
        "configurations": ("NATIVE", "ROP1.00", "ROP1.00+OC+IH"),
        "include_coverage": False,
        "vm_baseline": nvm(1, "all"),
    },
    # sized so the worst case (every attack exhausting its budget) stays
    # within a nightly runner slot: 8 configs x 6 specs x 2 attacks x 45s
    # is ~1.2h of attack budget plus the Figure 5 / Table III sweeps
    "reduced": {
        "structures": ("if(bb4,bb4)", "for(if(bb4,bb4))", "if(if(if,if),if)"),
        "input_sizes": (1, 2),
        "seeds": (1,),
        "attack_seconds": 45.0,
        "attack_executions": 5_000,
        "attack_instructions": 2_000_000,
        "attack_solver_queries": None,
        "clbg_benchmarks": ("fasta", "rev-comp", "sp-norm"),
        "k_values": (0.05, 0.25, 0.50, 1.00),
        "configurations": ("NATIVE", "ROP0.05", "ROP0.25", "ROP0.50",
                           "ROP1.00", "ROP1.00+OC+IH",
                           "2VM", "2VM-IMPlast", "3VM-IMPall"),
        "include_coverage": True,
        "vm_baseline": nvm(2, "last"),
    },
    "full": {
        "structures": None,
        "input_sizes": (1, 2, 4, 8),
        "seeds": (1, 2, 3),
        "attack_seconds": 3600.0,
        "attack_executions": 100_000,
        "attack_instructions": 2_000_000,
        "attack_solver_queries": None,
        "clbg_benchmarks": None,
        "k_values": None,
        "configurations": None,
        "include_coverage": True,
        "vm_baseline": nvm(2, "last"),
    },
}


def _configurations(names: Optional[tuple]):
    if names is None:
        return list(TABLE2_CONFIGURATIONS)
    return [c for c in TABLE2_CONFIGURATIONS if c.name in names]


def _slice_budget(params: Dict) -> AttackBudget:
    return AttackBudget(
        seconds=params["attack_seconds"],
        max_executions=params["attack_executions"],
        max_instructions_per_run=params.get("attack_instructions", 2_000_000),
        max_solver_queries=params.get("attack_solver_queries"))


class Checkpoint:
    """Incremental unit-result ledger enabling ``--resume`` of a killed run.

    Each completed unit appends one JSON line ``{"fingerprint", "part",
    "result"}`` to ``checkpoint.jsonl`` in the output directory as soon as
    it arrives (flushed per line), so a run killed at *any* point leaves a
    usable ledger behind.  Quarantined units are never recorded — a resumed
    run retries them.  Fingerprints hash every unit parameter
    (:func:`repro.evaluation.parallel.unit_fingerprint`), so a checkpoint
    from a different slice/seed simply matches nothing instead of leaking
    stale rows into the wrong run.
    """

    FILENAME = "checkpoint.jsonl"

    def __init__(self, out_dir: Path, meta: Optional[Dict] = None) -> None:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        self.path = out_dir / self.FILENAME
        # a previous run killed mid-write may have left a torn final line
        # with no newline; appending straight after it would corrupt the
        # first new record too, so start on a fresh line
        torn = False
        empty = True
        if self.path.exists():
            with self.path.open("rb") as existing:
                existing.seek(0, 2)
                if existing.tell() > 0:
                    empty = False
                    existing.seek(-1, 2)
                    torn = existing.read(1) != b"\n"
        self._file = self.path.open("a", encoding="utf-8")
        if torn:
            self._file.write("\n")
        # a fresh ledger opens with a meta line recording the run axes
        # (slice, seed), so --resume can detect an axis mismatch instead of
        # silently matching nothing; appending to an existing ledger keeps
        # its original meta line
        if meta is not None and empty:
            self._file.write(json.dumps({"meta": meta}) + "\n")
            self._file.flush()

    def record(self, fingerprint: str, part: str, result: dict) -> None:
        self._file.write(json.dumps({"fingerprint": fingerprint,
                                     "part": part, "result": result}) + "\n")
        self._file.flush()

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "Checkpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @classmethod
    def load(cls, directory) -> Dict[str, dict]:
        """``fingerprint -> {"part", "result"}`` from a previous ledger.

        Tolerates a missing file (nothing to resume) and a torn final line
        (the driver may have been killed mid-write) — both just yield fewer
        resumable units, never an error.
        """
        path = Path(directory) / cls.FILENAME
        entries: Dict[str, dict] = {}
        if not path.exists():
            return entries
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and "fingerprint" in entry \
                    and "result" in entry:
                entries[entry["fingerprint"]] = {
                    "part": entry.get("part", ""),
                    "result": entry["result"]}
        return entries

    @classmethod
    def load_meta(cls, directory) -> Optional[Dict]:
        """The run-axis meta record of a previous ledger, if one was written.

        Returns ``None`` for a missing file or a pre-meta (legacy) ledger —
        those resume on fingerprints alone, exactly as before.
        """
        path = Path(directory) / cls.FILENAME
        if not path.exists():
            return None
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and isinstance(entry.get("meta"), dict):
                return entry["meta"]
        return None


def load_resume(resume_dir: Path, run_axes: Dict) -> tuple:
    """Load a ``--resume`` ledger, validating its run axes first.

    Returns ``(completed, messages)``.  A ledger recorded under a different
    slice/seed axis would match nothing fingerprint-wise — which silently
    reads as "fresh run" while leaving a stale ledger impression — so an
    explicit mismatch warning is emitted and the ledger ignored.  Legacy
    ledgers without a meta line resume on fingerprints alone, as before.
    """
    messages: List[str] = []
    completed = Checkpoint.load(resume_dir)
    recorded = Checkpoint.load_meta(resume_dir)
    if recorded is not None and recorded != run_axes:
        described = ", ".join(f"{key}={value}" for key, value
                              in sorted(recorded.items()))
        wanted = ", ".join(f"{key}={value}" for key, value
                           in sorted(run_axes.items()))
        messages.append(
            f"WARNING: checkpoint at {resume_dir / Checkpoint.FILENAME} was "
            f"recorded for {described}, but this invocation runs {wanted}; "
            f"ignoring it and starting a fresh ledger")
        return {}, messages
    if completed:
        messages.append(f"resume: {len(completed)} completed unit(s) loaded "
                        f"from {resume_dir / Checkpoint.FILENAME}")
    else:
        messages.append(f"resume: no checkpoint at "
                        f"{resume_dir / Checkpoint.FILENAME}; running every "
                        f"unit")
    return completed, messages


def _run_units(pool: parallel.WorkerPool, units, part: str,
               completed: Optional[Dict[str, dict]],
               checkpoint: Optional[Checkpoint]):
    """Dispatch ``units`` through ``pool``, skipping checkpointed ones.

    Returns ``(rows, worker_ids)`` in unit order; a resumed unit carries its
    checkpointed row and a ``None`` worker id (it cost this run nothing).
    Freshly completed units stream to ``checkpoint`` as they arrive, so a
    driver killed mid-part still checkpoints everything that finished.
    """
    completed = completed or {}
    fingerprints = [parallel.unit_fingerprint(unit) for unit in units]
    rows: List[Optional[dict]] = [None] * len(units)
    worker_ids: List[Optional[int]] = [None] * len(units)
    todo: List[int] = []
    for position, fingerprint in enumerate(fingerprints):
        entry = completed.get(fingerprint)
        if entry is None:
            todo.append(position)
        else:
            rows[position] = entry["result"]

    def on_result(index: int, unit, payload: dict) -> None:
        if checkpoint is not None and payload.get("status") != "failed":
            checkpoint.record(fingerprints[todo[index]], part, payload)

    mapped, ids = pool.map([units[position] for position in todo],
                           on_result=on_result)
    for index, position in enumerate(todo):
        rows[position] = mapped[index]
        worker_ids[position] = ids[index]
    return rows, worker_ids


def run_grid(slice_name: str = "reduced", seed: int = 1,
             parts: Optional[List[str]] = None,
             workers: Optional[int] = None,
             pool: Optional[parallel.WorkerPool] = None,
             meta: Optional[Dict] = None,
             checkpoint: Optional[Checkpoint] = None,
             completed: Optional[Dict[str, dict]] = None,
             ) -> Dict[str, List[dict]]:
    """Run the selected grid slice and return ``{artifact: rows}``.

    ``parts`` restricts the run to a subset of ``("figure5", "table2",
    "table3")``; rows are plain dicts ready for JSON serialization.

    ``workers`` > 1 shards each grid into work units dispatched across a
    fork-based worker pool (``repro.evaluation.parallel``); it defaults to
    the ``REPRO_GRID_WORKERS`` environment knob.  Rows are identical to a
    serial run at the same seed (wall-clock fields aside).  Pass ``pool`` to
    reuse one persistent pool across several calls (the CLI does this so
    worker-local caches survive across the three parts); ``meta``, when
    given, collects side-channel statistics (``executions_by_worker``,
    ``faults``).

    ``checkpoint`` streams each completed unit to disk as it arrives and
    ``completed`` (a loaded :meth:`Checkpoint.load` mapping) skips units a
    previous run already finished; either one routes execution through the
    per-unit path even at ``workers=1`` (the in-process pool fallback,
    which produces the same rows as the serial drivers).  Units that
    exhaust their retries surface as quarantined ``{"status": "failed"}``
    rows instead of raising.
    """
    params = SLICES[slice_name]
    parts = list(parts or ("figure5", "table2", "table3"))
    if workers is None:
        workers = pool.workers if pool is not None else parallel.grid_workers()
    results: Dict[str, List[dict]] = {}

    needs_units = checkpoint is not None or completed is not None
    own_pool: Optional[parallel.WorkerPool] = None
    if pool is None and (workers > 1 or needs_units):
        pool = own_pool = parallel.WorkerPool(workers)
    use_units = pool is not None and (pool.parallel or needs_units)

    try:
        if "figure5" in parts:
            if use_units:
                units = parallel.figure5_units(
                    benchmarks=params["clbg_benchmarks"],
                    k_values=params["k_values"],
                    baseline=params["vm_baseline"], seed=seed)
                results["figure5"], _ = _run_units(pool, units, "figure5",
                                                   completed, checkpoint)
            else:
                bars = run_figure5(benchmarks=params["clbg_benchmarks"],
                                   k_values=params["k_values"],
                                   baseline=params["vm_baseline"], seed=seed)
                results["figure5"] = [
                    {**dataclasses.asdict(bar),
                     "slowdown_vs_native": bar.slowdown_vs_native,
                     "slowdown_vs_baseline": bar.slowdown_vs_baseline}
                    for bar in bars
                ]

        if "table2" in parts:
            specs = generate_table2_suite(point_test=True, seeds=params["seeds"],
                                          input_sizes=params["input_sizes"],
                                          structures=params["structures"])
            budget = _slice_budget(params)
            configurations = _configurations(params["configurations"])
            if use_units:
                units = parallel.table2_units(
                    configurations, specs, budget,
                    include_coverage=params["include_coverage"], seed=seed)
                cells, worker_ids = _run_units(pool, units, "table2",
                                               completed, checkpoint)
                quarantined = [cell for cell in cells
                               if cell.get("status") == "failed"]
                results["table2"] = \
                    parallel.merge_table2(units, cells) + quarantined
                if meta is not None:
                    # attribute only this run's work: resumed cells (worker
                    # id None) were executed by the previous run
                    executed = [(worker, cell) for worker, cell
                                in zip(worker_ids, cells) if worker is not None]
                    meta["executions_by_worker"] = \
                        parallel.executions_by_worker(
                            [worker for worker, _ in executed],
                            [cell for _, cell in executed])
            else:
                rows = run_table2(configurations=configurations,
                                  specs=specs, budget=budget,
                                  include_coverage=params["include_coverage"],
                                  seed=seed)
                results["table2"] = [dataclasses.asdict(row) for row in rows]
                if meta is not None:
                    meta["executions_by_worker"] = {
                        "0": sum(row["executions"] for row in results["table2"])}

        if "table3" in parts:
            if use_units:
                units = parallel.table3_units(
                    benchmarks=params["clbg_benchmarks"],
                    k_values=params["k_values"], seed=seed)
                results["table3"], _ = _run_units(pool, units, "table3",
                                                  completed, checkpoint)
            else:
                rows3 = run_table3(benchmarks=params["clbg_benchmarks"],
                                   k_values=params["k_values"], seed=seed)
                results["table3"] = [
                    {**dataclasses.asdict(row),
                     "gadgets_per_point": row.gadgets_per_point}
                    for row in rows3
                ]
    finally:
        if meta is not None and pool is not None:
            meta["faults"] = pool.stats.as_dict()
        if own_pool is not None:
            own_pool.close()

    return results


def _config_aggregates(table2: List[dict]) -> Dict[str, Dict[str, float]]:
    """Per-configuration secret-finding/coverage rates from Table II rows.

    Multi-seed/multi-structure runs produce several rows per configuration;
    counts are summed across them and ``average_time`` is weighted by each
    row's success count (a plain last-row-wins comprehension here silently
    dropped all but one row per configuration).

    ``backtrack_rate`` is snapshot restores per concrete execution: how often
    DSE's backtracking actually engaged while attacking this configuration.
    The opaque-constant/instruction-hiding rows exist to stress exactly this
    path — a rate of 0 on them means the tracker fell back to rerun-from-entry
    everywhere and the exactness envelope regressed.
    """
    totals: Dict[str, Dict[str, float]] = {}
    for row in table2:
        if row.get("status") == "failed":
            continue  # quarantined rows carry no measurements
        entry = totals.setdefault(row["configuration"], {
            "functions": 0, "secrets_found": 0, "full_coverage": 0,
            "time_weight": 0.0, "executions": 0, "branch_restores": 0})
        entry["functions"] += row["functions"]
        entry["secrets_found"] += row["secrets_found"]
        entry["full_coverage"] += row["full_coverage"]
        entry["time_weight"] += row["average_time"] * row["secrets_found"]
        entry["executions"] += row.get("executions", 0)
        entry["branch_restores"] += row.get("branch_restores", 0)
    aggregates: Dict[str, Dict[str, float]] = {}
    for name, entry in totals.items():
        functions = max(1, entry["functions"])
        found = entry["secrets_found"]
        aggregates[name] = {
            "secret_rate": round(entry["secrets_found"] / functions, 4),
            "coverage_rate": round(entry["full_coverage"] / functions, 4),
            "average_time": round(
                entry["time_weight"] / found if found else 0.0, 3),
            "backtrack_rate": round(
                entry["branch_restores"] / max(1, entry["executions"]), 4),
        }
    return aggregates


def _overhead_aggregates(figure5: List[dict]) -> Dict[str, float]:
    """Per-(benchmark, k) slowdown-vs-baseline from Figure 5 bars."""
    return {
        f"{row['benchmark']}@k{row['k']:.2f}": round(
            row["slowdown_vs_baseline"], 4)
        for row in figure5 if row.get("status") != "failed"
    }


def write_artifacts(results: Dict[str, List[dict]], out_dir: Path,
                    slice_name: str, elapsed: float,
                    elapsed_by_part: Optional[Dict[str, float]] = None,
                    executions_by_worker: Optional[Dict[str, int]] = None,
                    workers: int = 1,
                    faults: Optional[Dict[str, int]] = None) -> Path:
    """Write one JSON file per grid plus a ``summary.json``; return the dir.

    ``elapsed_by_part`` attributes wall time to individual grids and
    ``executions_by_worker`` attributes attack work to pool workers, so
    ``--compare`` and the nightly job can localize runtime shifts.
    ``faults`` carries the pool's recovery counters (``failed_units``,
    ``retries``, ``respawns``, ``timeouts``); quarantined rows inside
    ``results`` are excluded from every aggregate.
    """
    out_dir.mkdir(parents=True, exist_ok=True)
    for name, rows in results.items():
        (out_dir / f"{name}.json").write_text(json.dumps(rows, indent=2) + "\n")

    table2 = [row for row in results.get("table2", [])
              if row.get("status") != "failed"]
    summary = {
        "slice": slice_name,
        "elapsed_sec": round(elapsed, 1),
        "elapsed_by_part": {name: round(seconds, 1) for name, seconds
                            in (elapsed_by_part or {}).items()},
        "workers": workers,
        "python": platform.python_version(),
        "full_scale_env": knobs.raw("REPRO_FULL_SCALE", "0"),
        "grids": {name: len(rows) for name, rows in results.items()},
        "attack_engine": {
            "executions": sum(row["executions"] for row in table2),
            "instructions": sum(row["instructions"] for row in table2),
            "branch_restores": sum(row["branch_restores"] for row in table2),
            "executions_by_worker": executions_by_worker or {},
        },
        "faults": faults or {"failed_units": 0, "retries": 0, "respawns": 0,
                             "timeouts": 0},
        # per-config aggregates: what --compare diffs between two runs
        "table2_configs": _config_aggregates(table2),
        "figure5_overheads": _overhead_aggregates(results.get("figure5", [])),
    }
    (out_dir / "summary.json").write_text(json.dumps(summary, indent=2) + "\n")
    return out_dir


#: Top-level summary.json keys --compare understands; anything else is a
#: later schema's addition and is ignored with a notice.
_KNOWN_SUMMARY_KEYS = frozenset({
    "slice", "elapsed_sec", "elapsed_by_part", "workers", "python",
    "full_scale_env", "grids", "attack_engine", "table2_configs",
    "figure5_overheads", "faults",
})


def compare_summaries(old: dict, new: dict, efficacy_threshold: float = 0.1,
                      overhead_threshold: float = 0.25) -> tuple:
    """Diff two ``summary.json`` payloads.

    Returns ``(lines, shifted)``: human-readable per-config delta lines, and
    whether any efficacy rate moved more than ``efficacy_threshold``
    (absolute) or any overhead ratio moved more than ``overhead_threshold``
    (relative).  Only configurations present in both runs are compared, so
    slices of different breadth can still be diffed for their overlap.

    Tolerant of schema growth in either direction: unknown top-level keys
    and metrics missing from one side are noted and skipped, never a
    ``KeyError`` — consecutive nightly artifacts straddling a schema change
    still diff cleanly.
    """
    lines: List[str] = []
    shifted = False

    for label, payload in (("old", old), ("new", new)):
        unknown = sorted(set(payload) - _KNOWN_SUMMARY_KEYS)
        if unknown:
            lines.append(f"   note: ignoring unknown {label} summary "
                         f"key(s): {', '.join(unknown)}")

    # a run with quarantined cells has partial rows: every rate it reports
    # is computed over fewer units, so flag the diff as suspect up front
    for label, payload in (("old", old), ("new", new)):
        failed_units = (payload.get("faults") or {}).get("failed_units", 0)
        if failed_units:
            lines.append(f"!! warning: {label} run has {failed_units} "
                         f"quarantined cell(s); its rows are partial")

    old_configs = old.get("table2_configs", {})
    new_configs = new.get("table2_configs", {})
    # configurations present in only one run are a schema/axis change (e.g. a
    # slice gaining the +OC/+IH protection-profile rows), not a regression:
    # note them so the reader knows the comparison below skips them
    only_old = sorted(set(old_configs) - set(new_configs))
    only_new = sorted(set(new_configs) - set(old_configs))
    if only_old:
        lines.append(f"   note: configuration(s) only in old run (axis "
                     f"removed?): {', '.join(only_old)}")
    if only_new:
        lines.append(f"   note: configuration(s) only in new run (new "
                     f"configuration axis, e.g. protection profiles): "
                     f"{', '.join(only_new)}")
    for name in sorted(set(old_configs) & set(new_configs)):
        before, after = old_configs[name], new_configs[name]
        for metric in ("secret_rate", "coverage_rate", "backtrack_rate"):
            if metric not in before or metric not in after:
                lines.append(f"   note: {name} {metric} missing from one "
                             f"summary; skipped")
                continue
            delta = after[metric] - before[metric]
            # backtrack_rate is restores *per execution* (often > 1), so the
            # absolute efficacy threshold does not apply; report it without
            # letting it trip the exit code
            flag = (metric != "backtrack_rate"
                    and abs(delta) > efficacy_threshold)
            shifted = shifted or flag
            lines.append(
                f"{'!! ' if flag else '   '}{name:<12} {metric:<13} "
                f"{before[metric]:6.3f} -> {after[metric]:6.3f}  "
                f"({delta:+.3f})")

    old_overheads = old.get("figure5_overheads", {})
    new_overheads = new.get("figure5_overheads", {})
    for name in sorted(set(old_overheads) & set(new_overheads)):
        before, after = old_overheads[name], new_overheads[name]
        relative = (after / before - 1.0) if before else 0.0
        flag = abs(relative) > overhead_threshold
        shifted = shifted or flag
        lines.append(
            f"{'!! ' if flag else '   '}{name:<20} overhead      "
            f"{before:6.2f} -> {after:6.2f}  ({relative:+.1%})")

    if not lines:
        lines.append("no overlapping configurations between the two summaries")
    return lines, shifted


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--slice", choices=sorted(SLICES), default="reduced",
                        help="grid scale to run (default: reduced)")
    parser.add_argument("--out", default="grid-results",
                        help="output directory for the JSON artifacts")
    parser.add_argument("--parts", nargs="+",
                        choices=("figure5", "table2", "table3"),
                        help="restrict to a subset of the grids")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for sharded execution "
                             "(default: REPRO_GRID_WORKERS or 1 = serial)")
    parser.add_argument("--resume", metavar="DIR", default=None,
                        help="directory holding a previous run's "
                             "checkpoint.jsonl; units it already completed "
                             "are loaded and skipped (a ledger recorded "
                             "under a different slice/seed is ignored with "
                             "a warning)")
    parser.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                        help="diff two summary.json files instead of running "
                             "a grid; exits 1 on shifts beyond the thresholds")
    parser.add_argument("--efficacy-threshold", type=float, default=0.1,
                        help="absolute secret/coverage-rate delta that "
                             "counts as a shift (default: 0.1)")
    parser.add_argument("--overhead-threshold", type=float, default=0.25,
                        help="relative overhead delta that counts as a "
                             "shift (default: 0.25)")
    args = parser.parse_args(argv)

    if args.compare:
        old_path, new_path = (Path(name) for name in args.compare)
        old = json.loads(old_path.read_text())
        new = json.loads(new_path.read_text())
        lines, shifted = compare_summaries(
            old, new, efficacy_threshold=args.efficacy_threshold,
            overhead_threshold=args.overhead_threshold)
        print(f"comparing {old_path} ({old.get('slice')}) -> "
              f"{new_path} ({new.get('slice')})")
        for line in lines:
            print(line)
        print("RESULT: shifted beyond thresholds" if shifted else "RESULT: stable")
        return 1 if shifted else 0

    start = time.monotonic()
    workers = args.workers if args.workers is not None else parallel.grid_workers()
    out_dir = Path(args.out)

    # checkpoint-resume: load a previous run's ledger, then stream this
    # run's completed units to out_dir/checkpoint.jsonl as they arrive
    run_axes = {"slice": args.slice, "seed": args.seed}
    completed: Dict[str, dict] = {}
    if args.resume:
        resume_dir = Path(args.resume)
        completed, messages = load_resume(resume_dir, run_axes)
        for message in messages:
            print(message)
    checkpoint = Checkpoint(out_dir, meta=run_axes)
    if completed and Path(args.resume).resolve() != out_dir.resolve():
        # carry the resumed entries over so out_dir is itself resumable
        for fingerprint, entry in completed.items():
            checkpoint.record(fingerprint, entry["part"], entry["result"])

    # run and persist one grid at a time: a budget overrun or runner timeout
    # mid-run still leaves every completed grid's JSON on disk for upload.
    # One pool persists across the parts so worker-local caches keep paying.
    results: Dict[str, List[dict]] = {}
    elapsed_by_part: Dict[str, float] = {}
    meta: Dict = {}
    with parallel.WorkerPool(workers) as pool, checkpoint:
        if workers > 1:
            print(f"workers: {workers} "
                  f"({'fork pool' if pool.parallel else 'fork unavailable, serial'}, "
                  f"snapshot pool share {pool.snapshot_share})")
        for part in args.parts or ("table3", "figure5", "table2"):
            part_start = time.monotonic()
            part_rows = run_grid(args.slice, seed=args.seed, parts=[part],
                                 pool=pool, meta=meta,
                                 checkpoint=checkpoint,
                                 completed=completed)[part]
            elapsed_by_part[part] = time.monotonic() - part_start
            results[part] = part_rows
            write_artifacts(results, out_dir, args.slice,
                            time.monotonic() - start,
                            elapsed_by_part=elapsed_by_part,
                            executions_by_worker=meta.get("executions_by_worker"),
                            workers=workers,
                            faults=pool.stats.as_dict())
            print(f"{part}: {len(part_rows)} rows -> {out_dir / (part + '.json')}")
        if pool.stats.failed_units:
            print(f"WARNING: {pool.stats.failed_units} unit(s) quarantined "
                  f"after retries (see the status=failed rows; "
                  f"{pool.stats.retries} retries, "
                  f"{pool.stats.respawns} worker respawns, "
                  f"{pool.stats.timeouts} deadline kills)")
    print(f"summary -> {out_dir / 'summary.json'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
