"""Full-scale evaluation grid driver for the scheduled CI job.

Runs configurable slices of the paper's evaluation grids (Figure 5 run-time
overhead, Table II secret finding / coverage, Table III gadget statistics)
and writes each result set as a JSON artifact plus a ``summary.json`` with
run metadata and aggregate attack-engine statistics (executions,
instructions, backtracking restores).  The scheduled GitHub Actions workflow
(``.github/workflows/grid.yml``) runs the ``reduced`` slice nightly and
archives the artifacts; ``workflow_dispatch`` selects any slice manually.

Usage::

    PYTHONPATH=src python -m repro.evaluation.grid --slice reduced --out grid-results

Slices:

* ``smoke``   — minutes-scale sanity slice (used by PR CI and local runs).
* ``reduced`` — the recurring job's slice: a representative subset of the
  ``REPRO_FULL_SCALE`` grids with minute-scale attack budgets.
* ``full``    — the paper-sized grids (CPU-hours; ``workflow_dispatch``
  only).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.attacks import AttackBudget
from repro.evaluation.configurations import TABLE2_CONFIGURATIONS, nvm
from repro.evaluation.figure5 import run_figure5
from repro.evaluation.table2 import run_table2
from repro.evaluation.table3 import run_table3
from repro.workloads.randomfuns import generate_table2_suite

#: Per-slice grid parameters.  ``None`` means "everything the generator
#: offers" (the paper-sized default).
SLICES: Dict[str, Dict] = {
    "smoke": {
        "structures": ("if(bb4,bb4)",),
        "input_sizes": (1,),
        "seeds": (1,),
        "attack_seconds": 2.0,
        "attack_executions": 40,
        "clbg_benchmarks": ("fasta",),
        "k_values": (0.25, 1.00),
        "configurations": ("NATIVE", "ROP1.00"),
        "include_coverage": False,
        "vm_baseline": nvm(1, "all"),
    },
    # sized so the worst case (every attack exhausting its budget) stays
    # within a nightly runner slot: 8 configs x 6 specs x 2 attacks x 45s
    # is ~1.2h of attack budget plus the Figure 5 / Table III sweeps
    "reduced": {
        "structures": ("if(bb4,bb4)", "for(if(bb4,bb4))", "if(if(if,if),if)"),
        "input_sizes": (1, 2),
        "seeds": (1,),
        "attack_seconds": 45.0,
        "attack_executions": 5_000,
        "clbg_benchmarks": ("fasta", "rev-comp", "sp-norm"),
        "k_values": (0.05, 0.25, 0.50, 1.00),
        "configurations": ("NATIVE", "ROP0.05", "ROP0.25", "ROP0.50",
                           "ROP1.00", "2VM", "2VM-IMPlast", "3VM-IMPall"),
        "include_coverage": True,
        "vm_baseline": nvm(2, "last"),
    },
    "full": {
        "structures": None,
        "input_sizes": (1, 2, 4, 8),
        "seeds": (1, 2, 3),
        "attack_seconds": 3600.0,
        "attack_executions": 100_000,
        "clbg_benchmarks": None,
        "k_values": None,
        "configurations": None,
        "include_coverage": True,
        "vm_baseline": nvm(2, "last"),
    },
}


def _configurations(names: Optional[tuple]):
    if names is None:
        return list(TABLE2_CONFIGURATIONS)
    return [c for c in TABLE2_CONFIGURATIONS if c.name in names]


def run_grid(slice_name: str = "reduced", seed: int = 1,
             parts: Optional[List[str]] = None) -> Dict[str, List[dict]]:
    """Run the selected grid slice and return ``{artifact: rows}``.

    ``parts`` restricts the run to a subset of ``("figure5", "table2",
    "table3")``; rows are plain dicts ready for JSON serialization.
    """
    params = SLICES[slice_name]
    parts = list(parts or ("figure5", "table2", "table3"))
    results: Dict[str, List[dict]] = {}

    if "figure5" in parts:
        bars = run_figure5(benchmarks=params["clbg_benchmarks"],
                           k_values=params["k_values"],
                           baseline=params["vm_baseline"], seed=seed)
        results["figure5"] = [
            {**dataclasses.asdict(bar),
             "slowdown_vs_native": bar.slowdown_vs_native,
             "slowdown_vs_baseline": bar.slowdown_vs_baseline}
            for bar in bars
        ]

    if "table2" in parts:
        specs = generate_table2_suite(point_test=True, seeds=params["seeds"],
                                      input_sizes=params["input_sizes"],
                                      structures=params["structures"])
        budget = AttackBudget(seconds=params["attack_seconds"],
                              max_executions=params["attack_executions"])
        rows = run_table2(configurations=_configurations(params["configurations"]),
                          specs=specs, budget=budget,
                          include_coverage=params["include_coverage"], seed=seed)
        results["table2"] = [dataclasses.asdict(row) for row in rows]

    if "table3" in parts:
        rows3 = run_table3(benchmarks=params["clbg_benchmarks"],
                           k_values=params["k_values"], seed=seed)
        results["table3"] = [
            {**dataclasses.asdict(row), "gadgets_per_point": row.gadgets_per_point}
            for row in rows3
        ]

    return results


def write_artifacts(results: Dict[str, List[dict]], out_dir: Path,
                    slice_name: str, elapsed: float) -> Path:
    """Write one JSON file per grid plus a ``summary.json``; return the dir."""
    out_dir.mkdir(parents=True, exist_ok=True)
    for name, rows in results.items():
        (out_dir / f"{name}.json").write_text(json.dumps(rows, indent=2) + "\n")

    table2 = results.get("table2", [])
    summary = {
        "slice": slice_name,
        "elapsed_sec": round(elapsed, 1),
        "python": platform.python_version(),
        "full_scale_env": os.environ.get("REPRO_FULL_SCALE", "0"),
        "grids": {name: len(rows) for name, rows in results.items()},
        "attack_engine": {
            "executions": sum(row["executions"] for row in table2),
            "instructions": sum(row["instructions"] for row in table2),
            "branch_restores": sum(row["branch_restores"] for row in table2),
        },
    }
    (out_dir / "summary.json").write_text(json.dumps(summary, indent=2) + "\n")
    return out_dir


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--slice", choices=sorted(SLICES), default="reduced",
                        help="grid scale to run (default: reduced)")
    parser.add_argument("--out", default="grid-results",
                        help="output directory for the JSON artifacts")
    parser.add_argument("--parts", nargs="+",
                        choices=("figure5", "table2", "table3"),
                        help="restrict to a subset of the grids")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    start = time.monotonic()
    # run and persist one grid at a time: a budget overrun or runner timeout
    # mid-run still leaves every completed grid's JSON on disk for upload
    results: Dict[str, List[dict]] = {}
    out_dir = Path(args.out)
    for part in args.parts or ("table3", "figure5", "table2"):
        part_rows = run_grid(args.slice, seed=args.seed, parts=[part])[part]
        results[part] = part_rows
        write_artifacts(results, out_dir, args.slice, time.monotonic() - start)
        print(f"{part}: {len(part_rows)} rows -> {out_dir / (part + '.json')}")
    print(f"summary -> {out_dir / 'summary.json'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
