"""§VII-A: per-technique efficacy of the strengthening transformations.

The study reproduces the qualitative findings of the section:

* P1 slows (static) symbolic execution down already on small functions;
* P3 inflates the state space the concolic engine must cover;
* TDS cannot simplify away the input-coupled P3/P1 machinery;
* ROPDissector-style flipping is broken by P2 and gadget guessing explodes
  under gadget confusion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.dse import DseEngine, InputSpec
from repro.attacks.ropaware import RopDissector, RopMemuExplorer
from repro.attacks.symbolic import SymbolicExecutionEngine
from repro.attacks.tds import TaintDrivenSimplifier
from repro.compiler import compile_program
from repro.core import RopConfig, rop_obfuscate
from repro.workloads.randomfuns import RandomFunSpec, generate_random_function


@dataclass
class EfficacyResult:
    """Aggregated measurements of the §VII-A experiments."""

    se_native_paths: int
    se_rop_p1_paths: int
    dse_native_paths: int
    dse_rop_p3_paths: int
    dse_native_instructions: int
    dse_rop_p3_instructions: int
    tds_plain_tainted_branches: int
    tds_p3_tainted_branches: int
    ropmemu_valid_flips_plain: int
    ropmemu_valid_flips_p2: int
    dissector_plain_fraction: float
    dissector_confused_fraction: float
    guessed_gadgets: int


def run_efficacy_study(budget_seconds: float = 3.0, seed: int = 1) -> EfficacyResult:
    """Run the §VII-A micro-experiments on a small Tigress-style function."""
    spec = RandomFunSpec(structure="for(if(bb4,bb4))", input_size=1, seed=seed)
    program, _, _ = generate_random_function(spec)
    name = spec.name
    native = compile_program(program)
    rop_p1_only, _ = rop_obfuscate(native, [name], RopConfig(
        p1_enabled=True, p2_enabled=False, p3_enabled=False, gadget_confusion=False))
    rop_full, _ = rop_obfuscate(native, [name], RopConfig.ropk(1.0, seed=seed))
    rop_plain, _ = rop_obfuscate(native, [name], RopConfig.plain(seed=seed))
    rop_p2, _ = rop_obfuscate(native, [name], RopConfig(
        p1_enabled=False, p2_enabled=True, p3_enabled=False, gadget_confusion=True))

    input_spec = InputSpec(argument_sizes=[1])

    # A1: static SE vs P1
    se_native = SymbolicExecutionEngine(native, name, input_spec, seed=seed)
    _, se_native_stats = se_native.explore(time_budget=budget_seconds, max_executions=40)
    se_p1 = SymbolicExecutionEngine(rop_p1_only, name, input_spec, seed=seed)
    _, se_p1_stats = se_p1.explore(time_budget=budget_seconds, max_executions=40)

    # A3: DSE vs P3
    dse_native = DseEngine(native, name, input_spec, seed=seed)
    _, dse_native_stats = dse_native.explore(time_budget=budget_seconds, max_executions=40)
    dse_p3 = DseEngine(rop_full, name, input_spec, seed=seed)
    _, dse_p3_stats = dse_p3.explore(time_budget=budget_seconds, max_executions=40)

    # TDS simplification
    tds_plain = TaintDrivenSimplifier(rop_plain, name).simplify([3])
    tds_p3 = TaintDrivenSimplifier(rop_full, name).simplify([3])

    # A2: ROP-aware flipping and gadget guessing
    memu_plain = RopMemuExplorer(rop_plain, name).explore([3], max_flips=6)
    memu_p2 = RopMemuExplorer(rop_p2, name).explore([3], max_flips=6)
    dissector_plain = RopDissector(rop_plain).dissect(name)
    dissector_confused = RopDissector(rop_p2).dissect(name, gadget_guessing=True)

    return EfficacyResult(
        se_native_paths=se_native_stats.paths_seen,
        se_rop_p1_paths=se_p1_stats.paths_seen,
        dse_native_paths=dse_native_stats.paths_seen,
        dse_rop_p3_paths=dse_p3_stats.paths_seen,
        dse_native_instructions=dse_native_stats.instructions,
        dse_rop_p3_instructions=dse_p3_stats.instructions,
        tds_plain_tainted_branches=tds_plain.tainted_branches,
        tds_p3_tainted_branches=tds_p3.tainted_branches,
        ropmemu_valid_flips_plain=memu_plain.valid_alternate_paths,
        ropmemu_valid_flips_p2=memu_p2.valid_alternate_paths,
        dissector_plain_fraction=dissector_plain.address_looking_fraction,
        dissector_confused_fraction=dissector_confused.address_looking_fraction,
        guessed_gadgets=dissector_confused.guessed_gadgets,
    )
