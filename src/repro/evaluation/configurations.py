"""Configuration registry used by the evaluation (re-exported from Table I)."""

from repro.obfuscation.configs import (
    NATIVE,
    ObfuscationConfig,
    ROPK_SWEEP,
    TABLE2_CONFIGURATIONS,
    apply_configuration,
    nvm,
    ropk,
)

__all__ = [
    "NATIVE",
    "ObfuscationConfig",
    "ROPK_SWEEP",
    "TABLE2_CONFIGURATIONS",
    "apply_configuration",
    "nvm",
    "ropk",
]
