"""Plain-text table rendering for the evaluation drivers and benchmarks."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
