"""Crash-safe request journal of the long-lived attack service.

``service.jsonl`` mirrors the grid's ``checkpoint.jsonl`` discipline
(:class:`repro.evaluation.grid.Checkpoint`): one flushed JSON line
``{"fingerprint", "row"}`` per request the moment it reaches a *recorded*
terminal state, so a service killed at any point — including mid-write —
leaves a usable ledger behind.  On restart the journal is loaded, completed
requests re-emit their recorded rows verbatim instead of re-running, and a
torn final line (the tell of a mid-write kill) is repaired by starting the
next record on a fresh line.

Only ``done`` rows are journaled.  ``quarantined`` mirrors the grid
checkpoint's semantics — the fault may have been transient, so a restarted
service retries quarantined requests instead of trusting a stale failure.
``shed``/``rejected`` are admission decisions of one particular service
invocation — journaling them would make a restarted service refuse work it
now has room for.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict


class Journal:
    """Append-only fingerprint-keyed ledger of terminal request rows."""

    FILENAME = "service.jsonl"

    def __init__(self, directory: Path) -> None:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        self.path = directory / self.FILENAME
        # a previous service killed mid-write may have left a torn final
        # line with no newline; appending straight after it would corrupt
        # the first new record too, so start on a fresh line
        torn = False
        if self.path.exists():
            with self.path.open("rb") as existing:
                existing.seek(0, 2)
                if existing.tell() > 0:
                    existing.seek(-1, 2)
                    torn = existing.read(1) != b"\n"
        self._file = self.path.open("a", encoding="utf-8")
        if torn:
            self._file.write("\n")

    def record(self, fingerprint: str, row: dict) -> None:
        self._file.write(json.dumps({"fingerprint": fingerprint,
                                     "row": row}) + "\n")
        self._file.flush()

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @classmethod
    def load(cls, directory) -> Dict[str, dict]:
        """``fingerprint -> row`` from a previous service's ledger.

        Tolerates a missing file (nothing to resume) and corrupt/torn lines
        (the service may have been killed mid-write) — both just yield
        fewer resumable requests, never an error.
        """
        path = Path(directory) / cls.FILENAME
        entries: Dict[str, dict] = {}
        if not path.exists():
            return entries
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and "fingerprint" in entry \
                    and "row" in entry:
                entries[entry["fingerprint"]] = entry["row"]
        return entries
