"""CLI of the long-lived attack service.

Usage::

    PYTHONPATH=src python -m repro.service --dir service-results requests.jsonl
    ... | PYTHONPATH=src python -m repro.service --dir service-results -

The input is one JSON request object per line (see
:func:`repro.service.requests.parse_request` for the schema); blank lines
and ``#`` comment lines are skipped.  One JSON result row is printed per
request in *completion* order (retries and load balancing reorder them; sort
by ``id`` to compare batches), followed by a final ``{"summary": ...}``
block with the service stats — completed/retried/shed/quarantined/rejected/
resumed plus the pool's respawn/timeout counters.

``--dir`` holds ``service.jsonl``: re-running the same batch against the
same directory re-emits completed rows from the journal instead of
re-running them (the ``resumed`` counter says how many).  Admission applies
backpressure by default when the bounded queue fills; ``--shed-when-full``
turns that into fail-fast ``shed`` rows instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.service.core import AttackService
from repro.service.requests import parse_request


def _emit(row: dict) -> None:
    print(json.dumps(row, sort_keys=True), flush=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("requests", nargs="?", default="-",
                        help="JSONL request file, or - for stdin (default)")
    parser.add_argument("--dir", default="service-results",
                        help="journal directory (service.jsonl lives here)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool worker processes "
                             "(default: REPRO_SERVICE_WORKERS or 1 = serial)")
    parser.add_argument("--queue", type=int, default=None,
                        help="admission queue bound "
                             "(default: REPRO_SERVICE_QUEUE)")
    parser.add_argument("--shed-when-full", action="store_true",
                        help="shed requests when the queue is full instead "
                             "of applying backpressure")
    args = parser.parse_args(argv)

    if args.requests == "-":
        lines = sys.stdin.read().splitlines()
    else:
        lines = Path(args.requests).read_text(encoding="utf-8").splitlines()

    quarantined = 0
    with AttackService(Path(args.dir), workers=args.workers,
                       queue_limit=args.queue) as service:
        for line in lines:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                _emit(service.reject(None, f"invalid JSON: {exc}"))
                continue
            try:
                request = parse_request(obj)
            except ValueError as exc:
                request_id = obj.get("id") if isinstance(obj, dict) else None
                _emit(service.reject(request_id, str(exc)))
                continue
            for row in service.submit(request,
                                      shed_when_full=args.shed_when_full):
                _emit(row)
        for row in service.drain():
            _emit(row)
        summary = service.summary()
        quarantined = summary["quarantined"]
        _emit({"summary": summary})
    return 1 if quarantined else 0


if __name__ == "__main__":
    raise SystemExit(main())
