"""Long-lived attack service over the persistent grid worker pool.

``python -m repro.service`` drains a request file (or stdin) through
:class:`~repro.service.core.AttackService`; see :mod:`repro.service.core`
for the robustness vocabulary (admission control, deadlines, retry with
backoff, circuit-breaker degradation, crash-safe journaling) and
:mod:`repro.service.requests` for the request schema and the per-worker
image/engine reuse that makes the service cheaper than one-shot runs.
"""

from repro.service.core import (AttackService, ServiceStats, service_backoff,
                                service_breaker, service_queue_limit,
                                service_timeout, service_workers)
from repro.service.journal import Journal
from repro.service.requests import (AttackRequest, execute_request,
                                    parse_request, request_fingerprint)

__all__ = [
    "AttackRequest",
    "AttackService",
    "Journal",
    "ServiceStats",
    "execute_request",
    "parse_request",
    "request_fingerprint",
    "service_backoff",
    "service_breaker",
    "service_queue_limit",
    "service_timeout",
    "service_workers",
]
