"""Attack requests: the work unit of the long-lived attack service.

An :class:`AttackRequest` names everything that determines one secret-finding
attack: the generated function (structure, input size, spec seed), the
obfuscation configuration applied to it, the engine, and the deterministic
budget caps.  Requests are validated on admission (:func:`parse_request`
raises ``ValueError`` with the reason, which becomes a ``rejected`` terminal
row) and executed inside pool workers by :func:`execute_request`, which is
registered with the grid pool's unit-executor registry
(:func:`repro.evaluation.parallel.register_unit_executor`) so the existing
fork/claim/supervision machinery dispatches requests like any grid unit.

Reuse across requests is what makes the service worth running long-lived:
each worker keeps small LRU caches of prepared images and attack engines.
Requests naming the same image share its compiled/obfuscated form and —
through :meth:`repro.attacks.engine.SnapshotEngine.retarget` plus
:meth:`repro.attacks.dse.DseEngine.reset` — the engine's prepared emulator
and entry snapshot, while every piece of cross-request exploration state
(RNG, solver, stats, mid-path snapshot pool) is rebuilt per request.  That
reset discipline is exactly why a served result is byte-identical to a
one-shot run at the same seed, which the differential tests assert.

The default budget caps mirror the grid's smoke slice: the wall clock is
generous enough to never bind, so the deterministic caps (executions, solver
queries, instructions) are what stop each attack — identical result rows on
any machine, any worker count, and any retry history.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.attacks import AttackBudget, secret_finding_attack
from repro.attacks.dse import DseEngine, InputSpec
from repro.attacks.goals import dse_workers
from repro.evaluation.parallel import register_unit_executor, unit_fingerprint
from repro.obfuscation.configs import TABLE2_CONFIGURATIONS
from repro.workloads.randomfuns import (CONTROL_STRUCTURES,
                                        DEFAULT_LOOP_ITERATIONS, INPUT_SIZES,
                                        RandomFunSpec)

_STRUCTURES = tuple(entry[0] for entry in CONTROL_STRUCTURES)
_CONFIG_BY_NAME = {config.name: config for config in TABLE2_CONFIGURATIONS}
_ENGINES_ALLOWED = ("dse", "se")

#: Per-worker cache bounds: images embed full obfuscated programs and
#: engines hold prepared emulators, so both stay small and LRU-bounded.
_CACHE_CAPACITY = 16


@dataclass(frozen=True)
class AttackRequest:
    """One secret-finding attack request.

    ``seed`` obfuscates the image (the ``apply_configuration`` seed) and
    doubles as the attack seed unless ``attack_seed`` overrides it —
    requests differing only in ``attack_seed`` share a prepared image and
    entry snapshot, the service's cheapest repeat customers.
    """

    id: str
    structure: str = "if(bb4,bb4)"
    input_size: int = 1
    spec_seed: int = 1
    loop_iterations: int = DEFAULT_LOOP_ITERATIONS
    configuration: str = "ROP1.00"
    engine: str = "dse"
    seed: int = 1
    attack_seed: Optional[int] = None
    seconds: float = 600.0
    max_executions: int = 6
    max_instructions: int = 150_000
    max_solver_queries: Optional[int] = 48

    @property
    def effective_attack_seed(self) -> int:
        return self.seed if self.attack_seed is None else self.attack_seed

    @property
    def spec(self) -> RandomFunSpec:
        return RandomFunSpec(structure=self.structure,
                             input_size=self.input_size, seed=self.spec_seed,
                             point_test=True,
                             loop_iterations=self.loop_iterations)

    @property
    def symbol(self) -> str:
        return self.spec.name


_FIELD_TYPES = {
    "id": (str, int),
    "structure": (str,),
    "input_size": (int,),
    "spec_seed": (int,),
    "loop_iterations": (int,),
    "configuration": (str,),
    "engine": (str,),
    "seed": (int,),
    "attack_seed": (int, type(None)),
    "seconds": (int, float),
    "max_executions": (int,),
    "max_instructions": (int,),
    "max_solver_queries": (int, type(None)),
}


def parse_request(obj: object) -> AttackRequest:
    """Validate one decoded request object; raise ``ValueError`` with why.

    The error message is the admission-control rejection reason, so it
    names the offending field and the accepted values.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"request must be a JSON object, got "
                         f"{type(obj).__name__}")
    unknown = sorted(set(obj) - set(_FIELD_TYPES))
    if unknown:
        raise ValueError(f"unknown request field(s): {', '.join(unknown)}")
    if "id" not in obj:
        raise ValueError("request is missing the required 'id' field")
    for name, value in obj.items():
        if not isinstance(value, _FIELD_TYPES[name]) \
                or isinstance(value, bool):
            accepted = "/".join(t.__name__ for t in _FIELD_TYPES[name])
            raise ValueError(f"field {name!r} must be {accepted}, got "
                             f"{type(value).__name__}")
    fields = dict(obj)
    fields["id"] = str(fields["id"])
    request = AttackRequest(**fields)
    if request.structure not in _STRUCTURES:
        raise ValueError(f"unknown structure {request.structure!r}; one of "
                         f"{', '.join(_STRUCTURES)}")
    if request.input_size not in INPUT_SIZES:
        raise ValueError(f"input_size must be one of {INPUT_SIZES}, got "
                         f"{request.input_size}")
    if request.configuration not in _CONFIG_BY_NAME:
        raise ValueError(f"unknown configuration {request.configuration!r}")
    if request.engine not in _ENGINES_ALLOWED:
        raise ValueError(f"unknown engine {request.engine!r}; one of "
                         f"{', '.join(_ENGINES_ALLOWED)}")
    if request.loop_iterations < 1:
        raise ValueError("loop_iterations must be >= 1")
    if request.seconds <= 0 or request.max_executions < 1 \
            or request.max_instructions < 1:
        raise ValueError("budget caps must be positive")
    return request


def request_fingerprint(request: AttackRequest) -> str:
    """Deterministic cross-run identity of a request — the journal key."""
    return unit_fingerprint(request)


# -- worker-side execution ----------------------------------------------------

#: image key -> (BinaryImage, symbol); worker-local, deterministic values.
_IMAGES: "OrderedDict[Tuple, Tuple]" = OrderedDict()

#: engine key -> prepared DseEngine (entry snapshot warm); worker-local.
_ENGINES: "OrderedDict[Tuple, DseEngine]" = OrderedDict()


def _image_key(request: AttackRequest) -> Tuple:
    return (request.structure, request.input_size, request.spec_seed,
            request.loop_iterations, request.configuration, request.seed)


def _cache_get(cache: OrderedDict, key: Tuple):
    value = cache.get(key)
    if value is not None:
        cache.move_to_end(key)
    return value


def _cache_put(cache: OrderedDict, key: Tuple, value) -> None:
    cache[key] = value
    cache.move_to_end(key)
    while len(cache) > _CACHE_CAPACITY:
        cache.popitem(last=False)


def _prepared_image(request: AttackRequest):
    """The obfuscated image and attacked symbol of ``request`` (cached)."""
    from repro.obfuscation.configs import apply_configuration
    from repro.workloads.randomfuns import generate_random_function

    key = _image_key(request)
    cached = _cache_get(_IMAGES, key)
    if cached is None:
        spec = request.spec
        program, _, _ = generate_random_function(spec)
        image = apply_configuration(program, [spec.name],
                                    _CONFIG_BY_NAME[request.configuration],
                                    seed=request.seed)
        cached = (image, spec.name)
        _cache_put(_IMAGES, key, cached)
    return cached


def _prepared_engine(request: AttackRequest, image, symbol: str) -> DseEngine:
    """A reset DSE engine for ``request``, reusing a cached one if possible.

    The cache key includes ``max_instructions`` because the cap is baked
    into the prepared emulator (``max_steps``); everything else a previous
    request could leak is rebuilt by :meth:`DseEngine.reset`, while the
    entry snapshot stays warm across requests attacking the same symbol and
    is lazily invalidated by :meth:`~repro.attacks.engine.SnapshotEngine.
    retarget` when the symbol changes.
    """
    key = _image_key(request) + (request.max_instructions,)
    input_spec = InputSpec(argument_sizes=[request.input_size])
    engine = _cache_get(_ENGINES, key)
    if engine is None:
        engine = DseEngine(image, symbol, input_spec, strategy="cupa",
                           memory_model="concretize",
                           seed=request.effective_attack_seed,
                           max_instructions=request.max_instructions)
        _cache_put(_ENGINES, key, engine)
    engine.retarget(symbol)
    engine.reset(input_spec=input_spec, seed=request.effective_attack_seed)
    return engine


def execute_request(request: AttackRequest) -> dict:
    """Run one request to a ``done`` row (deterministic fields only).

    Wall-clock fields are deliberately absent from the row: the budget's
    deterministic caps are what bind, so the row is byte-identical across
    serial/pooled/retried executions — the property the journal relies on
    to re-emit rows verbatim on resume.
    """
    image, symbol = _prepared_image(request)
    budget = AttackBudget(seconds=request.seconds,
                          max_executions=request.max_executions,
                          max_instructions_per_run=request.max_instructions,
                          max_solver_queries=request.max_solver_queries)
    input_spec = InputSpec(argument_sizes=[request.input_size])
    driver = None
    if request.engine == "dse" and dse_workers() == 1:
        # the cached-engine path; REPRO_DSE_WORKERS > 1 falls through to the
        # distributed frontier, which builds its own per-worker engines
        driver = _prepared_engine(request, image, symbol)
    outcome = secret_finding_attack(image, symbol, input_spec, budget,
                                    engine=request.engine,
                                    seed=request.effective_attack_seed,
                                    driver=driver)
    return {
        "id": request.id,
        "status": "done",
        "symbol": symbol,
        "configuration": request.configuration,
        "engine": request.engine,
        "secret_found": outcome.success,
        "witness": outcome.witness,
        "executions": outcome.executions,
        "instructions": outcome.instructions,
        "solver_queries": outcome.solver_queries,
        "paths": outcome.paths,
        "branch_restores": outcome.branch_restores,
        "instructions_replayed": outcome.instructions_replayed,
    }


def _registered_executor(request: AttackRequest) -> dict:
    # late-bound so tests monkeypatching execute_request take effect
    return execute_request(request)


register_unit_executor(AttackRequest, _registered_executor)
