"""Long-lived attack service: scheduling, robustness and terminal states.

:class:`AttackService` accepts :class:`~repro.service.requests.AttackRequest`
admissions and drives each to exactly one terminal state:

* ``done`` — executed within the budget; the row is journaled and a
  restarted service re-emits it verbatim instead of re-running.
* ``quarantined`` — the request failed/timed out/lost its worker more than
  ``REPRO_UNIT_RETRIES`` times (PR 7 semantics: not journaled, so a
  restarted service retries it — the fault may have been transient).
* ``shed`` — admission control refused it because the bounded queue
  (``REPRO_SERVICE_QUEUE``) was full and the caller asked to shed rather
  than block.
* ``rejected`` — the request never parsed/validated.

Scheduling layers on the grid pool's incremental supervision API
(:meth:`repro.evaluation.parallel.WorkerPool.submit` /
:meth:`~repro.evaluation.parallel.WorkerPool.pump`): the service owns
admission, retry policy with exponential backoff (``REPRO_SERVICE_BACKOFF``)
and terminal-state bookkeeping, while the pool owns the claim-cell heartbeat
protocol that turns worker deaths *and* hangs (``REPRO_SERVICE_TIMEOUT``,
falling back to ``REPRO_UNIT_TIMEOUT``) into events.  A pool that keeps
burning respawns trips a circuit breaker (``REPRO_SERVICE_BREAKER``): the
service tears the pool down and degrades to in-process serial execution,
where only ``raise`` faults can reach it — requests already admitted keep
their dispatch ids and attempt counts, so fault-injection indexing and the
retry budget survive the degradation.

Every recovery path here is provoked deterministically by
``REPRO_FAULT_INJECT`` (see :mod:`repro.faults`); the differential tests
assert that a batch served under kill/hang/exit0/raise faults produces
``done`` rows byte-identical to one-shot serial runs at the same seed.
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, List, Optional

from repro import knobs
from repro.evaluation.parallel import WorkerPool, fork_available
from repro.faults import inject_fault, parse_fault_spec, unit_retries, unit_timeout
from repro.service.journal import Journal
from repro.service.requests import (AttackRequest, execute_request,
                                    request_fingerprint)

#: Seconds one blocking supervision round waits for pool events.
_POLL_SECONDS = 1.0


def service_workers() -> int:
    """Resolve ``REPRO_SERVICE_WORKERS`` (default 1 = in-process serial)."""
    return knobs.positive_int("REPRO_SERVICE_WORKERS")


def service_queue_limit() -> int:
    """Resolve ``REPRO_SERVICE_QUEUE``: max requests admitted but not yet
    terminal (pending + backing off + in flight); default 64."""
    return knobs.positive_int("REPRO_SERVICE_QUEUE")


def service_timeout() -> Optional[float]:
    """Per-request deadline: ``REPRO_SERVICE_TIMEOUT``, else the shared
    ``REPRO_UNIT_TIMEOUT``; ``None`` disables (the default)."""
    try:
        value = float(knobs.raw("REPRO_SERVICE_TIMEOUT", "") or "")
    except ValueError:
        return unit_timeout()
    return value if value > 0 else None


def service_backoff() -> float:
    """Resolve ``REPRO_SERVICE_BACKOFF``: base retry delay in seconds;
    attempt ``n`` waits ``base * 2**(n-1)``.  Default 0.1; 0 disables."""
    return knobs.nonneg_float("REPRO_SERVICE_BACKOFF")


def service_breaker() -> int:
    """Resolve ``REPRO_SERVICE_BREAKER``: worker respawns tolerated before
    the circuit breaker degrades the service to in-process execution
    (default 8)."""
    return knobs.positive_int("REPRO_SERVICE_BREAKER")


@dataclass
class ServiceStats:
    """Terminal-state and recovery counters of one service instance."""

    completed: int = 0
    quarantined: int = 0
    shed: int = 0
    rejected: int = 0
    retried: int = 0
    #: requests whose journaled row was re-emitted without re-running.
    resumed: int = 0
    respawns: int = 0
    timeouts: int = 0
    #: 1 once the circuit breaker degraded the service to in-process mode.
    degraded: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclass
class _Tracked:
    """Book-keeping for one admitted, not-yet-terminal request."""

    request: AttackRequest
    fingerprint: str
    dispatch_id: Optional[int] = None
    attempt: int = 0
    #: monotonic time before which a backing-off retry must not re-dispatch
    ready_at: float = 0.0


class AttackService:
    """The long-lived attack service (see module docstring).

    Args mirror the service knobs and default to them; tests
    pass explicit values.  ``directory`` holds ``service.jsonl``.
    """

    def __init__(self, directory: Path, workers: Optional[int] = None,
                 queue_limit: Optional[int] = None,
                 deadline: Optional[float] = None,
                 retries: Optional[int] = None,
                 backoff: Optional[float] = None,
                 breaker: Optional[int] = None) -> None:
        self.workers = service_workers() if workers is None else max(1, workers)
        self.queue_limit = (service_queue_limit() if queue_limit is None
                            else max(1, queue_limit))
        self.deadline = service_timeout() if deadline is None else deadline
        self.retries = unit_retries() if retries is None else retries
        self.backoff = service_backoff() if backoff is None else backoff
        self.breaker = service_breaker() if breaker is None else breaker
        self.stats = ServiceStats()
        # load before opening for append: the previous service may have died
        # mid-write, and the journal's constructor repairs the torn line
        self._journaled = Journal.load(directory)
        self.journal = Journal(directory)
        self._fault_spec = parse_fault_spec()
        self._pool: Optional[WorkerPool] = None
        if self.workers > 1 and fork_available():
            self._pool = WorkerPool(self.workers)
        self._pending: Deque[_Tracked] = deque()
        self._waiting: List[_Tracked] = []
        self._inflight: Dict[int, _Tracked] = {}
        #: service-owned dispatch sequence — the ``REPRO_FAULT_INJECT``
        #: index space; ids survive retries and pool degradation
        self._dispatch_sequence = 0

    # -- admission -------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Admitted requests that have not reached a terminal state."""
        return len(self._pending) + len(self._waiting) + len(self._inflight)

    @property
    def degraded(self) -> bool:
        return bool(self.stats.degraded)

    def submit(self, request: AttackRequest,
               shed_when_full: bool = False) -> List[dict]:
        """Admit one request; return any terminal rows this call produced.

        A journaled request re-emits its recorded row immediately (never
        re-run).  When the bounded queue is full, ``shed_when_full`` makes
        admission fail fast with a ``shed`` row; otherwise the call applies
        backpressure — it processes queued work until a slot frees, and the
        rows completed along the way are returned together with any
        immediate terminal row.
        """
        fingerprint = request_fingerprint(request)
        journaled = self._journaled.get(fingerprint)
        if journaled is not None:
            self.stats.resumed += 1
            return [journaled]
        rows: List[dict] = []
        if self.occupancy >= self.queue_limit:
            if shed_when_full:
                self.stats.shed += 1
                return [{"id": request.id, "status": "shed",
                         "reason": f"service queue full "
                                   f"(REPRO_SERVICE_QUEUE={self.queue_limit})"}]
            while self.occupancy >= self.queue_limit:
                rows.extend(self.process())
        self._pending.append(_Tracked(request=request,
                                      fingerprint=fingerprint))
        return rows

    def reject(self, request_id: Optional[str], reason: str) -> dict:
        """Record an admission rejection (unparseable/invalid request)."""
        self.stats.rejected += 1
        return {"id": request_id, "status": "rejected", "reason": reason}

    # -- terminal states -------------------------------------------------------
    def _finish(self, tracked: _Tracked, row: dict) -> dict:
        self.stats.completed += 1
        self.journal.record(tracked.fingerprint, row)
        return row

    def _quarantine(self, tracked: _Tracked, error: str) -> dict:
        # not journaled: the fault may have been transient, so a restarted
        # service retries quarantined requests (checkpoint semantics)
        self.stats.quarantined += 1
        return {"id": tracked.request.id, "status": "quarantined",
                "error": error}

    def _retry_or_quarantine(self, tracked: _Tracked,
                             error: str) -> Optional[dict]:
        if tracked.attempt >= self.retries:
            return self._quarantine(tracked, error)
        tracked.attempt += 1
        self.stats.retried += 1
        delay = self.backoff * (2 ** (tracked.attempt - 1))
        tracked.ready_at = time.monotonic() + delay  # lint: allow-wallclock — retry-backoff schedule, not row content
        self._waiting.append(tracked)
        return None

    # -- scheduling ------------------------------------------------------------
    def _next_dispatch_id(self, tracked: _Tracked) -> int:
        if tracked.dispatch_id is None:
            tracked.dispatch_id = self._dispatch_sequence
            self._dispatch_sequence += 1
        return tracked.dispatch_id

    def _dispatch_ready(self) -> None:
        """Move pending and backoff-expired requests into the pool."""
        now = time.monotonic()  # lint: allow-wallclock — retry-backoff schedule, not row content
        ready = [tracked for tracked in self._waiting
                 if tracked.ready_at <= now]
        for tracked in ready:
            self._waiting.remove(tracked)
            self._pool.submit(tracked.request,
                              dispatch_id=tracked.dispatch_id,
                              attempt=tracked.attempt)
            self._inflight[tracked.dispatch_id] = tracked
        while self._pending:
            tracked = self._pending.popleft()
            dispatch_id = self._next_dispatch_id(tracked)
            self._pool.submit(tracked.request, dispatch_id=dispatch_id,
                              attempt=tracked.attempt)
            self._inflight[dispatch_id] = tracked

    def _trip_breaker(self) -> None:
        """Degrade to in-process execution after repeated respawns.

        In-flight requests return to the front of the pending queue with
        their dispatch ids and attempt counts intact, so fault-injection
        indexing and retry budgets carry over; inline execution then only
        honours ``raise``/``slow`` faults, which is exactly the degradation
        the breaker exists for — a pool whose workers keep dying stops
        being used.
        """
        self.stats.degraded = 1
        pool, self._pool = self._pool, None
        reclaimed = sorted(self._inflight.values(),
                           key=lambda tracked: tracked.dispatch_id)
        self._inflight.clear()
        for tracked in reversed(reclaimed):
            self._pending.appendleft(tracked)
        pool.abort()

    def _sync_pool_stats(self) -> None:
        self.stats.respawns = self._pool.stats.respawns
        self.stats.timeouts = self._pool.stats.timeouts

    def process(self) -> List[dict]:
        """One supervision round; returns requests that became terminal."""
        if self._pool is None:
            return self._process_inline()
        rows: List[dict] = []
        self._dispatch_ready()
        if not self._inflight:
            if self._waiting:
                # everything admitted is backing off; wait out the nearest
                # retry instead of spinning
                now = time.monotonic()  # lint: allow-wallclock — retry-backoff schedule, not row content
                time.sleep(min(_POLL_SECONDS,
                               max(0.0, min(tracked.ready_at
                                            for tracked in self._waiting)
                                   - now)))
            return rows
        for event in self._pool.pump(timeout=_POLL_SECONDS,
                                     deadline=self.deadline):
            tracked = self._inflight.pop(event.dispatch_id, None)
            if tracked is None:
                continue
            if event.kind == "result" and event.status == "ok":
                rows.append(self._finish(tracked, event.payload))
            else:
                row = self._retry_or_quarantine(tracked, str(event.payload))
                if row is not None:
                    rows.append(row)
        self._sync_pool_stats()
        if self.stats.respawns > self.breaker:
            self._trip_breaker()
        return rows

    def _process_inline(self) -> List[dict]:
        """Serial/degraded mode: run the oldest runnable request in-process."""
        rows: List[dict] = []
        now = time.monotonic()  # lint: allow-wallclock — retry-backoff schedule, not row content
        for tracked in list(self._waiting):
            if tracked.ready_at <= now:
                self._waiting.remove(tracked)
                self._pending.append(tracked)
        if not self._pending:
            if self._waiting:
                time.sleep(min(_POLL_SECONDS,
                               max(0.0, min(tracked.ready_at
                                            for tracked in self._waiting)
                                   - now)))
            return rows
        tracked = self._pending.popleft()
        dispatch_id = self._next_dispatch_id(tracked)
        try:
            inject_fault(dispatch_id, tracked.attempt, self._fault_spec,
                         inline=True)
            rows.append(self._finish(tracked,
                                     execute_request(tracked.request)))
        # lint: allow-broad-except — degraded-mode containment: any request
        # failure (fault injection included) must become a retry/quarantine
        # row, never take down the long-lived service.
        except Exception as exc:
            row = self._retry_or_quarantine(
                tracked, f"{type(exc).__name__}: {exc}")
            if row is not None:
                rows.append(row)
        return rows

    def drain(self) -> List[dict]:
        """Process until every admitted request is terminal; return rows."""
        rows: List[dict] = []
        while self.occupancy:
            rows.extend(self.process())
        return rows

    # -- lifecycle -------------------------------------------------------------
    def summary(self) -> dict:
        """The service-stats block the CLI emits after the batch."""
        return {"workers": self.workers, "queue_limit": self.queue_limit,
                **self.stats.as_dict()}

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self.journal.close()

    def __enter__(self) -> "AttackService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
