"""Architectural CPU state: registers, flags and the instruction pointer."""

from __future__ import annotations

from typing import Callable, Dict

from repro.isa.flags import Flag
from repro.isa.registers import Register

#: Two's-complement mask for 64-bit register arithmetic.
MASK64 = (1 << 64) - 1

#: Value mask per operand width in bytes.  The emulator's hot paths index
#: these tables instead of recomputing ``(1 << (8 * size)) - 1`` per access.
SIZE_MASKS: Dict[int, int] = {1: 0xFF, 2: 0xFFFF, 4: 0xFFFFFFFF, 8: MASK64}

#: Sign bit per operand width in bytes.
SIGN_BITS: Dict[int, int] = {1: 1 << 7, 2: 1 << 15, 4: 1 << 31, 8: 1 << 63}

#: Bit width per operand width in bytes.
BIT_WIDTHS: Dict[int, int] = {1: 8, 2: 16, 4: 32, 8: 64}


class EmulationError(RuntimeError):
    """Raised when emulation cannot proceed (bad fetch, fault, limits)."""


def _mask(size: int) -> int:
    mask = SIZE_MASKS.get(size)
    if mask is None:
        return (1 << (8 * size)) - 1
    return mask


def to_signed(value: int, size: int = 8) -> int:
    """Interpret ``value`` (unsigned, ``size`` bytes) as a signed integer."""
    mask = SIZE_MASKS.get(size)
    if mask is None:
        mask = (1 << (8 * size)) - 1
    value &= mask
    sign_bit = (mask >> 1) + 1
    return value - mask - 1 if value & sign_bit else value


def to_unsigned(value: int, size: int = 8) -> int:
    """Truncate a Python integer to an unsigned ``size``-byte value."""
    return value & _mask(size)


#: Condition code -> predicate over ``(cf, zf, sf, of)``, prebuilt once so
#: :meth:`CpuState.condition` is a table lookup instead of evaluating a dict
#: of twelve comparisons per branch.
CONDITION_TABLE: Dict[str, Callable[[int, int, int, int], bool]] = {
    "e": lambda cf, zf, sf, of: zf == 1,
    "ne": lambda cf, zf, sf, of: zf == 0,
    "l": lambda cf, zf, sf, of: sf != of,
    "ge": lambda cf, zf, sf, of: sf == of,
    "le": lambda cf, zf, sf, of: zf == 1 or sf != of,
    "g": lambda cf, zf, sf, of: zf == 0 and sf == of,
    "b": lambda cf, zf, sf, of: cf == 1,
    "ae": lambda cf, zf, sf, of: cf == 0,
    "be": lambda cf, zf, sf, of: cf == 1 or zf == 1,
    "a": lambda cf, zf, sf, of: cf == 0 and zf == 0,
    "s": lambda cf, zf, sf, of: sf == 1,
    "ns": lambda cf, zf, sf, of: sf == 0,
}


#: Flag -> :class:`CpuState` attribute name holding that flag's value.
_FLAG_ATTRS: Dict[Flag, str] = {Flag.CF: "cf", Flag.ZF: "zf",
                                Flag.SF: "sf", Flag.OF: "of"}


class CpuState:
    """Register file, condition flags and instruction pointer.

    Registers always hold 64-bit unsigned values internally.  Sized accesses
    follow the simplified x86-64 convention documented on
    :class:`repro.isa.operands.Reg`.

    Flags are stored as the plain int attributes ``cf``/``zf``/``sf``/``of``
    (0 or 1 each).  Plain :class:`enum.Enum` members hash through a Python
    level ``__hash__`` (by name), so keeping flags in a ``Dict[Flag, int]``
    made every flag update in the emulator's hot loop pay several interpreted
    hash calls; attribute slots are a single C-level store.  Use
    :meth:`read_flag`/:meth:`write_flag` (or the :attr:`flags` snapshot) for
    ``Flag``-keyed access.
    """

    __slots__ = ("regs", "cf", "zf", "sf", "of", "rip")

    def __init__(self) -> None:
        self.regs: Dict[Register, int] = {reg: 0 for reg in Register}
        self.cf = 0
        self.zf = 0
        self.sf = 0
        self.of = 0
        self.rip: int = 0

    @property
    def flags(self) -> Dict[Flag, int]:
        """A ``Flag``-keyed snapshot of the current flag values.

        This is a *copy* for introspection (tracing, tests, debugging);
        mutate flags through :meth:`write_flag` or the attributes.
        """
        return {Flag.CF: self.cf, Flag.ZF: self.zf,
                Flag.SF: self.sf, Flag.OF: self.of}

    def read_reg(self, reg: Register, size: int = 8) -> int:
        """Read ``size`` low bytes of a register as an unsigned value."""
        value = self.regs[reg]
        if size == 8:
            # registers are stored 64-bit masked, so the full read is free
            return value
        mask = SIZE_MASKS.get(size)
        return value & (mask if mask is not None else (1 << (8 * size)) - 1)

    def write_reg(self, reg: Register, value: int, size: int = 8) -> None:
        """Write ``size`` bytes into a register.

        Size-8 and size-4 writes replace the whole register (4-byte writes
        zero-extend); 1- and 2-byte writes merge into the low bytes.
        """
        mask = SIZE_MASKS.get(size)
        if mask is None:
            mask = (1 << (8 * size)) - 1
        if size >= 4:
            self.regs[reg] = value & mask
        else:
            self.regs[reg] = (self.regs[reg] & ~mask & MASK64) | (value & mask)

    def flags_tuple(self) -> tuple:
        """The four condition flags as a ``(cf, zf, sf, of)`` tuple.

        A stable snapshot accessor for differential tests and other
        consumers that compare whole flag states at once.  (The
        exec-compiled trace tier hoists flags through the plain
        ``cf``/``zf``/``sf``/``of`` attributes directly.)
        """
        return (self.cf, self.zf, self.sf, self.of)

    def read_flag(self, flag: Flag) -> int:
        """Read a condition flag (0 or 1)."""
        return getattr(self, _FLAG_ATTRS[flag])

    def write_flag(self, flag: Flag, value: int) -> None:
        """Set a condition flag to 0 or 1."""
        setattr(self, _FLAG_ATTRS[flag], 1 if value else 0)

    def condition(self, code: str) -> bool:
        """Evaluate a condition code against the current flags."""
        predicate = CONDITION_TABLE.get(code)
        if predicate is None:
            raise EmulationError(f"unknown condition code {code!r}")
        return predicate(self.cf, self.zf, self.sf, self.of)

    def restore_from(self, other: "CpuState") -> None:
        """Overwrite this state with ``other``'s values, in place.

        Keeps the :class:`CpuState` object and its ``regs`` dict identities
        intact, which compiled trace closures (:mod:`repro.cpu.trace`) and
        other hot-loop consumers bind directly — the CPU half of the
        emulator's in-place snapshot restore.
        """
        self.regs.update(other.regs)  # both dicts carry every Register key
        self.cf = other.cf
        self.zf = other.zf
        self.sf = other.sf
        self.of = other.of
        self.rip = other.rip

    def fork(self) -> "CpuState":
        """Return an independent copy of the state.

        Registers are a flat dict and flags are plain ints, so forking is a
        single dict copy — the CPU half of the O(1) emulator snapshots
        (:meth:`repro.cpu.Emulator.snapshot`).
        """
        clone = CpuState()
        clone.regs = dict(self.regs)
        clone.cf = self.cf
        clone.zf = self.zf
        clone.sf = self.sf
        clone.of = self.of
        clone.rip = self.rip
        return clone

    #: Backwards-compatible alias for :meth:`fork`.
    copy = fork

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        regs = ", ".join(f"{reg}={value:#x}" for reg, value in self.regs.items() if value)
        return f"<CpuState rip={self.rip:#x} {regs}>"
