"""Architectural CPU state: registers, flags and the instruction pointer."""

from __future__ import annotations

from typing import Dict

from repro.isa.flags import Flag, fresh_flags
from repro.isa.registers import Register

#: Two's-complement mask for 64-bit register arithmetic.
MASK64 = (1 << 64) - 1


class EmulationError(RuntimeError):
    """Raised when emulation cannot proceed (bad fetch, fault, limits)."""


def _mask(size: int) -> int:
    return (1 << (8 * size)) - 1


def to_signed(value: int, size: int = 8) -> int:
    """Interpret ``value`` (unsigned, ``size`` bytes) as a signed integer."""
    value &= _mask(size)
    sign_bit = 1 << (8 * size - 1)
    return value - (1 << (8 * size)) if value & sign_bit else value


def to_unsigned(value: int, size: int = 8) -> int:
    """Truncate a Python integer to an unsigned ``size``-byte value."""
    return value & _mask(size)


class CpuState:
    """Register file, condition flags and instruction pointer.

    Registers always hold 64-bit unsigned values internally.  Sized accesses
    follow the simplified x86-64 convention documented on
    :class:`repro.isa.operands.Reg`.
    """

    def __init__(self) -> None:
        self.regs: Dict[Register, int] = {reg: 0 for reg in Register}
        self.flags: Dict[Flag, int] = fresh_flags()
        self.rip: int = 0

    def read_reg(self, reg: Register, size: int = 8) -> int:
        """Read ``size`` low bytes of a register as an unsigned value."""
        return self.regs[reg] & _mask(size)

    def write_reg(self, reg: Register, value: int, size: int = 8) -> None:
        """Write ``size`` bytes into a register.

        Size-8 and size-4 writes replace the whole register (4-byte writes
        zero-extend); 1- and 2-byte writes merge into the low bytes.
        """
        value &= _mask(size)
        if size >= 4:
            self.regs[reg] = value
        else:
            self.regs[reg] = (self.regs[reg] & ~_mask(size) & MASK64) | value

    def read_flag(self, flag: Flag) -> int:
        """Read a condition flag (0 or 1)."""
        return self.flags[flag]

    def write_flag(self, flag: Flag, value: int) -> None:
        """Set a condition flag to 0 or 1."""
        self.flags[flag] = 1 if value else 0

    def condition(self, code: str) -> bool:
        """Evaluate a condition code against the current flags."""
        cf = self.flags[Flag.CF]
        zf = self.flags[Flag.ZF]
        sf = self.flags[Flag.SF]
        of = self.flags[Flag.OF]
        table = {
            "e": zf == 1,
            "ne": zf == 0,
            "l": sf != of,
            "ge": sf == of,
            "le": zf == 1 or sf != of,
            "g": zf == 0 and sf == of,
            "b": cf == 1,
            "ae": cf == 0,
            "be": cf == 1 or zf == 1,
            "a": cf == 0 and zf == 0,
            "s": sf == 1,
            "ns": sf == 0,
        }
        try:
            return table[code]
        except KeyError:
            raise EmulationError(f"unknown condition code {code!r}") from None

    def copy(self) -> "CpuState":
        """Return an independent copy of the state."""
        clone = CpuState()
        clone.regs = dict(self.regs)
        clone.flags = dict(self.flags)
        clone.rip = self.rip
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        regs = ", ".join(f"{reg}={value:#x}" for reg, value in self.regs.items() if value)
        return f"<CpuState rip={self.rip:#x} {regs}>"
