"""Execution tracing used by the dynamic deobfuscation attacks.

A :class:`TraceRecorder` attaches to an :class:`repro.cpu.Emulator` and
records every executed instruction with its address and the pre-execution
register snapshot the analyses need (TDS taint tracking, ROPMEMU flag-leak
detection, DSE concolic state updates).

Recorders hook in through ``pre_hooks``, which forces the emulator's run
loop onto the per-instruction path: superinstruction fusion
(:mod:`repro.cpu.trace`) never skips a hooked instruction, so a recorded
trace is always the complete architectural sequence regardless of
``REPRO_TRACE_CACHE``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.isa.instructions import Instruction
from repro.isa.registers import Register


@dataclass(slots=True)
class TraceEntry:
    """One executed instruction.

    Attributes:
        index: position in the trace.
        address: address the instruction was fetched from.
        instruction: the decoded instruction.
        rsp: value of the stack pointer before execution (the ROP virtual PC).
        regs: optional register snapshot before execution.
    """

    index: int
    address: int
    instruction: Instruction
    rsp: int
    regs: Optional[Dict[Register, int]] = None


class TraceRecorder:
    """Records executed instructions from an emulator.

    Args:
        capture_registers: store a full register snapshot per entry.  This is
            what TDS and ROPMEMU need; it is off by default to keep plain
            functional runs cheap.
        limit: maximum number of entries kept (older entries are not dropped;
            recording simply stops, mirroring a bounded trace buffer).
    """

    def __init__(self, capture_registers: bool = False, limit: int = 2_000_000) -> None:
        self.capture_registers = capture_registers
        self.limit = limit
        self.entries: List[TraceEntry] = []

    def attach(self, emulator) -> "TraceRecorder":
        """Register this recorder as a pre-execution hook on ``emulator``."""
        emulator.pre_hooks.append(self._hook)
        return self

    def _hook(self, emulator, address: int, instruction: Instruction) -> None:
        entries = self.entries
        if len(entries) >= self.limit:
            return
        state_regs = emulator.state.regs
        regs = dict(state_regs) if self.capture_registers else None
        entries.append(
            TraceEntry(
                index=len(entries),
                address=address,
                instruction=instruction,
                rsp=state_regs[Register.RSP],
                regs=regs,
            )
        )

    def __len__(self) -> int:
        return len(self.entries)

    def addresses(self) -> List[int]:
        """Return the sequence of executed addresses."""
        return [entry.address for entry in self.entries]

    def executed_in(self, start: int, end: int) -> List[TraceEntry]:
        """Return entries whose address falls in ``[start, end)``."""
        return [entry for entry in self.entries if start <= entry.address < end]
