"""Concrete emulator for the reproduction ISA.

The emulator executes encoded instructions directly from memory, which means
ROP chains run exactly as the paper describes them: ``ret`` pops the next
gadget address from the stack and execution continues wherever ``rsp`` points.
The emulator also services host runtime calls and drives the tracing hooks the
attack engines (DSE, TDS, ROPMEMU) build on.

Performance notes (this is the hottest loop in the repo — every experiment
in the evaluation grid bottoms out here):

* **Decode cache** — decoded ``(instruction, length)`` pairs are cached per
  address, keyed on the owning region's write ``generation``.  Stores into a
  region bump its generation (see :class:`repro.memory.Region`), so
  self-modifying code and ROP-materialized instructions invalidate their
  cache entries naturally.  Set ``REPRO_DECODE_CACHE=0`` to disable it.
* **Dispatch table** — instruction semantics live in per-mnemonic handler
  methods bound into a ``Mnemonic -> handler`` table at construction, and
  the cached decode entry memoizes the handler, so steady-state dispatch is
  one dict probe instead of a ~40-branch ``if`` chain.
* **Trace cache** — hot addresses are fused into superinstructions: straight
  -line runs (and ret-chains with concrete stack targets) compile into flat
  lists of operand-bound closures executed as one unit, skipping the whole
  per-instruction dispatch (see :mod:`repro.cpu.trace`).  Traces key on the
  code region's write generation like the decode cache and fall back to
  single-step whenever hooks are installed or the step budget is nearly
  exhausted.  Set ``REPRO_TRACE_CACHE=0`` to disable fusion.
* **Exec-compiled traces** — a trace that stays hot past the closure-tier
  warm-up is spilled to generated Python source and ``compile``/``exec``'d
  into one function per trace (see :mod:`repro.cpu.codegen`): registers and
  flags hoisted into locals, operands and effective addresses constant-
  folded, ret guards and mid-trace SMC checks inline.  Execution is thus
  three-tiered — single-step -> closure trace -> compiled trace — with each
  tier the exact-semantics fallback of the next.  Set
  ``REPRO_TRACE_COMPILE=0`` to stop at the closure tier;
  :attr:`Emulator.jit_stats` counts per-tier activity.
* **Cross-trace superblocks** — a compiled trace whose exit keeps landing
  on another compiled trace's entry (the guarded-ret/ROP-chain shape, or a
  trace capped at ``TRACE_CAP`` falling through) is linked with it into a
  superblock: the constituent compiled functions dispatch tail-to-head
  without returning to the run loop, with each seam re-checking the next
  constituent's entry address and region write generation — so the
  effective fused length grows past ``TRACE_CAP`` while SMC invalidation
  keys on each constituent exactly (see
  :func:`repro.cpu.trace.compose_traces`).  Set
  ``REPRO_TRACE_SUPERBLOCK=0`` to disable linking.
* **Hook-free fast path** — :meth:`run` only takes the slow path (pre-hook
  fan-out per instruction) when hooks are actually installed.
* **O(1) snapshots** — :meth:`Emulator.snapshot` / :meth:`Emulator.restore`
  fork the complete execution context (registers, flags, memory COW, host
  state) so the attack engines can rewind to a saved point instead of
  re-running from the entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro import knobs
from repro.binary.loader import LoadedProgram
from repro.binary.sections import HOST_FUNCTION_LIMIT
from repro.cpu.host import EXIT_ADDRESS, HostEnvironment, is_host_address
from repro.cpu.state import (
    BIT_WIDTHS,
    CpuState,
    EmulationError,
    SIGN_BITS,
    SIZE_MASKS,
    to_signed,
)
from repro.cpu import semantics as _semantics
from repro.cpu.codegen import compile_trace
from repro.cpu.trace import (
    SUPERBLOCK_CAP as _SUPERBLOCK_CAP,
    Trace,
    build_trace,
    compose_traces,
)
from repro.isa.encoding import DecodeError, decode_instruction
from repro.isa.instructions import Instruction, Mnemonic
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import ARG_REGISTERS, Register
from repro.memory import Memory, MemoryError_

#: Largest possible encoded instruction, used to bound fetch windows.
_MAX_INSTRUCTION_LENGTH = 64

#: 64-bit mask.
_MASK64 = (1 << 64) - 1

#: Program addresses live above this; anything at or below it is either the
#: host-function range, the :data:`EXIT_ADDRESS` sentinel, or an unmapped
#: low address.  The run loop compares against this once per step instead of
#: calling :func:`is_host_address` per instruction.
_HOST_SPACE_END = HOST_FUNCTION_LIMIT

#: Decode caching default; ``REPRO_DECODE_CACHE=0`` disables it globally
#: (useful for benchmarking the cache itself and as a bisection aid).
_DECODE_CACHE_DEFAULT = knobs.enabled("REPRO_DECODE_CACHE")

#: Trace fusion default; ``REPRO_TRACE_CACHE=0`` disables superinstruction
#: fusion globally (debugging aid and the A/B lever the benchmark uses).
_TRACE_CACHE_DEFAULT = knobs.enabled("REPRO_TRACE_CACHE")

#: Source-compilation default; ``REPRO_TRACE_COMPILE=0`` stops promotion at
#: the closure tier (the A/B lever for the compiled tier specifically).
_TRACE_COMPILE_DEFAULT = knobs.enabled("REPRO_TRACE_COMPILE")

#: Cross-trace superblock default; ``REPRO_TRACE_SUPERBLOCK=0`` keeps
#: compiled traces independent (no tail-to-head fusion through guarded
#: rets), the A/B lever for the superblock machinery specifically.
_TRACE_SUPERBLOCK_DEFAULT = knobs.enabled("REPRO_TRACE_SUPERBLOCK")

#: Number of run-loop visits to an address before it is fused into a trace.
#: One free visit keeps cold straight-through code out of the compiler.
_TRACE_HEAT_THRESHOLD = 2

#: Closure-tier executions of a trace before it is promoted to the
#: exec-compiled tier.  Two warm-up runs keep one-shot traces (and the
#: attack engines' short-lived explorations) away from ``compile()``.
_TRACE_COMPILE_THRESHOLD = 2

#: Observed tail-to-head transitions from one compiled trace's exit onto
#: another compiled trace's entry before the pair is fused into a
#: superblock.  A few repeats filter data-dependent one-off successions.
_SUPERBLOCK_THRESHOLD = 4

#: Distinct exit addresses tracked per watched trace before the watch is
#: dropped as megamorphic (a dispatcher-style exit will never stabilize).
_SUPERBLOCK_FANOUT = 8


@dataclass
class JitStats:
    """Per-emulator counters of the three-tier execution pipeline.

    Attributes:
        traces_built: traces recorded and closure-compiled (tier 2 entries).
        traces_compiled: traces promoted to exec-compiled source (tier 3).
        compile_declined: promotions declined by the codegen (the trace
            stays on the closure tier for good).
        compiled_runs: fused executions served by compiled functions.
        closure_runs: fused executions served by the closure lists.
        native_steps: instructions emitted as native source across all
            compiled traces (static count at compile time).
        generic_steps: instructions compiled as generic-handler round-trips
            (flush/reload around the emulator's own handler) across all
            compiled traces.
        superblocks_built: cross-trace superblocks compiled (tail-to-head
            fusions of hot compiled traces through guarded rets).
        superblock_runs: fused executions served by superblock functions
            (also counted in ``compiled_runs``).
    """

    traces_built: int = 0
    traces_compiled: int = 0
    compile_declined: int = 0
    compiled_runs: int = 0
    closure_runs: int = 0
    native_steps: int = 0
    generic_steps: int = 0
    superblocks_built: int = 0
    superblock_runs: int = 0

    @property
    def compiled_hit_rate(self) -> float:
        """Fraction of fused executions served by the compiled tier."""
        total = self.compiled_runs + self.closure_runs
        return self.compiled_runs / total if total else 0.0

    @property
    def native_coverage(self) -> float:
        """Fraction of compiled-trace instructions emitted natively."""
        total = self.native_steps + self.generic_steps
        return self.native_steps / total if total else 0.0


class EmulatorSnapshot:
    """A frozen copy of a complete execution context.

    Produced by :meth:`Emulator.snapshot`; consumed (any number of times) by
    :meth:`Emulator.restore`.  Memory is captured copy-on-write, registers,
    flags and host state are shallow-copied, so taking and restoring
    snapshots is O(regions), not O(bytes).

    ``source_memory`` remembers which live :class:`Memory` the snapshot was
    taken from.  As long as the restoring emulator still runs on that same
    object, :meth:`Emulator.restore` can rewind the regions *in place* and
    keep its decode/trace caches warm for every region the execution never
    wrote — the common case for the attack engines, which rewind thousands
    of times per second over read-only code.
    """

    __slots__ = ("state", "memory", "host", "steps", "halted", "source_memory")

    def __init__(self, state: CpuState, memory: Memory, host: HostEnvironment,
                 steps: int, halted: bool,
                 source_memory: Optional[Memory] = None) -> None:
        self.state = state
        self.memory = memory
        self.host = host
        self.steps = steps
        self.halted = halted
        self.source_memory = source_memory


class Emulator:
    """Executes instructions against a :class:`CpuState` and a memory.

    Args:
        memory: the program memory (usually from :func:`repro.binary.load_image`).
        host: host runtime environment; a fresh one is created if omitted.
        max_steps: hard cap on executed instructions (guards against runaway
            obfuscated code and is also the knob attack budgets use).
        decode_cache: override the decode-cache toggle for this instance
            (defaults to the ``REPRO_DECODE_CACHE`` environment knob).
        trace_cache: override the superinstruction-fusion toggle for this
            instance (defaults to the ``REPRO_TRACE_CACHE`` environment knob).
        trace_compile: override the exec-compiled-tier toggle for this
            instance (defaults to the ``REPRO_TRACE_COMPILE`` environment
            knob; has no effect while trace fusion itself is disabled).
        trace_superblock: override the cross-trace-superblock toggle for
            this instance (defaults to the ``REPRO_TRACE_SUPERBLOCK``
            environment knob; has no effect while the exec-compiled tier is
            disabled).
    """

    def __init__(self, memory: Memory, host: Optional[HostEnvironment] = None,
                 max_steps: int = 2_000_000,
                 decode_cache: Optional[bool] = None,
                 trace_cache: Optional[bool] = None,
                 trace_compile: Optional[bool] = None,
                 trace_superblock: Optional[bool] = None) -> None:
        self.memory = memory
        self.state = CpuState()
        self.host = host or HostEnvironment()
        self.host_handlers = self.host.DISPATCH
        self.max_steps = max_steps
        self.steps = 0
        self.halted = False
        #: hooks called as ``hook(emulator, address, instruction)`` before
        #: each instruction executes.
        self.pre_hooks: List[Callable] = []
        self._decode_cache_enabled = (_DECODE_CACHE_DEFAULT
                                      if decode_cache is None else decode_cache)
        self._trace_cache_enabled = (_TRACE_CACHE_DEFAULT
                                     if trace_cache is None else trace_cache)
        self._trace_compile_enabled = self._trace_cache_enabled and (
            _TRACE_COMPILE_DEFAULT if trace_compile is None else trace_compile)
        self._trace_superblock_enabled = self._trace_compile_enabled and (
            _TRACE_SUPERBLOCK_DEFAULT if trace_superblock is None
            else trace_superblock)
        #: closure-tier runs before a trace is promoted to compiled source;
        #: instance-tunable so tests can force immediate promotion
        self.trace_compile_threshold = _TRACE_COMPILE_THRESHOLD
        #: three-tier pipeline counters (builds, promotions, per-tier runs)
        self.jit_stats = JitStats()
        #: address -> (instruction, length, region, generation, handler)
        self._decode_cache: Dict[int, tuple] = {}
        #: entry address -> compiled superinstruction
        self._trace_cache: Dict[int, Trace] = {}
        #: entry address -> run-loop visit count (see _TRACE_HEAT_THRESHOLD)
        self._trace_heat: Dict[int, int] = {}
        self._dispatch: Dict[Mnemonic, Callable[[Instruction], None]] = {
            mnemonic: getattr(self, name) for mnemonic, name in _HANDLER_NAMES.items()
        }

    # -- fetch / decode -----------------------------------------------------
    def fetch(self, address: int) -> tuple:
        """Decode the instruction at ``address``.

        Returns ``(instruction, length)``.

        Raises:
            EmulationError: when the address is unmapped or undecodable.
        """
        entry = self._decode_cache.get(address)
        if entry is not None and entry[2].generation == entry[3]:
            return entry[0], entry[1]
        entry = self._fetch_slow(address)
        return entry[0], entry[1]

    def decode_entry(self, address: int) -> tuple:
        """Decode at ``address`` returning the full cache entry tuple.

        The tuple is ``(instruction, length, region, generation, handler)``;
        used by the trace builder so fusion re-uses cached decodes.
        """
        entry = self._decode_cache.get(address)
        if entry is not None and entry[2].generation == entry[3]:
            return entry
        return self._fetch_slow(address)

    def _fetch_slow(self, address: int) -> tuple:
        """Decode at ``address`` and (re)populate the decode cache."""
        region = self.memory.region_at(address)
        if region is None:
            raise EmulationError(f"fetch from unmapped address {address:#x}")
        offset = address - region.start
        window = min(_MAX_INSTRUCTION_LENGTH, len(region.data) - offset)
        blob = bytes(region.data[offset:offset + window])
        try:
            instruction, length = decode_instruction(blob, 0)
        except DecodeError as exc:
            raise EmulationError(f"undecodable instruction at {address:#x}: {exc}") from exc
        handler = self._dispatch.get(instruction.mnemonic)
        entry = (instruction, length, region, region.generation, handler)
        if self._decode_cache_enabled:
            self._decode_cache[address] = entry
        return entry

    # -- operand access -----------------------------------------------------
    def effective_address(self, operand: Mem) -> int:
        """Compute the effective address of a memory operand."""
        address = operand.disp
        if operand.base is not None:
            address += self.state.regs[operand.base]
        if operand.index is not None:
            address += self.state.regs[operand.index] * operand.scale
        return address & _MASK64

    def read_operand(self, operand) -> int:
        """Read the unsigned value of a register, immediate or memory operand."""
        # operand classes are final frozen dataclasses, so exact type checks
        # are safe and cheaper than isinstance in this per-operand hot path
        cls = type(operand)
        if cls is Reg:
            return self.state.read_reg(operand.reg, operand.size)
        if cls is Imm:
            return operand.value & SIZE_MASKS[operand.size]
        if cls is Mem:
            try:
                return self.memory.read_int(self.effective_address(operand), operand.size)
            except MemoryError_ as exc:
                raise EmulationError(str(exc)) from exc
        raise EmulationError(f"cannot read operand {operand!r}")

    def write_operand(self, operand, value: int) -> None:
        """Write ``value`` to a register or memory operand."""
        cls = type(operand)
        if cls is Reg:
            self.state.write_reg(operand.reg, value, operand.size)
            return
        if cls is Mem:
            try:
                self.memory.write_int(self.effective_address(operand), value, operand.size)
            except MemoryError_ as exc:
                raise EmulationError(str(exc)) from exc
            return
        raise EmulationError(f"cannot write operand {operand!r}")

    # -- stack helpers ------------------------------------------------------
    def push(self, value: int) -> None:
        """Push a 64-bit value on the stack."""
        rsp = (self.state.regs[Register.RSP] - 8) & _MASK64
        self.state.regs[Register.RSP] = rsp
        try:
            self.memory.write_int(rsp, value, 8)
        except MemoryError_ as exc:
            raise EmulationError(str(exc)) from exc

    def pop(self) -> int:
        """Pop a 64-bit value from the stack."""
        rsp = self.state.regs[Register.RSP]
        try:
            value = self.memory.read_int(rsp, 8)
        except MemoryError_ as exc:
            raise EmulationError(str(exc)) from exc
        self.state.regs[Register.RSP] = (rsp + 8) & _MASK64
        return value

    # -- flag computation ---------------------------------------------------
    def _set_logic_flags(self, result: int, size: int) -> None:
        result &= SIZE_MASKS[size]
        state = self.state
        state.cf = 0
        state.of = 0
        state.zf = 1 if result == 0 else 0
        state.sf = 1 if result & SIGN_BITS[size] else 0

    def _set_add_flags(self, a: int, b: int, carry_in: int, size: int) -> int:
        mask = SIZE_MASKS[size]
        half = SIGN_BITS[size]
        a &= mask
        b &= mask
        total = a + b + carry_in
        result = total & mask
        # signed value = unsigned value minus 2*sign_bit when the sign bit is
        # set; avoids two to_signed() calls in the hottest flag helper
        signed_total = (a - ((a & half) << 1)) + (b - ((b & half) << 1)) + carry_in
        state = self.state
        state.cf = 1 if total > mask else 0
        state.of = 1 if (signed_total < -half or signed_total >= half) else 0
        state.zf = 1 if result == 0 else 0
        state.sf = 1 if result & half else 0
        return result

    def _set_sub_flags(self, a: int, b: int, borrow_in: int, size: int) -> int:
        mask = SIZE_MASKS[size]
        half = SIGN_BITS[size]
        a &= mask
        b &= mask
        result = (a - b - borrow_in) & mask
        signed_total = (a - ((a & half) << 1)) - (b - ((b & half) << 1)) - borrow_in
        state = self.state
        state.cf = 1 if a < b + borrow_in else 0
        state.of = 1 if (signed_total < -half or signed_total >= half) else 0
        state.zf = 1 if result == 0 else 0
        state.sf = 1 if result & half else 0
        return result

    # -- execution ----------------------------------------------------------
    def step(self) -> None:
        """Execute a single instruction (or host function)."""
        if self.halted:
            return
        if self.steps >= self.max_steps:
            raise EmulationError(f"instruction budget exhausted ({self.max_steps})")
        address = self.state.rip
        if address == EXIT_ADDRESS:
            self.halted = True
            return
        if is_host_address(address):
            self._run_host_function(address)
            self.steps += 1
            return
        entry = self._decode_cache.get(address)
        if entry is None or entry[2].generation != entry[3]:
            entry = self._fetch_slow(address)
        instruction, length, _, _, handler = entry
        if self.pre_hooks:
            for hook in self.pre_hooks:
                hook(self, address, instruction)
        self.state.rip = (address + length) & _MASK64
        if handler is None:
            raise EmulationError(f"unimplemented instruction {instruction}")
        handler(instruction)
        self.steps += 1

    def run(self, max_steps: Optional[int] = None) -> None:
        """Run until halted, hitting :data:`EXIT_ADDRESS`, or out of budget.

        Args:
            max_steps: optional *per-call* budget of additional instructions
                this call may execute.  The emulator-wide :attr:`max_steps`
                cap stays in force and is never modified by this argument.
        """
        if max_steps is None:
            limit = self.max_steps
        else:
            limit = min(self.max_steps, self.steps + max_steps)
        state = self.state
        cache_get = self._decode_cache.get
        fetch_slow = self._fetch_slow
        host_space_end = _HOST_SPACE_END
        fuse = self._trace_cache_enabled
        superblocks = self._trace_superblock_enabled
        traces = self._trace_cache
        trace_get = traces.get
        heat = self._trace_heat
        heat_get = heat.get
        jit = self.jit_stats
        while not self.halted:
            if self.pre_hooks:
                # slow path: step() fans out to hooks with identical semantics
                if self.steps >= limit:
                    raise EmulationError(f"instruction budget exhausted ({limit})")
                self.step()
                continue
            if self.steps >= limit:
                raise EmulationError(f"instruction budget exhausted ({limit})")
            address = state.rip
            if address <= host_space_end:
                if address == EXIT_ADDRESS:
                    self.halted = True
                    return
                if is_host_address(address):
                    self._run_host_function(address)
                    self.steps += 1
                    continue
                # unmapped low address: fall through so fetch reports the fault
            if fuse:
                trace = trace_get(address)
                if trace is not None and trace.generation != trace.region.generation:
                    # the code under the trace changed (self-modifying or
                    # ROP-materialized): recompile from the current bytes
                    trace = build_trace(self, address)
                    if trace is None:
                        # unfusable right now (single-step will report the
                        # fault); reset the heat so the address can fuse
                        # again once valid code is written over it
                        del traces[address]
                        heat[address] = 0
                    else:
                        traces[address] = trace
                if trace is not None:
                    if self.steps + trace.length <= limit:
                        compiled = trace.compiled
                        if compiled is not None:
                            # steady state: call the exec-compiled function
                            # directly, skipping the promotion bookkeeping
                            jit.compiled_runs += 1
                            compiled()
                            if superblocks:
                                if trace.parts:
                                    jit.superblock_runs += 1
                                    if trace.sb_stale:
                                        self._superblock_demote(trace)
                                if trace.sb_watch:
                                    self._superblock_note(trace, state.rip)
                        else:
                            self._execute_trace(trace)
                        continue
                    # budget nearly exhausted: single-step to the exact cap
                else:
                    count = heat_get(address, 0) + 1
                    if count >= _TRACE_HEAT_THRESHOLD:
                        trace = build_trace(self, address)
                        if trace is None:
                            heat[address] = 0
                        else:
                            traces[address] = trace
                            if self.steps + trace.length <= limit:
                                self._execute_trace(trace)
                                continue
                    else:
                        heat[address] = count
            entry = cache_get(address)
            if entry is None or entry[2].generation != entry[3]:
                entry = fetch_slow(address)
            state.rip = (address + entry[1]) & _MASK64
            handler = entry[4]
            if handler is None:
                raise EmulationError(f"unimplemented instruction {entry[0]}")
            handler(entry[0])
            self.steps += 1

    def _execute_trace(self, trace: Trace) -> None:
        """Execute one fused superinstruction through the fastest ready tier.

        A trace starts on the closure tier; once it has run
        :attr:`trace_compile_threshold` times it is promoted to an
        exec-compiled function (:func:`repro.cpu.codegen.compile_trace`),
        which handles its own step accounting, ``rip`` installation and
        fault repair.  The caller has already verified the region generation
        and that the remaining step budget covers the full trace.  On the
        closure tier, a False-returning op (failed ret guard, mid-trace
        self-modification) ends the fused run with the architectural state
        exactly as single-stepping would have left it; a faulting op repairs
        ``rip``/``steps`` to match single-step semantics before the error
        propagates.
        """
        stats = self.jit_stats
        compiled = trace.compiled
        if compiled is not None:
            stats.compiled_runs += 1
            compiled()
            return
        if self._trace_compile_enabled and not trace.compile_failed:
            trace.runs += 1
            if trace.runs > self.trace_compile_threshold:
                compiled = compile_trace(self, trace)
                if compiled is None:
                    trace.compile_failed = True
                    stats.compile_declined += 1
                else:
                    trace.compiled = compiled
                    # the closure list can never run again (invalidation
                    # rebuilds the whole trace); free it so long-lived
                    # emulators keep one form per trace, not two
                    trace.ops = []
                    trace.posts = []
                    if self._trace_superblock_enabled:
                        # anything but a halt exit can seam into a
                        # successor: start watching this trace's exits
                        trace.sb_tail = trace.steps[-1].kind != "hlt"
                        trace.sb_watch = trace.sb_tail
                    trace.steps = []
                    stats.traces_compiled += 1
                    stats.compiled_runs += 1
                    compiled()
                    if self._trace_superblock_enabled and trace.sb_watch:
                        self._superblock_note(trace, self.state.rip)
                    return
        stats.closure_runs += 1
        executed = 0
        try:
            for op in trace.ops:
                executed += 1
                if not op():
                    self.steps += executed
                    return
        except MemoryError_ as exc:
            self.steps += executed - 1
            self.state.rip = trace.posts[executed - 1]
            raise EmulationError(str(exc)) from exc
        except EmulationError:
            self.steps += executed - 1
            self.state.rip = trace.posts[executed - 1]
            raise
        self.steps += executed
        if trace.final_rip is not None:
            self.state.rip = trace.final_rip

    def _superblock_demote(self, trace: Trace) -> None:
        """Drop a composite whose interior seam went permanently stale.

        A seam guard failing its *generation* check means that
        constituent's code was rewritten, so the composite is degraded to
        head-only dispatch for good.  Reinstall the head constituent over
        the cache slot and re-arm its watch, so the run loop re-dispatches
        the live per-entry traces and the head re-learns the (rebuilt)
        chain, instead of running a dead seam forever.
        """
        head = trace.parts[0]
        head.sb_watch = head.sb_tail
        head.sb_counts = None
        self._trace_cache[trace.entry] = head
        trace.sb_watch = False
        trace.sb_counts = None

    def _superblock_note(self, trace: Trace, exit_rip: int) -> None:
        """Track a compiled trace's exits; link hot tail-to-head chains.

        Called after each run of a watched compiled trace with the address
        execution continued at.  Once the same exit has repeatedly landed
        on another hot compiled trace's entry, the chain is linked into a
        superblock (:func:`repro.cpu.trace.compose_traces`) installed over
        this trace's cache slot — subsequent runs dispatch the whole chain
        seam-to-seam without returning to the run loop.  Superblocks are
        themselves watched, so chains keep growing until
        :data:`~repro.cpu.trace.SUPERBLOCK_CAP` or an unlinkable tail.
        """
        if exit_rip <= _HOST_SPACE_END:
            # exits into the host/exit range can never link
            trace.sb_watch = False
            trace.sb_counts = None
            return
        counts = trace.sb_counts
        if counts is None:
            counts = trace.sb_counts = {}
        count = counts.get(exit_rip, 0) + 1
        if count < _SUPERBLOCK_THRESHOLD:
            if exit_rip not in counts and len(counts) >= _SUPERBLOCK_FANOUT:
                # megamorphic exit: stop paying the tracking cost
                trace.sb_watch = False
                trace.sb_counts = None
                return
            counts[exit_rip] = count
            return
        successor = self._trace_cache.get(exit_rip)
        if successor is None or successor.compiled is None:
            if successor is not None and successor.compile_failed:
                # the successor lives on the closure tier for good; a seam
                # can only dispatch compiled functions
                trace.sb_watch = False
                trace.sb_counts = None
            else:
                # not hot enough yet: retry once the successor is
                # compiled, but only a bounded number of times — an exit
                # that never yields a compiled trace must not keep the
                # watch (and its per-dispatch bookkeeping) alive forever.
                # The None key can never collide with an exit address.
                deferrals = counts.get(None, 0) + 1
                if deferrals >= _SUPERBLOCK_FANOUT:
                    trace.sb_watch = False
                    trace.sb_counts = None
                else:
                    counts[None] = deferrals
                    counts[exit_rip] = 0
            return
        if trace.length + successor.length > _SUPERBLOCK_CAP:
            trace.sb_watch = False
            trace.sb_counts = None
            return
        # link greedily: after the observed seam, follow each successor's
        # static fall-through (a capped trace's final_rip landing on the
        # next compiled trace) so a whole ROP chain links in one step
        parts = [trace, successor]
        total = trace.length + successor.length
        current = successor
        while True:
            tail = current.parts[-1] if current.parts else current
            if tail.final_rip is None:
                break
            nxt = self._trace_cache.get(tail.final_rip)
            if nxt is None or nxt.compiled is None \
                    or total + nxt.length > _SUPERBLOCK_CAP:
                break
            parts.append(nxt)
            total += nxt.length
            current = nxt
        fused = compose_traces(self, parts)
        self._trace_cache[trace.entry] = fused
        trace.sb_watch = False
        trace.sb_counts = None
        self.jit_stats.superblocks_built += 1

    # -- snapshots ----------------------------------------------------------
    def snapshot(self) -> EmulatorSnapshot:
        """Capture the complete execution context copy-on-write.

        The returned snapshot is immutable from the emulator's point of view
        and may be restored any number of times (each :meth:`restore` forks
        it again), which is what lets the DSE engine rewind to the attacked
        function's entry in O(1) per explored path.
        """
        return EmulatorSnapshot(self.state.fork(), self.memory.snapshot(),
                                self.host.fork(), self.steps, self.halted,
                                source_memory=self.memory)

    def restore(self, snap: EmulatorSnapshot) -> None:
        """Rewind this emulator to ``snap``.

        Registers, flags, memory and host state all revert to their values at
        snapshot time.  When the emulator still runs on the memory object the
        snapshot was taken from, regions rewind in place: untouched regions
        are left alone (their cached decodes and traces stay valid) and
        written regions re-share the snapshot's backing with a generation
        bump, which invalidates exactly the cache entries that went stale.
        Otherwise the memory is replaced wholesale and the caches dropped,
        because their entries reference the replaced memory's regions.
        """
        self.host = snap.host.fork()
        self.steps = snap.steps
        self.halted = snap.halted
        if self.memory is snap.source_memory \
                and self.memory.restore_from(snap.memory):
            # keep the CpuState (and its regs dict) identity: compiled trace
            # closures bind them directly
            self.state.restore_from(snap.state)
            return
        self.state = snap.state.fork()
        self.memory = snap.memory.snapshot()
        self._decode_cache.clear()
        self._trace_cache.clear()
        self._trace_heat.clear()

    def _run_host_function(self, address: int) -> None:
        name = self.host_handlers.get(address)
        if name is None:
            raise EmulationError(f"call to unknown host function at {address:#x}")
        # the table holds method names so snapshot restores can swap the host
        # without rebuilding a bound-handler dict, and overrides on host
        # subclasses resolve normally
        result = getattr(self.host, name)(self)
        self.state.write_reg(Register.RAX, result & _MASK64)
        if self.halted:
            return
        # behave like a native function: return to the caller
        self.state.rip = self.pop()

    # -- instruction handlers ------------------------------------------------
    def _op_nop(self, instruction: Instruction) -> None:
        return

    def _op_hlt(self, instruction: Instruction) -> None:
        self.halted = True

    def _op_mov(self, instruction: Instruction) -> None:
        ops = instruction.operands
        self.write_operand(ops[0], self.read_operand(ops[1]))

    def _op_movsx(self, instruction: Instruction) -> None:
        ops = instruction.operands
        src = ops[1]
        value = to_signed(self.read_operand(src), getattr(src, "size", 8))
        self.write_operand(ops[0], value & _MASK64)

    def _op_lea(self, instruction: Instruction) -> None:
        ops = instruction.operands
        if not isinstance(ops[1], Mem):
            raise EmulationError("lea requires a memory source")
        self.write_operand(ops[0], self.effective_address(ops[1]))

    def _op_xchg(self, instruction: Instruction) -> None:
        ops = instruction.operands
        a, b = self.read_operand(ops[0]), self.read_operand(ops[1])
        self.write_operand(ops[0], b)
        self.write_operand(ops[1], a)

    def _op_push(self, instruction: Instruction) -> None:
        self.push(self.read_operand(instruction.operands[0]))

    def _op_pop(self, instruction: Instruction) -> None:
        # ROP dispatch is pop/ret heavy; inline the pop to skip a call frame
        operand = instruction.operands[0]
        state = self.state
        rsp = state.regs[Register.RSP]
        try:
            value = self.memory.read_int(rsp, 8)
        except MemoryError_ as exc:
            raise EmulationError(str(exc)) from exc
        state.regs[Register.RSP] = (rsp + 8) & _MASK64
        if type(operand) is Reg and operand.size == 8:
            state.regs[operand.reg] = value
        else:
            self.write_operand(operand, value)

    def _op_add(self, instruction: Instruction) -> None:
        ops = instruction.operands
        size = getattr(ops[0], "size", 8)
        result = self._set_add_flags(self.read_operand(ops[0]),
                                     self.read_operand(ops[1]), 0, size)
        self.write_operand(ops[0], result)

    def _op_adc(self, instruction: Instruction) -> None:
        ops = instruction.operands
        size = getattr(ops[0], "size", 8)
        carry = self.state.cf
        result = self._set_add_flags(self.read_operand(ops[0]),
                                     self.read_operand(ops[1]), carry, size)
        self.write_operand(ops[0], result)

    def _op_sub(self, instruction: Instruction) -> None:
        ops = instruction.operands
        size = getattr(ops[0], "size", 8)
        result = self._set_sub_flags(self.read_operand(ops[0]),
                                     self.read_operand(ops[1]), 0, size)
        self.write_operand(ops[0], result)

    def _op_sbb(self, instruction: Instruction) -> None:
        ops = instruction.operands
        size = getattr(ops[0], "size", 8)
        borrow = self.state.cf
        result = self._set_sub_flags(self.read_operand(ops[0]),
                                     self.read_operand(ops[1]), borrow, size)
        self.write_operand(ops[0], result)

    def _op_cmp(self, instruction: Instruction) -> None:
        ops = instruction.operands
        size = getattr(ops[0], "size", 8)
        self._set_sub_flags(self.read_operand(ops[0]), self.read_operand(ops[1]), 0, size)

    def _op_test(self, instruction: Instruction) -> None:
        ops = instruction.operands
        size = getattr(ops[0], "size", 8)
        self._set_logic_flags(self.read_operand(ops[0]) & self.read_operand(ops[1]), size)

    def _op_and(self, instruction: Instruction) -> None:
        ops = instruction.operands
        size = getattr(ops[0], "size", 8)
        result = self.read_operand(ops[0]) & self.read_operand(ops[1])
        self._set_logic_flags(result, size)
        self.write_operand(ops[0], result)

    def _op_or(self, instruction: Instruction) -> None:
        ops = instruction.operands
        size = getattr(ops[0], "size", 8)
        result = self.read_operand(ops[0]) | self.read_operand(ops[1])
        self._set_logic_flags(result, size)
        self.write_operand(ops[0], result)

    def _op_xor(self, instruction: Instruction) -> None:
        ops = instruction.operands
        size = getattr(ops[0], "size", 8)
        result = self.read_operand(ops[0]) ^ self.read_operand(ops[1])
        self._set_logic_flags(result, size)
        self.write_operand(ops[0], result)

    def _op_neg(self, instruction: Instruction) -> None:
        ops = instruction.operands
        size = getattr(ops[0], "size", 8)
        value = self.read_operand(ops[0])
        result = self._set_sub_flags(0, value, 0, size)
        self.state.cf = 1 if value != 0 else 0
        self.write_operand(ops[0], result)

    def _op_not(self, instruction: Instruction) -> None:
        ops = instruction.operands
        size = getattr(ops[0], "size", 8)
        mask = SIZE_MASKS[size]
        self.write_operand(ops[0], (~self.read_operand(ops[0])) & mask)

    def _shift(self, instruction: Instruction, mnemonic: Mnemonic) -> None:
        ops = instruction.operands
        size = getattr(ops[0], "size", 8)
        bits = BIT_WIDTHS[size]
        mask = SIZE_MASKS[size]
        value = self.read_operand(ops[0])
        # x86 masks the count by the operand width: 6 bits for 64-bit
        # operands, 5 bits for everything narrower
        amount = self.read_operand(ops[1]) & (0x3F if size == 8 else 0x1F)
        if amount == 0:
            # x86: a masked count of zero modifies neither flags nor the
            # destination
            return
        if mnemonic is Mnemonic.SHL:
            result = (value << amount) & mask
            carry = (value >> (bits - amount)) & 1 if amount <= bits else 0
            # OF is defined only for 1-bit shifts (CF ^ MSB(result)); this
            # emulator fixes it at 0 for wider counts in every tier
            overflow = carry ^ ((result >> (bits - 1)) & 1) if amount == 1 else 0
        elif mnemonic is Mnemonic.SHR:
            result = (value & mask) >> amount
            carry = (value >> (amount - 1)) & 1
            # 1-bit SHR: OF = MSB of the original operand
            overflow = (value >> (bits - 1)) & 1 if amount == 1 else 0
        else:
            signed = to_signed(value, size)
            result = (signed >> amount) & mask
            # shift the *signed* value for the carry too, so counts past the
            # operand width shift out copies of the sign bit like x86 does
            carry = (signed >> (amount - 1)) & 1
            overflow = 0  # SAR: the sign never changes
        state = self.state
        state.cf = carry
        state.of = overflow
        state.zf = 1 if result == 0 else 0
        state.sf = 1 if result & SIGN_BITS[size] else 0
        self.write_operand(ops[0], result)

    def _op_shl(self, instruction: Instruction) -> None:
        self._shift(instruction, Mnemonic.SHL)

    def _op_shr(self, instruction: Instruction) -> None:
        self._shift(instruction, Mnemonic.SHR)

    def _op_sar(self, instruction: Instruction) -> None:
        self._shift(instruction, Mnemonic.SAR)

    def _op_imul(self, instruction: Instruction) -> None:
        ops = instruction.operands
        size = getattr(ops[0], "size", 8)
        bits = BIT_WIDTHS[size]
        a = to_signed(self.read_operand(ops[0]), size)
        b = to_signed(self.read_operand(ops[1]), size)
        full = a * b
        result = full & SIZE_MASKS[size]
        overflow = not (-(1 << (bits - 1)) <= full < (1 << (bits - 1)))
        self._set_logic_flags(result, size)
        state = self.state
        state.cf = 1 if overflow else 0
        state.of = 1 if overflow else 0
        self.write_operand(ops[0], result)

    def _op_cqo(self, instruction: Instruction) -> None:
        rax = to_signed(self.state.regs[Register.RAX])
        self.state.regs[Register.RDX] = _MASK64 if rax < 0 else 0

    def _op_idiv(self, instruction: Instruction) -> None:
        state = self.state
        divisor = to_signed(self.read_operand(instruction.operands[0]))
        if divisor == 0:
            raise EmulationError("integer division by zero")
        dividend = to_signed(state.regs[Register.RAX])
        quotient = int(dividend / divisor)
        remainder = dividend - quotient * divisor
        state.regs[Register.RAX] = quotient & _MASK64
        state.regs[Register.RDX] = remainder & _MASK64

    def _op_inc(self, instruction: Instruction) -> None:
        ops = instruction.operands
        size = getattr(ops[0], "size", 8)
        state = self.state
        saved_cf = state.cf
        result = self._set_add_flags(self.read_operand(ops[0]), 1, 0, size)
        state.cf = saved_cf
        self.write_operand(ops[0], result)

    def _op_dec(self, instruction: Instruction) -> None:
        ops = instruction.operands
        size = getattr(ops[0], "size", 8)
        state = self.state
        saved_cf = state.cf
        result = self._set_sub_flags(self.read_operand(ops[0]), 1, 0, size)
        state.cf = saved_cf
        self.write_operand(ops[0], result)

    def _op_cmov(self, instruction: Instruction) -> None:
        if self.state.condition(instruction.condition):
            ops = instruction.operands
            self.write_operand(ops[0], self.read_operand(ops[1]))

    def _op_set(self, instruction: Instruction) -> None:
        value = 1 if self.state.condition(instruction.condition) else 0
        self.write_operand(instruction.operands[0], value)

    def _op_jmp(self, instruction: Instruction) -> None:
        self.state.rip = self.read_operand(instruction.operands[0])

    def _op_jcc(self, instruction: Instruction) -> None:
        if self.state.condition(instruction.condition):
            self.state.rip = self.read_operand(instruction.operands[0])

    def _op_call(self, instruction: Instruction) -> None:
        state = self.state
        target = self.read_operand(instruction.operands[0])
        self.push(state.rip)
        state.rip = target

    def _op_ret(self, instruction: Instruction) -> None:
        # the single hottest instruction in a ROP chain: inline pop entirely
        state = self.state
        rsp = state.regs[Register.RSP]
        try:
            state.rip = self.memory.read_int(rsp, 8)
        except MemoryError_ as exc:
            raise EmulationError(str(exc)) from exc
        state.regs[Register.RSP] = (rsp + 8) & _MASK64

    def _op_leave(self, instruction: Instruction) -> None:
        state = self.state
        state.regs[Register.RSP] = state.regs[Register.RBP]
        state.write_reg(Register.RBP, self.pop())


#: Mnemonic -> handler method name; bound per instance into the dispatch
#: table.  Derived from the semantics registry so dispatch and the declared
#: per-mnemonic contracts cannot drift; built once at import time, so the
#: step loop still indexes a plain dict.
_HANDLER_NAMES: Dict[Mnemonic, str] = _semantics.handler_table()

#: The handler tier is the reference interpreter: it covers every mnemonic
#: and declines nothing.  Registration validates the split at import and
#: feeds the static contract checker (``python -m repro.analysis.lint``).
_semantics.register_tier(
    "handlers", __name__,
    covered={mnemonic: name for mnemonic, name in _HANDLER_NAMES.items()},
    declined=(), flag_style="attributes")


def call_function(program: LoadedProgram, name_or_address, args: Sequence[int] = (),
                  host: Optional[HostEnvironment] = None,
                  max_steps: int = 2_000_000) -> tuple:
    """Call a function in a loaded program and run it to completion.

    Args:
        program: the loaded program.
        name_or_address: function symbol name or absolute entry address.
        args: up to six integer arguments passed in registers.
        host: optional pre-existing host environment (for heap persistence).
        max_steps: instruction budget.

    Returns:
        ``(return_value, emulator)`` — the emulator is returned so callers can
        inspect output, probes, traces or final memory.
    """
    if isinstance(name_or_address, str):
        address = program.image.function(name_or_address).address
    else:
        address = int(name_or_address)
    emulator = Emulator(program.memory, host=host, max_steps=max_steps)
    emulator.state.write_reg(Register.RSP, program.stack_top)
    emulator.state.write_reg(Register.RBP, program.stack_top)
    for reg, value in zip(ARG_REGISTERS, args):
        emulator.state.write_reg(reg, value & _MASK64)
    emulator.push(EXIT_ADDRESS)
    emulator.state.rip = address
    emulator.run()
    return emulator.state.read_reg(Register.RAX), emulator
