"""Concrete emulator for the reproduction ISA.

The emulator executes encoded instructions directly from memory, which means
ROP chains run exactly as the paper describes them: ``ret`` pops the next
gadget address from the stack and execution continues wherever ``rsp`` points.
The emulator also services host runtime calls and drives the tracing hooks the
attack engines (DSE, TDS, ROPMEMU) build on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.binary.loader import LoadedProgram
from repro.cpu.host import EXIT_ADDRESS, HostEnvironment, is_host_address
from repro.cpu.state import CpuState, EmulationError, to_signed
from repro.isa.encoding import DecodeError, decode_instruction
from repro.isa.flags import Flag
from repro.isa.instructions import Instruction, Mnemonic
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import ARG_REGISTERS, Register
from repro.memory import Memory, MemoryError_

#: Largest possible encoded instruction, used to bound fetch windows.
_MAX_INSTRUCTION_LENGTH = 64

#: 64-bit mask.
_MASK64 = (1 << 64) - 1


class Emulator:
    """Executes instructions against a :class:`CpuState` and a memory.

    Args:
        memory: the program memory (usually from :func:`repro.binary.load_image`).
        host: host runtime environment; a fresh one is created if omitted.
        max_steps: hard cap on executed instructions (guards against runaway
            obfuscated code and is also the knob attack budgets use).
    """

    def __init__(self, memory: Memory, host: Optional[HostEnvironment] = None,
                 max_steps: int = 2_000_000) -> None:
        self.memory = memory
        self.state = CpuState()
        self.host = host or HostEnvironment()
        self.host_handlers = self.host.handlers()
        self.max_steps = max_steps
        self.steps = 0
        self.halted = False
        #: hooks called as ``hook(emulator, address, instruction)`` before
        #: each instruction executes.
        self.pre_hooks: List[Callable] = []

    # -- fetch / decode -----------------------------------------------------
    def fetch(self, address: int) -> tuple:
        """Decode the instruction at ``address``.

        Returns ``(instruction, length)``.

        Raises:
            EmulationError: when the address is unmapped or undecodable.
        """
        region = self.memory.region_at(address)
        if region is None:
            raise EmulationError(f"fetch from unmapped address {address:#x}")
        window = min(_MAX_INSTRUCTION_LENGTH, region.end - address)
        blob = self.memory.read(address, window)
        try:
            return decode_instruction(blob, 0)
        except DecodeError as exc:
            raise EmulationError(f"undecodable instruction at {address:#x}: {exc}") from exc

    # -- operand access -----------------------------------------------------
    def effective_address(self, operand: Mem) -> int:
        """Compute the effective address of a memory operand."""
        address = operand.disp
        if operand.base is not None:
            address += self.state.read_reg(operand.base)
        if operand.index is not None:
            address += self.state.read_reg(operand.index) * operand.scale
        return address & _MASK64

    def read_operand(self, operand) -> int:
        """Read the unsigned value of a register, immediate or memory operand."""
        if isinstance(operand, Reg):
            return self.state.read_reg(operand.reg, operand.size)
        if isinstance(operand, Imm):
            return operand.value & ((1 << (8 * operand.size)) - 1)
        if isinstance(operand, Mem):
            try:
                return self.memory.read_int(self.effective_address(operand), operand.size)
            except MemoryError_ as exc:
                raise EmulationError(str(exc)) from exc
        raise EmulationError(f"cannot read operand {operand!r}")

    def write_operand(self, operand, value: int) -> None:
        """Write ``value`` to a register or memory operand."""
        if isinstance(operand, Reg):
            self.state.write_reg(operand.reg, value, operand.size)
            return
        if isinstance(operand, Mem):
            try:
                self.memory.write_int(self.effective_address(operand), value, operand.size)
            except MemoryError_ as exc:
                raise EmulationError(str(exc)) from exc
            return
        raise EmulationError(f"cannot write operand {operand!r}")

    # -- stack helpers ------------------------------------------------------
    def push(self, value: int) -> None:
        """Push a 64-bit value on the stack."""
        rsp = (self.state.read_reg(Register.RSP) - 8) & _MASK64
        self.state.write_reg(Register.RSP, rsp)
        try:
            self.memory.write_int(rsp, value, 8)
        except MemoryError_ as exc:
            raise EmulationError(str(exc)) from exc

    def pop(self) -> int:
        """Pop a 64-bit value from the stack."""
        rsp = self.state.read_reg(Register.RSP)
        try:
            value = self.memory.read_int(rsp, 8)
        except MemoryError_ as exc:
            raise EmulationError(str(exc)) from exc
        self.state.write_reg(Register.RSP, (rsp + 8) & _MASK64)
        return value

    # -- flag computation ---------------------------------------------------
    def _set_logic_flags(self, result: int, size: int) -> None:
        bits = 8 * size
        result &= (1 << bits) - 1
        self.state.write_flag(Flag.CF, 0)
        self.state.write_flag(Flag.OF, 0)
        self.state.write_flag(Flag.ZF, result == 0)
        self.state.write_flag(Flag.SF, (result >> (bits - 1)) & 1)

    def _set_add_flags(self, a: int, b: int, carry_in: int, size: int) -> int:
        bits = 8 * size
        mask = (1 << bits) - 1
        total = (a & mask) + (b & mask) + carry_in
        result = total & mask
        sa, sb = to_signed(a, size), to_signed(b, size)
        signed_total = sa + sb + carry_in
        self.state.write_flag(Flag.CF, total > mask)
        self.state.write_flag(Flag.OF,
                              signed_total < -(1 << (bits - 1)) or signed_total >= (1 << (bits - 1)))
        self.state.write_flag(Flag.ZF, result == 0)
        self.state.write_flag(Flag.SF, (result >> (bits - 1)) & 1)
        return result

    def _set_sub_flags(self, a: int, b: int, borrow_in: int, size: int) -> int:
        bits = 8 * size
        mask = (1 << bits) - 1
        a &= mask
        b &= mask
        result = (a - b - borrow_in) & mask
        sa, sb = to_signed(a, size), to_signed(b, size)
        signed_total = sa - sb - borrow_in
        self.state.write_flag(Flag.CF, a < b + borrow_in)
        self.state.write_flag(Flag.OF,
                              signed_total < -(1 << (bits - 1)) or signed_total >= (1 << (bits - 1)))
        self.state.write_flag(Flag.ZF, result == 0)
        self.state.write_flag(Flag.SF, (result >> (bits - 1)) & 1)
        return result

    # -- execution ----------------------------------------------------------
    def step(self) -> None:
        """Execute a single instruction (or host function)."""
        if self.halted:
            return
        if self.steps >= self.max_steps:
            raise EmulationError(f"instruction budget exhausted ({self.max_steps})")
        address = self.state.rip
        if address == EXIT_ADDRESS:
            self.halted = True
            return
        if is_host_address(address):
            self._run_host_function(address)
            self.steps += 1
            return
        instruction, length = self.fetch(address)
        for hook in self.pre_hooks:
            hook(self, address, instruction)
        self.state.rip = (address + length) & _MASK64
        self._execute(instruction)
        self.steps += 1

    def run(self, max_steps: Optional[int] = None) -> None:
        """Run until halted, hitting :data:`EXIT_ADDRESS`, or out of budget."""
        if max_steps is not None:
            self.max_steps = max_steps
        while not self.halted:
            self.step()

    def _run_host_function(self, address: int) -> None:
        handler = self.host_handlers.get(address)
        if handler is None:
            raise EmulationError(f"call to unknown host function at {address:#x}")
        result = handler(self)
        self.state.write_reg(Register.RAX, result & _MASK64)
        if self.halted:
            return
        # behave like a native function: return to the caller
        self.state.rip = self.pop()

    def _execute(self, instruction: Instruction) -> None:
        mnemonic = instruction.mnemonic
        ops = instruction.operands
        state = self.state

        if mnemonic is Mnemonic.NOP:
            return
        if mnemonic is Mnemonic.HLT:
            self.halted = True
            return
        if mnemonic is Mnemonic.MOV:
            self.write_operand(ops[0], self.read_operand(ops[1]))
            return
        if mnemonic is Mnemonic.MOVZX:
            self.write_operand(ops[0], self.read_operand(ops[1]))
            return
        if mnemonic is Mnemonic.MOVSX:
            src = ops[1]
            value = to_signed(self.read_operand(src), getattr(src, "size", 8))
            self.write_operand(ops[0], value & _MASK64)
            return
        if mnemonic is Mnemonic.LEA:
            if not isinstance(ops[1], Mem):
                raise EmulationError("lea requires a memory source")
            self.write_operand(ops[0], self.effective_address(ops[1]))
            return
        if mnemonic is Mnemonic.XCHG:
            a, b = self.read_operand(ops[0]), self.read_operand(ops[1])
            self.write_operand(ops[0], b)
            self.write_operand(ops[1], a)
            return
        if mnemonic is Mnemonic.PUSH:
            self.push(self.read_operand(ops[0]))
            return
        if mnemonic is Mnemonic.POP:
            self.write_operand(ops[0], self.pop())
            return

        if mnemonic in (Mnemonic.ADD, Mnemonic.ADC):
            size = getattr(ops[0], "size", 8)
            carry = state.read_flag(Flag.CF) if mnemonic is Mnemonic.ADC else 0
            result = self._set_add_flags(self.read_operand(ops[0]),
                                         self.read_operand(ops[1]), carry, size)
            self.write_operand(ops[0], result)
            return
        if mnemonic in (Mnemonic.SUB, Mnemonic.SBB):
            size = getattr(ops[0], "size", 8)
            borrow = state.read_flag(Flag.CF) if mnemonic is Mnemonic.SBB else 0
            result = self._set_sub_flags(self.read_operand(ops[0]),
                                         self.read_operand(ops[1]), borrow, size)
            self.write_operand(ops[0], result)
            return
        if mnemonic is Mnemonic.CMP:
            size = getattr(ops[0], "size", 8)
            self._set_sub_flags(self.read_operand(ops[0]), self.read_operand(ops[1]), 0, size)
            return
        if mnemonic is Mnemonic.TEST:
            size = getattr(ops[0], "size", 8)
            self._set_logic_flags(self.read_operand(ops[0]) & self.read_operand(ops[1]), size)
            return
        if mnemonic in (Mnemonic.AND, Mnemonic.OR, Mnemonic.XOR):
            size = getattr(ops[0], "size", 8)
            a, b = self.read_operand(ops[0]), self.read_operand(ops[1])
            result = {Mnemonic.AND: a & b, Mnemonic.OR: a | b, Mnemonic.XOR: a ^ b}[mnemonic]
            self._set_logic_flags(result, size)
            self.write_operand(ops[0], result)
            return
        if mnemonic is Mnemonic.NEG:
            size = getattr(ops[0], "size", 8)
            value = self.read_operand(ops[0])
            result = self._set_sub_flags(0, value, 0, size)
            self.state.write_flag(Flag.CF, value != 0)
            self.write_operand(ops[0], result)
            return
        if mnemonic is Mnemonic.NOT:
            size = getattr(ops[0], "size", 8)
            mask = (1 << (8 * size)) - 1
            self.write_operand(ops[0], (~self.read_operand(ops[0])) & mask)
            return
        if mnemonic in (Mnemonic.SHL, Mnemonic.SHR, Mnemonic.SAR):
            size = getattr(ops[0], "size", 8)
            bits = 8 * size
            mask = (1 << bits) - 1
            value = self.read_operand(ops[0])
            amount = self.read_operand(ops[1]) & 0x3F
            if mnemonic is Mnemonic.SHL:
                result = (value << amount) & mask
                carry = (value >> (bits - amount)) & 1 if 0 < amount <= bits else 0
            elif mnemonic is Mnemonic.SHR:
                result = (value & mask) >> amount
                carry = (value >> (amount - 1)) & 1 if amount else 0
            else:
                result = (to_signed(value, size) >> amount) & mask
                carry = (value >> (amount - 1)) & 1 if amount else 0
            self._set_logic_flags(result, size)
            self.state.write_flag(Flag.CF, carry)
            self.write_operand(ops[0], result)
            return
        if mnemonic is Mnemonic.IMUL:
            size = getattr(ops[0], "size", 8)
            bits = 8 * size
            a = to_signed(self.read_operand(ops[0]), size)
            b = to_signed(self.read_operand(ops[1]), size)
            full = a * b
            result = full & ((1 << bits) - 1)
            overflow = not (-(1 << (bits - 1)) <= full < (1 << (bits - 1)))
            self._set_logic_flags(result, size)
            self.state.write_flag(Flag.CF, overflow)
            self.state.write_flag(Flag.OF, overflow)
            self.write_operand(ops[0], result)
            return
        if mnemonic is Mnemonic.CQO:
            rax = to_signed(state.read_reg(Register.RAX))
            state.write_reg(Register.RDX, _MASK64 if rax < 0 else 0)
            return
        if mnemonic is Mnemonic.IDIV:
            divisor = to_signed(self.read_operand(ops[0]))
            if divisor == 0:
                raise EmulationError("integer division by zero")
            dividend = to_signed(state.read_reg(Register.RAX))
            quotient = int(dividend / divisor)
            remainder = dividend - quotient * divisor
            state.write_reg(Register.RAX, quotient & _MASK64)
            state.write_reg(Register.RDX, remainder & _MASK64)
            return
        if mnemonic in (Mnemonic.INC, Mnemonic.DEC):
            size = getattr(ops[0], "size", 8)
            saved_cf = state.read_flag(Flag.CF)
            delta = 1
            if mnemonic is Mnemonic.INC:
                result = self._set_add_flags(self.read_operand(ops[0]), delta, 0, size)
            else:
                result = self._set_sub_flags(self.read_operand(ops[0]), delta, 0, size)
            state.write_flag(Flag.CF, saved_cf)
            self.write_operand(ops[0], result)
            return
        if mnemonic is Mnemonic.CMOV:
            if state.condition(instruction.condition):
                self.write_operand(ops[0], self.read_operand(ops[1]))
            return
        if mnemonic is Mnemonic.SET:
            self.write_operand(ops[0], 1 if state.condition(instruction.condition) else 0)
            return

        if mnemonic is Mnemonic.JMP:
            state.rip = self.read_operand(ops[0])
            return
        if mnemonic is Mnemonic.JCC:
            if state.condition(instruction.condition):
                state.rip = self.read_operand(ops[0])
            return
        if mnemonic is Mnemonic.CALL:
            target = self.read_operand(ops[0])
            self.push(state.rip)
            state.rip = target
            return
        if mnemonic is Mnemonic.RET:
            state.rip = self.pop()
            return
        if mnemonic is Mnemonic.LEAVE:
            state.write_reg(Register.RSP, state.read_reg(Register.RBP))
            state.write_reg(Register.RBP, self.pop())
            return

        raise EmulationError(f"unimplemented instruction {instruction}")


def call_function(program: LoadedProgram, name_or_address, args: Sequence[int] = (),
                  host: Optional[HostEnvironment] = None,
                  max_steps: int = 2_000_000) -> tuple:
    """Call a function in a loaded program and run it to completion.

    Args:
        program: the loaded program.
        name_or_address: function symbol name or absolute entry address.
        args: up to six integer arguments passed in registers.
        host: optional pre-existing host environment (for heap persistence).
        max_steps: instruction budget.

    Returns:
        ``(return_value, emulator)`` — the emulator is returned so callers can
        inspect output, probes, traces or final memory.
    """
    if isinstance(name_or_address, str):
        address = program.image.function(name_or_address).address
    else:
        address = int(name_or_address)
    emulator = Emulator(program.memory, host=host, max_steps=max_steps)
    emulator.state.write_reg(Register.RSP, program.stack_top)
    emulator.state.write_reg(Register.RBP, program.stack_top)
    for reg, value in zip(ARG_REGISTERS, args):
        emulator.state.write_reg(reg, value & _MASK64)
    emulator.push(EXIT_ADDRESS)
    emulator.state.rip = address
    emulator.run()
    return emulator.state.read_reg(Register.RAX), emulator
