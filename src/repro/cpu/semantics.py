"""Declarative per-mnemonic semantic contracts shared by every tier.

The emulator executes the same 35-mnemonic ISA through up to four
independently implemented tiers — the single-step handler dispatch
(:mod:`repro.cpu.emulator`), the closure-tier trace fusers
(:mod:`repro.cpu.trace`), the exec-compiled source emitters
(:mod:`repro.cpu.codegen`) and the DSE symbolic mirror
(:mod:`repro.attacks.shadow`).  PR 5 demonstrated the failure mode of that
redundancy: the x86 shift-flag corner cases drifted between tiers and were
only caught dynamically, by hypothesis differentials, after the fact.

This module is the single declarative statement of what each mnemonic does
to the architectural flag slots, which operand counts it accepts, and which
special-case rules every implementation must honour (width-masked shift
counts, the masked-zero-count no-op, OF defined only for 1-bit shifts, the
sub-register width merge).  Each tier *registers* against it at import time
(:func:`register_tier`) with an explicit covered/declined split, and the
static checker (``python -m repro.analysis.lint``) verifies — without
executing anything — that the flag slots a tier's code actually assigns
match the contract, and that the zero-count guard exists wherever a tier
claims shift coverage.  A future native tier registers the same way and
inherits the same gate.

Everything here is plain data built once at import; the hot loops never
consult the registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple, Union

from repro.isa.instructions import Mnemonic

#: Architectural flag slots every tier models (``CpuState.cf`` …).
FLAGS: Tuple[str, ...] = ("cf", "of", "zf", "sf")

#: Special-case rule identifiers used in :attr:`MnemonicSemantics.specials`.
#: ``zero_count_noop`` — a width-masked shift count of 0 modifies neither
#: flags nor destination (the PR 5 bug class); the checker statically
#: requires a ``count == 0`` early-out in every tier covering a shift.
#: ``count_masked`` — shift counts are masked to 6 bits for 64-bit operands
#: and 5 bits otherwise *before* the zero test.
#: ``of_one_bit_only`` — OF is architecturally defined only for 1-bit
#: shifts (SHL: CF ^ MSB(result); SHR: MSB(original); SAR: 0); wider
#: counts pin it to 0 in every tier.
#: ``width_merge`` — sub-64-bit register destinations merge into the full
#: register per ``CpuState.write_reg`` (32-bit writes zero the upper half).
#: ``zf_sf_pinned`` — hardware leaves ZF/SF undefined here; the
#: reproduction pins them from the result identically in every tier.
SPECIAL_RULES: Tuple[str, ...] = ("zero_count_noop", "count_masked",
                                  "of_one_bit_only", "width_merge",
                                  "zf_sf_pinned")


@dataclass(frozen=True)
class MnemonicSemantics:
    """The cross-tier contract for one mnemonic."""

    mnemonic: Mnemonic
    #: ``Emulator`` handler method name — the dispatch table is derived
    #: from this field (:func:`handler_table`), so registry and dispatch
    #: cannot drift.
    handler: str
    #: Operand counts the decoder can deliver for this mnemonic.
    operand_counts: Tuple[int, ...]
    #: Flag slots the instruction defines (a tier implementing it must
    #: assign exactly these, modulo ``flags_preserved``).
    flags_written: FrozenSet[str]
    #: Flag slots the instruction's behaviour depends on.
    flags_read: FrozenSet[str]
    #: Flag slots the instruction leaves untouched but an implementation
    #: may legitimately assign in order to restore them (INC/DEC save and
    #: restore CF around their shared add/sub flag helpers).
    flags_preserved: FrozenSet[str]
    #: Special-case rules from :data:`SPECIAL_RULES`.
    specials: FrozenSet[str]


SEMANTICS: Dict[Mnemonic, MnemonicSemantics] = {}

_ALL_FLAGS = frozenset(FLAGS)
_CONDITION_FLAGS = frozenset(FLAGS)  # condition codes may consult any flag
_NONE: FrozenSet[str] = frozenset()


def _sem(mnemonic: Mnemonic, handler: str, operand_counts: Tuple[int, ...],
         writes: FrozenSet[str] = _NONE, reads: FrozenSet[str] = _NONE,
         preserves: FrozenSet[str] = _NONE,
         specials: Iterable[str] = ()) -> None:
    special_set = frozenset(specials)
    unknown = special_set - frozenset(SPECIAL_RULES)
    if unknown:
        raise ValueError(f"unknown special rule(s) {sorted(unknown)} "
                         f"for {mnemonic.name}")
    SEMANTICS[mnemonic] = MnemonicSemantics(
        mnemonic=mnemonic, handler=handler, operand_counts=operand_counts,
        flags_written=writes, flags_read=reads, flags_preserved=preserves,
        specials=special_set)


_sem(Mnemonic.NOP, "_op_nop", (0,))
_sem(Mnemonic.HLT, "_op_hlt", (0,))
_sem(Mnemonic.MOV, "_op_mov", (2,), specials=("width_merge",))
_sem(Mnemonic.MOVZX, "_op_mov", (2,), specials=("width_merge",))
_sem(Mnemonic.MOVSX, "_op_movsx", (2,), specials=("width_merge",))
_sem(Mnemonic.LEA, "_op_lea", (2,))
_sem(Mnemonic.XCHG, "_op_xchg", (2,), specials=("width_merge",))
_sem(Mnemonic.PUSH, "_op_push", (1,))
_sem(Mnemonic.POP, "_op_pop", (1,), specials=("width_merge",))
_sem(Mnemonic.ADD, "_op_add", (2,), writes=_ALL_FLAGS)
_sem(Mnemonic.ADC, "_op_adc", (2,), writes=_ALL_FLAGS,
     reads=frozenset({"cf"}))
_sem(Mnemonic.SUB, "_op_sub", (2,), writes=_ALL_FLAGS)
_sem(Mnemonic.SBB, "_op_sbb", (2,), writes=_ALL_FLAGS,
     reads=frozenset({"cf"}))
_sem(Mnemonic.CMP, "_op_cmp", (2,), writes=_ALL_FLAGS)
_sem(Mnemonic.TEST, "_op_test", (2,), writes=_ALL_FLAGS)
_sem(Mnemonic.AND, "_op_and", (2,), writes=_ALL_FLAGS)
_sem(Mnemonic.OR, "_op_or", (2,), writes=_ALL_FLAGS)
_sem(Mnemonic.XOR, "_op_xor", (2,), writes=_ALL_FLAGS)
_sem(Mnemonic.NEG, "_op_neg", (1,), writes=_ALL_FLAGS)
_sem(Mnemonic.NOT, "_op_not", (1,))
_sem(Mnemonic.SHL, "_op_shl", (2,), writes=_ALL_FLAGS,
     specials=("count_masked", "zero_count_noop", "of_one_bit_only"))
_sem(Mnemonic.SHR, "_op_shr", (2,), writes=_ALL_FLAGS,
     specials=("count_masked", "zero_count_noop", "of_one_bit_only"))
_sem(Mnemonic.SAR, "_op_sar", (2,), writes=_ALL_FLAGS,
     specials=("count_masked", "zero_count_noop", "of_one_bit_only"))
_sem(Mnemonic.IMUL, "_op_imul", (2,), writes=_ALL_FLAGS,
     specials=("zf_sf_pinned",))
_sem(Mnemonic.CQO, "_op_cqo", (0,))
_sem(Mnemonic.IDIV, "_op_idiv", (1,))
_sem(Mnemonic.INC, "_op_inc", (1,),
     writes=frozenset({"of", "zf", "sf"}), preserves=frozenset({"cf"}))
_sem(Mnemonic.DEC, "_op_dec", (1,),
     writes=frozenset({"of", "zf", "sf"}), preserves=frozenset({"cf"}))
_sem(Mnemonic.CMOV, "_op_cmov", (2,), reads=_CONDITION_FLAGS,
     specials=("width_merge",))
_sem(Mnemonic.SET, "_op_set", (1,), reads=_CONDITION_FLAGS)
_sem(Mnemonic.JMP, "_op_jmp", (1,))
_sem(Mnemonic.JCC, "_op_jcc", (1,), reads=_CONDITION_FLAGS)
_sem(Mnemonic.CALL, "_op_call", (1,))
_sem(Mnemonic.RET, "_op_ret", (0,))
_sem(Mnemonic.LEAVE, "_op_leave", (0,))

if frozenset(SEMANTICS) != frozenset(Mnemonic):
    _missing = sorted(m.name for m in frozenset(Mnemonic) - frozenset(SEMANTICS))
    raise RuntimeError(f"semantics registry incomplete: {_missing}")


def handler_table() -> Dict[Mnemonic, str]:
    """Mnemonic -> ``Emulator`` handler method name, from the registry."""
    return {mnemonic: sem.handler for mnemonic, sem in SEMANTICS.items()}


# -- tier registration --------------------------------------------------------

#: How a tier's source encodes flag writes, for the static checker:
#: ``attributes`` — Python attribute stores (``state.cf = …``);
#: ``emitted`` — assignments inside source-text string literals passed to
#: ``emit()`` (the codegen tier); ``none`` — the tier models flags outside
#: the architectural slots (the symbolic shadow), so only coverage is
#: statically checked and the dynamic differentials carry the rest.
FLAG_STYLES: Tuple[str, ...] = ("attributes", "emitted", "none")

CoverageSpec = Mapping[Mnemonic, Union[None, str, Tuple[str, ...]]]


@dataclass(frozen=True)
class TierRegistration:
    """One tier's declared relationship to the contract registry."""

    name: str
    #: The implementing module (``__name__`` at the registration site);
    #: the checker locates the tier's source through ``sys.modules``.
    module: str
    #: Mnemonic -> implementing function/method names.  An empty tuple
    #: means "covered inline" (e.g. trace-terminal control flow): the
    #: coverage claim stands but no dedicated function is flag-checked.
    covered: Mapping[Mnemonic, Tuple[str, ...]]
    #: Mnemonics this tier deliberately leaves to the tier below.
    declined: FrozenSet[Mnemonic]
    flag_style: str


TIERS: Dict[str, TierRegistration] = {}


def register_tier(name: str, module: str, covered: CoverageSpec,
                  declined: Iterable[Mnemonic] = (),
                  flag_style: str = "attributes") -> TierRegistration:
    """Register one tier's covered/declined split; validates completeness.

    Raises ``ValueError`` when the split does not partition the dispatch
    mnemonic set — so an incomplete tier fails at import, before any test
    or workload runs.  Re-registration under the same name replaces the
    previous record (module reloads in tests).
    """
    if flag_style not in FLAG_STYLES:
        raise ValueError(f"tier {name}: unknown flag style {flag_style!r}")
    normalized: Dict[Mnemonic, Tuple[str, ...]] = {}
    for mnemonic, functions in covered.items():
        if mnemonic not in SEMANTICS:
            raise ValueError(f"tier {name}: unknown mnemonic {mnemonic!r}")
        if functions is None:
            normalized[mnemonic] = ()
        elif isinstance(functions, str):
            normalized[mnemonic] = (functions,)
        else:
            normalized[mnemonic] = tuple(functions)
    declined_set = frozenset(declined)
    unknown = declined_set - frozenset(SEMANTICS)
    if unknown:
        raise ValueError(f"tier {name}: unknown declined mnemonic(s) "
                         f"{sorted(m.name for m in unknown)}")
    overlap = declined_set & frozenset(normalized)
    if overlap:
        raise ValueError(f"tier {name}: mnemonic(s) both covered and "
                         f"declined: {sorted(m.name for m in overlap)}")
    missing = frozenset(SEMANTICS) - frozenset(normalized) - declined_set
    if missing:
        raise ValueError(
            f"tier {name}: mnemonic(s) neither covered nor on the decline "
            f"list: {sorted(m.name for m in missing)}")
    registration = TierRegistration(name=name, module=module,
                                    covered=normalized,
                                    declined=declined_set,
                                    flag_style=flag_style)
    TIERS[name] = registration
    return registration


def tier(name: str) -> Optional[TierRegistration]:
    """The registration for ``name``, or ``None``."""
    return TIERS.get(name)
