"""CPU state, emulator, host runtime and tracing facilities."""

from repro.cpu.state import CpuState, EmulationError
from repro.cpu.host import HostEnvironment, EXIT_ADDRESS
from repro.cpu.emulator import (
    Emulator,
    EmulatorSnapshot,
    JitStats,
    call_function,
)
from repro.cpu.tracing import TraceRecorder, TraceEntry

__all__ = [
    "CpuState",
    "EmulationError",
    "HostEnvironment",
    "EXIT_ADDRESS",
    "Emulator",
    "EmulatorSnapshot",
    "JitStats",
    "call_function",
    "TraceRecorder",
    "TraceEntry",
]
