"""Trace recording and the closure tier of the fused-trace pipeline.

The interpreter's per-instruction dispatch (address probe, generation check,
budget check, handler lookup) dominates ROP workloads, where the ret-to-ret
control flow makes every gadget a fresh dispatch.  This module discovers
straight-line *traces* at execution time and compiles each one into a flat
list of zero-argument closures with the operands already bound — a
superinstruction executed as one unit by :meth:`Emulator._execute_trace`.

Each trace also records its instruction-by-instruction shape as
:class:`TraceStep` entries; once a trace stays hot past the closure-tier
warm-up, :mod:`repro.cpu.codegen` consumes those records to emit the trace
as generated Python source (the exec-compiled third tier).  The closure
tier remains both the warm-up stage and the permanent home of traces the
codegen declines.

A trace extends through:

* fall-through instructions (ordinary basic-block bodies),
* ``jmp``/``call`` with immediate targets inside the same region, and
* ``ret`` whose return target can be *peeked* from the current stack — the
  ROP case: chains pivot ``rsp`` into ``.ropchains``, so the popped slots are
  section constants and the peek sees exactly what the ``ret`` will pop.

Peeked targets are never trusted: the fused ``ret`` executes its real
semantics and then *guards* on the recorded target.  A mismatching pop (a
rewritten chain slot, a data-dependent branch) simply ends the fused run with
the architectural state fully consistent, and the run loop carries on from
the actual ``rip``.  Conditional branches and indirect jumps end a trace the
same way, so no fused step is ever speculative.

Correctness keying mirrors the decode cache: a trace records its code
region's write ``generation`` and is rebuilt when the region changes
(ROP-materialized and self-modifying code).  Closures that store to memory
additionally re-check the generation *mid-trace*, so a program overwriting
its own upcoming instructions falls back to single-step decode immediately.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.binary.sections import HOST_FUNCTION_LIMIT
from repro.cpu import semantics as _semantics
from repro.cpu.state import CONDITION_TABLE, EmulationError, SIZE_MASKS, to_signed
from repro.isa.instructions import Instruction, Mnemonic
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import Register

_M = (1 << 64) - 1
_M32 = 0xFFFFFFFF
_H = 1 << 63

#: Upper bound on fused instructions per trace.  Long enough to swallow a
#: whole chain block between branch gadgets, short enough that the run
#: loop's ``steps + length <= limit`` pre-check rarely forces single-step.
TRACE_CAP = 64

#: Upper bound on fused instructions per *superblock* (a tail-to-head link
#: of hot compiled traces, see :func:`compose_traces`).  Superblocks grow by
#: appending further traces, so this caps the effective fused length well
#: past :data:`TRACE_CAP` without letting the run loop's budget pre-check
#: (``steps + length <= limit``) fragment long runs near the cap.
SUPERBLOCK_CAP = 512

_RSP = Register.RSP

#: Shared closure for instructions that vanish entirely when fused
#: (immediate jumps whose target simply continues the trace).
_NOOP = lambda: True

#: Mnemonics whose first operand being a plain register means that register
#: is (potentially) written.  Used for the static rsp-delta tracking.
_REG_WRITERS = frozenset(m for m in Mnemonic) - frozenset(
    (Mnemonic.CMP, Mnemonic.TEST, Mnemonic.PUSH, Mnemonic.JMP, Mnemonic.JCC,
     Mnemonic.NOP, Mnemonic.HLT, Mnemonic.RET)
)


class TraceStep:
    """The recorded form of one fused instruction.

    The closure list executes a trace; the step list *describes* it, which is
    what the source-compiling backend (:mod:`repro.cpu.codegen`) consumes to
    emit one Python function per trace.  ``kind`` distinguishes the shapes the
    builder special-cases:

    * ``"op"`` — straight-line instruction (specialized or generic closure).
    * ``"ret_guard"`` — fused ``ret`` guarding on the peeked ``target``.
    * ``"ret_final"`` — terminal ``ret`` (no peeked continuation).
    * ``"jmp_fused"`` — immediate ``jmp`` swallowed by the trace (``target``
      is the next fused address).
    * ``"jmp_imm"`` / ``"jcc_imm"`` / ``"call_fused"`` / ``"call_term"`` —
      immediate-target control transfers (``target`` holds the destination).
    * ``"term_generic"`` — non-immediate control transfer executed through
      the emulator handler (trace-terminal).
    * ``"hlt"`` — halt.
    """

    __slots__ = ("kind", "address", "instruction", "post", "target", "handler")

    def __init__(self, kind: str, address: int, instruction, post: int,
                 target: Optional[int] = None, handler=None) -> None:
        self.kind = kind
        self.address = address
        self.instruction = instruction
        self.post = post
        self.target = target
        self.handler = handler


class Trace:
    """One compiled superinstruction.

    Attributes:
        entry: address the trace starts at.
        ops: zero-argument closures, one per fused instruction; each returns
            True to continue or False to end the fused run (failed ret guard,
            mid-trace self-modification).
        posts: per-instruction post-execution ``rip`` values, used to repair
            ``rip`` when a fused instruction faults (matching single-step,
            which advances ``rip`` before running the handler).
        length: number of fused instructions (``len(ops)``).
        region: the code region every fused instruction was decoded from.
        generation: the region's write generation at build time; the trace is
            stale once they differ.
        final_rip: ``rip`` to install after a complete run when the last
            fused instruction does not set it itself (straight-line tail);
            None when the last instruction is a control transfer.
        steps: per-instruction :class:`TraceStep` records for the codegen
            backend.
        stack_region: the region ``rsp`` pointed into at build time (the
            pop/ret fast-path target), or None.
        runs: closure-tier executions so far (promotion counter).
        compiled: the exec-compiled function once the trace is promoted to
            the source tier, else None.
        compile_failed: True once source compilation was attempted and
            declined, so the closure tier stops retrying.
        parts: constituent :class:`Trace` objects when this trace is a
            superblock (tail-to-head link via :func:`compose_traces`); empty
            for ordinary traces, so truthiness doubles as an is-superblock
            test.
        sb_watch: True while the emulator is tracking this compiled trace's
            exits for superblock link opportunities.
        sb_counts: per-exit-address transition counters while watched.
        sb_tail: True when the trace's exit shape is linkable (anything but
            a halt); captured at promotion time, before the step records are
            freed, and immutable thereafter (``sb_watch`` is the mutable
            "still being tracked" state).
        sb_stale: superblocks only — set by the dispatcher when a seam
            guard failed on its *generation* check (a constituent's code
            region was rewritten).  Such a seam can never pass again, so
            the run loop demotes the composite back to its head
            constituent on the next dispatch.
    """

    __slots__ = ("entry", "ops", "posts", "length", "region", "generation",
                 "final_rip", "steps", "stack_region", "runs", "compiled",
                 "compile_failed", "parts", "sb_watch", "sb_counts",
                 "sb_tail", "sb_stale")

    def __init__(self, entry: int, ops: List[Callable[[], bool]],
                 posts: List[int], region, generation: int,
                 final_rip: Optional[int], steps: Optional[List[TraceStep]] = None,
                 stack_region=None) -> None:
        self.entry = entry
        self.ops = ops
        self.posts = posts
        self.length = len(ops)
        self.region = region
        self.generation = generation
        self.final_rip = final_rip
        self.steps = steps or []
        self.stack_region = stack_region
        self.runs = 0
        self.compiled = None
        self.compile_failed = False
        self.parts: tuple = ()
        self.sb_watch = False
        self.sb_counts: Optional[dict] = None
        self.sb_tail = False
        self.sb_stale = False


# -- effective address helpers -------------------------------------------------

def _ea_factory(operand: Mem, regs) -> Callable[[], int]:
    """Compile a memory operand's effective-address computation."""
    base, index, scale, disp = operand.base, operand.index, operand.scale, operand.disp
    if index is None:
        if base is None:
            address = disp & _M
            return lambda: address
        if disp == 0:
            return lambda: regs[base]
        return lambda: (regs[base] + disp) & _M
    if base is None:
        return lambda: (regs[index] * scale + disp) & _M
    return lambda: (regs[base] + regs[index] * scale + disp) & _M


def _imm_value(operand: Imm) -> int:
    """The unsigned value ``read_operand`` would produce for ``operand``."""
    return operand.value & SIZE_MASKS[operand.size]


# -- specialized closure factories ---------------------------------------------
#
# Every factory must reproduce the corresponding Emulator handler *exactly*,
# including flag updates, sub-register write semantics and the order of state
# mutations around a potential memory fault.  Anything not covered falls back
# to the generic bound-handler closure, so coverage here is a pure
# optimization, never a correctness requirement.

def _fuse_mov(instruction: Instruction, state, regs, memory):
    dst, src = instruction.operands
    dcls, scls = type(dst), type(src)
    if dcls is Reg:
        if dst.size == 8:
            d = dst.reg
            if scls is Imm:
                value = _imm_value(src)
                def op():
                    regs[d] = value
                    return True
                return op
            if scls is Reg:
                s = src.reg
                if src.size == 8:
                    def op():
                        regs[d] = regs[s]
                        return True
                    return op
                smask = SIZE_MASKS[src.size]
                def op():
                    regs[d] = regs[s] & smask
                    return True
                return op
            if scls is Mem:
                ea = _ea_factory(src, regs)
                read_int = memory.read_int
                size = src.size
                def op():
                    regs[d] = read_int(ea(), size)
                    return True
                return op
        elif dst.size == 4:
            d = dst.reg
            if scls is Imm:
                value = _imm_value(src) & _M32
                def op():
                    regs[d] = value
                    return True
                return op
            if scls is Reg and src.size in (4, 8):
                s = src.reg
                def op():
                    regs[d] = regs[s] & _M32
                    return True
                return op
            if scls is Mem:
                ea = _ea_factory(src, regs)
                read_int = memory.read_int
                size = src.size
                def op():
                    regs[d] = read_int(ea(), size) & _M32
                    return True
                return op
    return None


def _fuse_mov_to_mem(instruction: Instruction, state, regs, memory,
                     region, generation, post):
    dst, src = instruction.operands
    if type(dst) is not Mem:
        return None
    scls = type(src)
    ea = _ea_factory(dst, regs)
    write_int = memory.write_int
    size = dst.size
    if scls is Imm:
        value = _imm_value(src)
        def op():
            write_int(ea(), value, size)
            if region.generation != generation:
                state.rip = post
                return False
            return True
        return op
    if scls is Reg:
        s = src.reg
        if src.size == 8:
            def op():
                write_int(ea(), regs[s], size)
                if region.generation != generation:
                    state.rip = post
                    return False
                return True
            return op
        smask = SIZE_MASKS[src.size]
        def op():
            write_int(ea(), regs[s] & smask, size)
            if region.generation != generation:
                state.rip = post
                return False
            return True
        return op
    return None


def _fuse_alu(instruction: Instruction, state, regs):
    """add/sub/cmp/and/or/xor/test with a 64-bit register destination."""
    dst, src = instruction.operands
    if type(dst) is not Reg or dst.size != 8:
        return None
    d = dst.reg
    scls = type(src)
    if scls is Imm:
        b = _imm_value(src)
        s = None
    elif scls is Reg and src.size == 8:
        s = src.reg
        b = None
    else:
        return None
    mnemonic = instruction.mnemonic

    if mnemonic is Mnemonic.ADD:
        if s is None:
            sb = b - ((b & _H) << 1)
            def op():
                a = regs[d]
                total = a + b
                result = total & _M
                regs[d] = result
                state.cf = 1 if total > _M else 0
                st = (a - ((a & _H) << 1)) + sb
                state.of = 1 if (st < -_H or st >= _H) else 0
                state.zf = 1 if result == 0 else 0
                state.sf = 1 if result & _H else 0
                return True
        else:
            def op():
                a = regs[d]
                bv = regs[s]
                total = a + bv
                result = total & _M
                regs[d] = result
                state.cf = 1 if total > _M else 0
                st = (a - ((a & _H) << 1)) + (bv - ((bv & _H) << 1))
                state.of = 1 if (st < -_H or st >= _H) else 0
                state.zf = 1 if result == 0 else 0
                state.sf = 1 if result & _H else 0
                return True
        return op

    if mnemonic in (Mnemonic.SUB, Mnemonic.CMP):
        store = mnemonic is Mnemonic.SUB
        if s is None:
            sb = b - ((b & _H) << 1)
            if store:
                def op():
                    a = regs[d]
                    result = (a - b) & _M
                    regs[d] = result
                    state.cf = 1 if a < b else 0
                    st = (a - ((a & _H) << 1)) - sb
                    state.of = 1 if (st < -_H or st >= _H) else 0
                    state.zf = 1 if result == 0 else 0
                    state.sf = 1 if result & _H else 0
                    return True
            else:
                def op():
                    a = regs[d]
                    result = (a - b) & _M
                    state.cf = 1 if a < b else 0
                    st = (a - ((a & _H) << 1)) - sb
                    state.of = 1 if (st < -_H or st >= _H) else 0
                    state.zf = 1 if result == 0 else 0
                    state.sf = 1 if result & _H else 0
                    return True
        else:
            if store:
                def op():
                    a = regs[d]
                    bv = regs[s]
                    result = (a - bv) & _M
                    regs[d] = result
                    state.cf = 1 if a < bv else 0
                    st = (a - ((a & _H) << 1)) - (bv - ((bv & _H) << 1))
                    state.of = 1 if (st < -_H or st >= _H) else 0
                    state.zf = 1 if result == 0 else 0
                    state.sf = 1 if result & _H else 0
                    return True
            else:
                def op():
                    a = regs[d]
                    bv = regs[s]
                    result = (a - bv) & _M
                    state.cf = 1 if a < bv else 0
                    st = (a - ((a & _H) << 1)) - (bv - ((bv & _H) << 1))
                    state.of = 1 if (st < -_H or st >= _H) else 0
                    state.zf = 1 if result == 0 else 0
                    state.sf = 1 if result & _H else 0
                    return True
        return op

    if mnemonic in (Mnemonic.AND, Mnemonic.OR, Mnemonic.XOR, Mnemonic.TEST):
        store = mnemonic is not Mnemonic.TEST
        kind = mnemonic
        def op():
            a = regs[d]
            bv = b if s is None else regs[s]
            if kind is Mnemonic.XOR:
                result = a ^ bv
            elif kind is Mnemonic.OR:
                result = a | bv
            else:
                result = a & bv
            if store:
                regs[d] = result
            state.cf = 0
            state.of = 0
            state.zf = 1 if result == 0 else 0
            state.sf = 1 if result & _H else 0
            return True
        return op
    return None


def _fuse_incdec(instruction: Instruction, state, regs):
    dst = instruction.operands[0]
    if type(dst) is not Reg or dst.size != 8:
        return None
    d = dst.reg
    if instruction.mnemonic is Mnemonic.INC:
        def op():
            a = regs[d]
            result = (a + 1) & _M
            regs[d] = result
            # cf preserved; of set on signed overflow (0x7fff.. -> 0x8000..)
            state.of = 1 if a == _H - 1 else 0
            state.zf = 1 if result == 0 else 0
            state.sf = 1 if result & _H else 0
            return True
    else:
        def op():
            a = regs[d]
            result = (a - 1) & _M
            regs[d] = result
            state.of = 1 if a == _H else 0
            state.zf = 1 if result == 0 else 0
            state.sf = 1 if result & _H else 0
            return True
    return op


def _fuse_shift(instruction: Instruction, state, regs):
    dst, src = instruction.operands
    if type(dst) is not Reg or dst.size != 8 or type(src) is not Imm:
        return None
    mnemonic = instruction.mnemonic
    d = dst.reg
    amount = _imm_value(src) & 0x3F
    if amount == 0:
        # x86: a masked count of zero modifies neither flags nor the
        # destination — the whole instruction folds away
        return _NOOP
    one = amount == 1  # OF is defined only for 1-bit shifts
    if mnemonic is Mnemonic.SHL:
        def op():
            value = regs[d]
            result = (value << amount) & _M
            regs[d] = result
            carry = (value >> (64 - amount)) & 1
            state.cf = carry
            state.of = carry ^ (result >> 63) if one else 0
            state.zf = 1 if result == 0 else 0
            state.sf = 1 if result & _H else 0
            return True
    elif mnemonic is Mnemonic.SHR:
        def op():
            value = regs[d]
            result = value >> amount
            regs[d] = result
            state.cf = (value >> (amount - 1)) & 1
            state.of = value >> 63 if one else 0
            state.zf = 1 if result == 0 else 0
            state.sf = 1 if result & _H else 0
            return True
    else:  # SAR: arithmetic shift of the signed value; OF always 0
        def op():
            value = regs[d]
            signed = value - ((value & _H) << 1)
            result = (signed >> amount) & _M
            regs[d] = result
            state.cf = (signed >> (amount - 1)) & 1
            state.of = 0
            state.zf = 1 if result == 0 else 0
            state.sf = 1 if result & _H else 0
            return True
    return op


def _fuse_lea(instruction: Instruction, state, regs):
    dst, src = instruction.operands
    if type(dst) is not Reg or dst.size != 8 or type(src) is not Mem:
        return None
    d = dst.reg
    ea = _ea_factory(src, regs)
    return lambda: (regs.__setitem__(d, ea()), True)[1]


def _fuse_cmov(instruction: Instruction, state, regs):
    dst, src = instruction.operands
    if type(dst) is not Reg or dst.size != 8 or type(src) is not Reg or src.size != 8:
        return None
    d, s = dst.reg, src.reg
    predicate = CONDITION_TABLE[instruction.condition]
    def op():
        if predicate(state.cf, state.zf, state.sf, state.of):
            regs[d] = regs[s]
        return True
    return op


def _fuse_set(instruction: Instruction, state, regs):
    dst = instruction.operands[0]
    if type(dst) is not Reg:
        return None
    d = dst.reg
    predicate = CONDITION_TABLE[instruction.condition]
    if dst.size >= 4:
        def op():
            regs[d] = 1 if predicate(state.cf, state.zf, state.sf, state.of) else 0
            return True
        return op
    keep = ~SIZE_MASKS[dst.size] & _M
    def op():
        value = 1 if predicate(state.cf, state.zf, state.sf, state.of) else 0
        regs[d] = (regs[d] & keep) | value
        return True
    return op


def _fuse_push(instruction: Instruction, state, regs, memory, region,
               generation, post):
    src = instruction.operands[0]
    scls = type(src)
    write_int = memory.write_int
    if scls is Reg and src.size == 8:
        s = src.reg
        def op():
            # read before the rsp update: ``push rsp`` stores the old value
            value = regs[s]
            rsp = (regs[_RSP] - 8) & _M
            regs[_RSP] = rsp
            write_int(rsp, value, 8)
            if region.generation != generation:
                state.rip = post
                return False
            return True
        return op
    if scls is Imm:
        value = _imm_value(src)
        def op():
            rsp = (regs[_RSP] - 8) & _M
            regs[_RSP] = rsp
            write_int(rsp, value, 8)
            if region.generation != generation:
                state.rip = post
                return False
            return True
        return op
    return None


# The pop/ret closures below repeat the same qword stack load (bounds-check
# against the pinned stack_region, inline int.from_bytes, read_int fallback)
# instead of sharing a load(rsp) helper.  The duplication is deliberate: pops
# and rets dominate ROP dispatch, and routing the load through one more
# Python call costs ~10% whole-workload throughput (measured on fasta/
# ROP1.00).  Keep all three bodies in lockstep when touching any of them.

def _fuse_pop(instruction: Instruction, state, regs, memory, stack_region):
    dst = instruction.operands[0]
    if type(dst) is not Reg or dst.size != 8:
        return None
    d = dst.reg
    read_int = memory.read_int
    if stack_region is None:
        def op():
            rsp = regs[_RSP]
            value = read_int(rsp, 8)
            regs[_RSP] = (rsp + 8) & _M
            regs[d] = value
            return True
        return op
    start = stack_region.start
    fence = len(stack_region.data) - 8
    def op():
        rsp = regs[_RSP]
        offset = rsp - start
        if 0 <= offset <= fence:
            value = int.from_bytes(stack_region.data[offset:offset + 8],
                                   "little")
        else:
            value = read_int(rsp, 8)
        regs[_RSP] = (rsp + 8) & _M
        regs[d] = value
        return True
    return op


def _ret_guarded(state, regs, memory, expected: int, stack_region):
    read_int = memory.read_int
    if stack_region is None:
        def op():
            rsp = regs[_RSP]
            target = read_int(rsp, 8)
            regs[_RSP] = (rsp + 8) & _M
            state.rip = target
            return target == expected
        return op
    start = stack_region.start
    fence = len(stack_region.data) - 8
    def op():
        rsp = regs[_RSP]
        offset = rsp - start
        if 0 <= offset <= fence:
            target = int.from_bytes(stack_region.data[offset:offset + 8],
                                    "little")
        else:
            target = read_int(rsp, 8)
        regs[_RSP] = (rsp + 8) & _M
        state.rip = target
        return target == expected
    return op


def _ret_terminal(state, regs, memory, stack_region):
    read_int = memory.read_int
    if stack_region is None:
        def op():
            rsp = regs[_RSP]
            state.rip = read_int(rsp, 8)
            regs[_RSP] = (rsp + 8) & _M
            return True
        return op
    start = stack_region.start
    fence = len(stack_region.data) - 8
    def op():
        rsp = regs[_RSP]
        offset = rsp - start
        if 0 <= offset <= fence:
            target = int.from_bytes(stack_region.data[offset:offset + 8],
                                    "little")
        else:
            target = read_int(rsp, 8)
        state.rip = target
        regs[_RSP] = (rsp + 8) & _M
        return True
    return op


def _fuse_neg(instruction: Instruction, state, regs):
    dst = instruction.operands[0]
    if type(dst) is not Reg or dst.size != 8:
        return None
    d = dst.reg
    def op():
        a = regs[d]
        result = (-a) & _M
        regs[d] = result
        state.cf = 1 if a else 0
        state.of = 1 if a == _H else 0
        state.zf = 1 if result == 0 else 0
        state.sf = 1 if result & _H else 0
        return True
    return op


def _call_fused(state, regs, memory, region, generation, post, target):
    """``call imm`` whose target continues inside the trace."""
    write_int = memory.write_int
    def op():
        rsp = (regs[_RSP] - 8) & _M
        regs[_RSP] = rsp
        write_int(rsp, post, 8)
        if region.generation != generation:
            state.rip = target
            return False
        return True
    return op


def _call_terminal(state, regs, memory, post, target):
    """``call imm`` leaving the trace (host functions, other regions)."""
    write_int = memory.write_int
    def op():
        rsp = (regs[_RSP] - 8) & _M
        regs[_RSP] = rsp
        write_int(rsp, post, 8)
        state.rip = target
        return True
    return op


def _jcc_terminal(instruction: Instruction, state, post: int, target: int):
    predicate = CONDITION_TABLE[instruction.condition]
    def op():
        state.rip = target if predicate(state.cf, state.zf, state.sf,
                                        state.of) else post
        return True
    return op


def _generic(handler, instruction):
    """Fallback: the emulator's own bound handler, one dict probe cheaper."""
    def op():
        handler(instruction)
        return True
    return op


def _generic_writer(handler, instruction, state, region, generation, post):
    """Fallback for memory-writing instructions: add the mid-trace SMC check."""
    def op():
        handler(instruction)
        if region.generation != generation:
            state.rip = post
            return False
        return True
    return op


def _generic_terminal(handler, instruction, state, post):
    """Fallback for control transfers: set fall-through rip, then run."""
    def op():
        state.rip = post
        handler(instruction)
        return True
    return op


def _writes_memory(instruction: Instruction) -> bool:
    mnemonic = instruction.mnemonic
    if mnemonic in (Mnemonic.PUSH, Mnemonic.CALL):
        return True
    if mnemonic in (Mnemonic.CMP, Mnemonic.TEST, Mnemonic.JMP, Mnemonic.JCC):
        return False
    operands = instruction.operands
    if operands and isinstance(operands[0], Mem):
        return True
    if mnemonic is Mnemonic.XCHG and any(isinstance(op, Mem) for op in operands):
        return True
    return False


def _specialize(instruction: Instruction, state, regs, memory, region,
                generation, post, stack_region):
    """Return a specialized closure for a straight-line instruction, or None."""
    mnemonic = instruction.mnemonic
    try:
        if mnemonic in (Mnemonic.MOV, Mnemonic.MOVZX):
            op = _fuse_mov(instruction, state, regs, memory)
            if op is not None:
                return op
            return _fuse_mov_to_mem(instruction, state, regs, memory,
                                    region, generation, post)
        if mnemonic in (Mnemonic.ADD, Mnemonic.SUB, Mnemonic.CMP,
                        Mnemonic.AND, Mnemonic.OR, Mnemonic.XOR, Mnemonic.TEST):
            return _fuse_alu(instruction, state, regs)
        if mnemonic is Mnemonic.POP:
            return _fuse_pop(instruction, state, regs, memory, stack_region)
        if mnemonic is Mnemonic.NEG:
            return _fuse_neg(instruction, state, regs)
        if mnemonic is Mnemonic.PUSH:
            return _fuse_push(instruction, state, regs, memory, region,
                              generation, post)
        if mnemonic is Mnemonic.LEA:
            return _fuse_lea(instruction, state, regs)
        if mnemonic in (Mnemonic.INC, Mnemonic.DEC):
            return _fuse_incdec(instruction, state, regs)
        if mnemonic in (Mnemonic.SHL, Mnemonic.SHR, Mnemonic.SAR):
            return _fuse_shift(instruction, state, regs)
        if mnemonic is Mnemonic.CMOV:
            return _fuse_cmov(instruction, state, regs)
        if mnemonic is Mnemonic.SET:
            return _fuse_set(instruction, state, regs)
        if mnemonic is Mnemonic.NOP:
            return lambda: True
    except (KeyError, IndexError):  # malformed operands: leave it generic
        return None
    return None


def _rsp_delta(instruction: Instruction, delta: Optional[int]) -> Optional[int]:
    """Track the static stack-pointer offset across a fused instruction.

    Returns the new byte delta relative to the trace entry's ``rsp``, or None
    once the offset is no longer statically known (the builder then stops
    peeking ret targets).
    """
    if delta is None:
        return None
    mnemonic = instruction.mnemonic
    operands = instruction.operands
    if mnemonic is Mnemonic.PUSH:
        return delta - 8
    if mnemonic is Mnemonic.POP:
        dst = operands[0]
        if isinstance(dst, Reg) and dst.reg is _RSP:
            return None
        return delta + 8
    if mnemonic is Mnemonic.LEAVE:
        return None
    if operands and isinstance(operands[0], Reg) and operands[0].reg is _RSP \
            and mnemonic in _REG_WRITERS:
        if mnemonic in (Mnemonic.ADD, Mnemonic.SUB) and len(operands) == 2 \
                and isinstance(operands[1], Imm) and operands[0].size == 8:
            adjust = to_signed(_imm_value(operands[1]), 8)
            return delta + adjust if mnemonic is Mnemonic.ADD else delta - adjust
        return None
    if mnemonic is Mnemonic.XCHG and any(
            isinstance(op, Reg) and op.reg is _RSP for op in operands):
        return None
    return delta


def build_trace(emulator, entry: int, cap: int = TRACE_CAP) -> Optional[Trace]:
    """Discover and compile the trace starting at ``entry``.

    The walk decodes forward from ``entry`` (re-using the decode cache),
    following immediate jumps/calls and peeking concrete ret targets through
    the statically-tracked ``rsp`` offset.  It never mutates emulator state.
    Returns None when not even one instruction can be fused (undecodable or
    unimplemented entry — single-step will report the precise fault).
    """
    memory = emulator.memory
    region = memory.region_at(entry)
    if region is None:
        return None
    state = emulator.state
    regs = state.regs
    generation = region.generation
    entry_rsp = regs[_RSP]
    #: the region rsp currently points into (the chain section during ROP
    #: dispatch); pop/ret closures inline their loads against it and fall
    #: back to the generic memory path whenever rsp has wandered elsewhere
    stack_region = memory.region_at(entry_rsp)
    host_space_end = HOST_FUNCTION_LIMIT

    ops: List[Callable[[], bool]] = []
    posts: List[int] = []
    steps: List[TraceStep] = []
    final_rip: Optional[int] = None
    delta: Optional[int] = 0
    address = entry

    while len(ops) < cap:
        if not (region.start <= address < region.end):
            final_rip = address
            break
        try:
            instruction, length, _, _, handler = emulator.decode_entry(address)
        except EmulationError:
            final_rip = address
            break
        if handler is None:
            final_rip = address
            break
        mnemonic = instruction.mnemonic
        post = (address + length) & _M

        if mnemonic is Mnemonic.RET:
            target = None
            if delta is not None:
                target = memory.peek_int(entry_rsp + delta)
            if target is not None and region.start <= target < region.end \
                    and target > host_space_end and len(ops) + 1 < cap:
                ops.append(_ret_guarded(state, regs, memory, target,
                                        stack_region))
                posts.append(post)
                steps.append(TraceStep("ret_guard", address, instruction, post,
                                       target))
                delta += 8
                address = target
                continue
            ops.append(_ret_terminal(state, regs, memory, stack_region))
            posts.append(post)
            steps.append(TraceStep("ret_final", address, instruction, post))
            break

        if mnemonic is Mnemonic.JMP:
            operand = instruction.operands[0]
            if type(operand) is Imm:
                target = _imm_value(operand)
                if region.start <= target < region.end and target > host_space_end \
                        and len(ops) + 1 < cap:
                    ops.append(_NOOP)
                    posts.append(target)
                    steps.append(TraceStep("jmp_fused", address, instruction,
                                           target, target))
                    address = target
                    continue
                def op(target=target):
                    state.rip = target
                    return True
                ops.append(op)
                steps.append(TraceStep("jmp_imm", address, instruction, post,
                                       target))
            else:
                ops.append(_generic_terminal(handler, instruction, state, post))
                steps.append(TraceStep("term_generic", address, instruction,
                                       post, handler=handler))
            posts.append(post)
            break

        if mnemonic is Mnemonic.JCC:
            operand = instruction.operands[0]
            if type(operand) is Imm:
                ops.append(_jcc_terminal(instruction, state, post,
                                         _imm_value(operand)))
                steps.append(TraceStep("jcc_imm", address, instruction, post,
                                       _imm_value(operand)))
            else:
                ops.append(_generic_terminal(handler, instruction, state, post))
                steps.append(TraceStep("term_generic", address, instruction,
                                       post, handler=handler))
            posts.append(post)
            break

        if mnemonic is Mnemonic.CALL:
            operand = instruction.operands[0]
            if type(operand) is Imm:
                target = _imm_value(operand)
                if region.start <= target < region.end and target > host_space_end \
                        and len(ops) + 1 < cap:
                    ops.append(_call_fused(state, regs, memory, region,
                                           generation, post, target))
                    posts.append(post)
                    steps.append(TraceStep("call_fused", address, instruction,
                                           post, target))
                    delta = None if delta is None else delta - 8
                    address = target
                    continue
                ops.append(_call_terminal(state, regs, memory, post, target))
                steps.append(TraceStep("call_term", address, instruction, post,
                                       target))
            else:
                ops.append(_generic_terminal(handler, instruction, state, post))
                steps.append(TraceStep("term_generic", address, instruction,
                                       post, handler=handler))
            posts.append(post)
            break

        if mnemonic is Mnemonic.HLT:
            def op(post=post):
                state.rip = post
                emulator.halted = True
                return True
            ops.append(op)
            posts.append(post)
            steps.append(TraceStep("hlt", address, instruction, post))
            break

        op = _specialize(instruction, state, regs, memory, region, generation,
                         post, stack_region)
        if op is None:
            handler_ = handler
            if _writes_memory(instruction):
                op = _generic_writer(handler_, instruction, state, region,
                                     generation, post)
            else:
                op = _generic(handler_, instruction)
        ops.append(op)
        posts.append(post)
        steps.append(TraceStep("op", address, instruction, post,
                               handler=handler))
        delta = _rsp_delta(instruction, delta)
        address = post
    else:
        # cap reached on a straight-line tail: resume at the next address
        final_rip = address

    if not ops:
        return None
    emulator.jit_stats.traces_built += 1
    return Trace(entry, ops, posts, region, generation, final_rip,
                 steps=steps, stack_region=stack_region)


def compose_traces(emulator, parts: List[Trace]) -> Trace:
    """Link compiled traces tail-to-head into one superblock.

    The common ROP-chain shape: a compiled trace's exit (a popped ``ret``
    target, an immediate branch, or the fall-through of a trace capped at
    :data:`TRACE_CAP`) keeps landing on another hot compiled trace's entry.
    The superblock dispatches the constituent compiled functions in
    sequence without returning to the run loop: after each constituent, a
    *seam guard* re-checks exactly what the run loop would have checked —
    that execution actually continued at the next constituent's entry, that
    the emulator has not halted, and that the next constituent's code
    region still carries its build-time write generation.  A failing guard
    simply returns with the architectural state the constituents left, and
    the run loop carries on from the real ``rip``; no seam is ever
    speculative.

    Because every seam keys on its *own* constituent's ``(region,
    generation)`` pair, constituents may span different code regions and
    SMC invalidation stays exactly as precise as it is for the constituent
    traces: rewriting any constituent's code makes precisely the seams (and
    run-loop dispatches) that depend on it fall back.  The composite itself
    advertises the first constituent's region/generation, which is what the
    run loop checks before dispatching it.

    ``parts`` already being superblocks is fine — their constituents are
    flattened, so growth by appending stays one level deep.
    """
    flat: List[Trace] = []
    for part in parts:
        flat.extend(part.parts or (part,))
    first = flat[0]
    state = emulator.state
    head = first.compiled
    seams = tuple((part.entry, part.generation, part.region, part.compiled)
                  for part in flat[1:])

    def run() -> None:
        head()
        for entry, generation, region, fn in seams:
            if state.rip != entry or emulator.halted:
                return
            if region.generation != generation:
                # this seam can never pass again: tell the run loop to
                # demote the composite back to its head constituent
                composite.sb_stale = True
                return
            fn()

    composite = Trace(first.entry, [], [], first.region, first.generation,
                      None, stack_region=first.stack_region)
    composite.length = sum(part.length for part in flat)
    composite.parts = tuple(flat)
    composite.compiled = run
    composite.sb_tail = flat[-1].sb_tail
    composite.sb_watch = composite.sb_tail
    return composite


# -- semantic-contract registration -------------------------------------------
# The closure tier's covered/declined split, validated at import against the
# declarative registry (repro.cpu.semantics) and statically checked by
# ``python -m repro.analysis.lint``.  Covered mnemonics name the fuser
# function(s) whose flag-slot assignments must match the contract; an empty
# entry means "fused inline by build_trace" (trace-terminal control flow and
# NOP, which have no dedicated fuser).  Declined mnemonics deliberately fall
# through to the generic single-step handler closure — rare shapes where a
# specialized closure would not pay for itself.
_semantics.register_tier(
    "closures", __name__,
    covered={
        Mnemonic.MOV: ("_fuse_mov", "_fuse_mov_to_mem"),
        Mnemonic.MOVZX: ("_fuse_mov", "_fuse_mov_to_mem"),
        Mnemonic.ADD: "_fuse_alu",
        Mnemonic.SUB: "_fuse_alu",
        Mnemonic.CMP: "_fuse_alu",
        Mnemonic.AND: "_fuse_alu",
        Mnemonic.OR: "_fuse_alu",
        Mnemonic.XOR: "_fuse_alu",
        Mnemonic.TEST: "_fuse_alu",
        Mnemonic.POP: "_fuse_pop",
        Mnemonic.NEG: "_fuse_neg",
        Mnemonic.PUSH: "_fuse_push",
        Mnemonic.LEA: "_fuse_lea",
        Mnemonic.INC: "_fuse_incdec",
        Mnemonic.DEC: "_fuse_incdec",
        Mnemonic.SHL: "_fuse_shift",
        Mnemonic.SHR: "_fuse_shift",
        Mnemonic.SAR: "_fuse_shift",
        Mnemonic.CMOV: "_fuse_cmov",
        Mnemonic.SET: "_fuse_set",
        Mnemonic.NOP: None,
        Mnemonic.JMP: None,
        Mnemonic.JCC: None,
        Mnemonic.CALL: None,
        Mnemonic.RET: None,
        Mnemonic.HLT: None,
    },
    declined=(Mnemonic.MOVSX, Mnemonic.XCHG, Mnemonic.ADC, Mnemonic.SBB,
              Mnemonic.NOT, Mnemonic.IMUL, Mnemonic.CQO, Mnemonic.IDIV,
              Mnemonic.LEAVE),
    flag_style="attributes")
