"""Exec-compiled superinstructions: the trace-to-Python-source JIT tier.

The closure tier (:mod:`repro.cpu.trace`) executes a fused trace as a flat
list of operand-bound closures — one Python call per instruction.  This
module takes the *recorded* form of the same trace (:class:`repro.cpu.trace.
TraceStep`) and emits one Python function per trace as source text, compiled
once with :func:`compile`/``exec`` and cached on the :class:`~repro.cpu.
trace.Trace` object (so it keys on the same region write generations the
closure tier keys on — self-modifying and ROP-materialized code invalidates
both tiers at once).

What the generated source buys over the closure list:

* **No per-op call.**  The whole trace is one code object; the interpreter
  never re-enters a Python frame between fused instructions.
* **Registers and flags live in locals.**  The registers a trace touches are
  hoisted into local variables on entry and written back at the single
  shared exit, so the hot ALU/stack ops are ``LOAD_FAST``/``STORE_FAST``
  instead of dict and attribute traffic.
* **Operands are constant-folded.**  Immediates, size masks, sign-extension
  constants, effective-address arithmetic, peeked ``ret`` targets and region
  generations are baked into the expressions as literals.
* **Width-specialized memory traffic.**  Stack loads go through a pinned
  ``struct.Struct("<Q").unpack_from`` (no slice allocation); other qword
  traffic binds the stable :meth:`repro.memory.Memory.read_qword` /
  :meth:`~repro.memory.Memory.write_qword` accessors.

The generated function is shaped as one ``while True`` block whose ``break``
statements converge on a single register/flag writeback tail (early exits —
failed ret guards, mid-trace self-modification — set the executed-step count
``ex`` first), so the source stays compact enough that ``compile()`` is a
once-per-trace cost of well under a millisecond.

Semantics are bit-for-bit those of the closure tier (which in turn mirrors
single-step dispatch): fused ``ret`` guards, mid-trace self-modification
checks after every store, and fault repair (``rip`` and ``steps`` exactly as
single-stepping would have left them) are all emitted inline.  Native
coverage spans sized (1/2/4/8-byte) ALU and MOV destinations, shifts of any
width by immediate or count register (with the width-dependent count mask,
zero-count flag preservation and the defined 1-bit OF), memory-operand
``cmp``/``test`` and memory-destination read-modify-write ALU.  Ops the
codegen does not cover natively run through the emulator's own handler with
the hoisted state flushed before and reloaded after the call, so coverage
here is a pure optimization — any recorded trace compiles, though
:func:`compile_trace` declines traces that would mostly round-trip through
handlers (the closure tier serves those better).

The generated function is self-contained: it advances ``emulator.steps``,
installs the final ``rip`` and re-raises faults as
:class:`~repro.cpu.state.EmulationError` itself, so executing a compiled
trace from the run loop is a single call.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Set

from repro.cpu import semantics as _semantics
from repro.cpu.state import BIT_WIDTHS, EmulationError, SIGN_BITS, SIZE_MASKS
from repro.cpu.trace import _writes_memory
from repro.isa.instructions import Mnemonic
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import Register
from repro.memory import MemoryError_

_M = (1 << 64) - 1
_M32 = 0xFFFFFFFF
_H = 1 << 63

#: Literal spellings of the hot constants, so the generated source stays
#: readable when dumped for debugging.
_M_LIT = "0xFFFFFFFFFFFFFFFF"
_H_LIT = "0x8000000000000000"

#: Allocation-free little-endian qword load (bounds are pre-checked by the
#: emitted code, so the struct error path never triggers).
_UNPACK_QWORD = struct.Struct("<Q").unpack_from

#: Condition code -> Python expression over the local flag variables; the
#: exact truth tables of :data:`repro.cpu.state.CONDITION_TABLE`.
_COND_EXPR: Dict[str, str] = {
    "e": "zf",
    "ne": "not zf",
    "l": "sf != of",
    "ge": "sf == of",
    "le": "zf or sf != of",
    "g": "not zf and sf == of",
    "b": "cf",
    "ae": "not cf",
    "be": "cf or zf",
    "a": "not cf and not zf",
    "s": "sf",
    "ns": "not sf",
}

_ALU_SYMBOL = {Mnemonic.AND: "&", Mnemonic.OR: "|", Mnemonic.XOR: "^",
               Mnemonic.TEST: "&"}

#: Placeholder tokens substituted once the full hoisted-register set is
#: known (generic-handler flushes appear mid-stream, before later steps may
#: add registers to the set).
_WB = "%%WB%%"
_RELOAD = "%%RELOAD%%"

_FLAG_LOADS = ["cf = _S.cf", "zf = _S.zf", "sf = _S.sf", "of = _S.of"]
_FLAG_STORES = ["_S.cf = cf", "_S.zf = zf", "_S.sf = sf", "_S.of = of"]


def _signed64(value: int) -> int:
    """to_signed(value, 8) folded at compile time."""
    value &= _M
    return value - (1 << 64) if value & _H else value


class _Codegen:
    """Builds the source of one trace function."""

    def __init__(self, trace, emulator) -> None:
        self.trace = trace
        self.emulator = emulator
        self.lines: List[str] = []
        self.hoisted: Set[Register] = set()
        #: extra objects bound into the exec namespace (handlers,
        #: instruction objects for the generic fallback path)
        self.bindings: Dict[str, object] = {}
        self.native_steps = 0
        self.generic_steps = 0

    # -- small emission helpers -------------------------------------------------
    def reg(self, register: Register) -> str:
        """Local variable name of a hoisted register."""
        self.hoisted.add(register)
        return f"r_{register.name.lower()}"

    def emit(self, line: str) -> None:
        self.lines.append("            " + line)

    def ea(self, operand: Mem) -> str:
        """Effective-address expression (mirrors ``trace._ea_factory``)."""
        base, index, scale, disp = (operand.base, operand.index,
                                    operand.scale, operand.disp)
        if index is None:
            if base is None:
                return str(disp & _M)
            if disp == 0:
                return self.reg(base)
            return f"({self.reg(base)} + {disp}) & {_M_LIT}"
        if base is None:
            return f"({self.reg(index)} * {scale} + {disp}) & {_M_LIT}"
        return (f"({self.reg(base)} + {self.reg(index)} * {scale} + {disp})"
                f" & {_M_LIT}")

    def early_exit(self, executed: int) -> None:
        """Jump to the shared writeback tail reporting ``executed`` steps."""
        self.emit(f"    ex = {executed}")
        self.emit("    break")

    def gen_check(self, index: int, resume_rip: int) -> None:
        """Mid-trace self-modification check after a store (early exit)."""
        self.emit(f"if _RGN.generation != {self.trace.generation}:")
        self.emit(f"    _S.rip = {resume_rip}")
        self.early_exit(index + 1)

    def stack_load(self, address_var: str, result_var: str, index: int) -> None:
        """Qword stack load with the pinned-region fast path (pop/ret)."""
        stack = self.trace.stack_region
        self.emit(f"n = {index}")
        if stack is None:
            self.emit(f"{result_var} = _RQ({address_var})")
            return
        self.emit(f"off = {address_var} - {stack.start}")
        self.emit(f"if 0 <= off <= {len(stack.data) - 8}:")
        self.emit(f"    {result_var} = _UQ(_STK.data, off)[0]")
        self.emit("else:")
        self.emit(f"    {result_var} = _RQ({address_var})")

    def flags_zs(self, size: int = 8) -> None:
        self.emit("zf = 1 if res == 0 else 0")
        sign = _H_LIT if size == 8 else hex(SIGN_BITS[size])
        self.emit(f"sf = 1 if res & {sign} else 0")

    def reg_value(self, operand: Reg) -> str:
        """Expression of a register operand's unsigned value at its width."""
        name = self.reg(operand.reg)
        if operand.size == 8:
            return name
        return f"({name} & {SIZE_MASKS[operand.size]})"

    def write_reg_result(self, operand: Reg, expr: str = "res") -> None:
        """Store ``expr`` (already masked to the operand width) into a
        register following the sized-write convention: 8/4-byte writes
        replace the whole register (4-byte zero-extends), 1/2-byte writes
        merge into the low bytes."""
        name = self.reg(operand.reg)
        if operand.size >= 4:
            self.emit(f"{name} = {expr}")
        else:
            keep = ~SIZE_MASKS[operand.size] & _M
            self.emit(f"{name} = ({name} & {keep}) | {expr}")

    # -- native emitters for straight-line ops ----------------------------------
    def emit_op(self, index: int, step) -> bool:
        """Emit native source for one ``"op"`` step; False -> generic."""
        mnemonic = step.instruction.mnemonic
        try:
            if mnemonic in (Mnemonic.MOV, Mnemonic.MOVZX):
                return self._op_mov(index, step)
            if mnemonic is Mnemonic.MOVSX:
                return self._op_movsx(index, step)
            if mnemonic in (Mnemonic.ADD, Mnemonic.SUB, Mnemonic.CMP,
                            Mnemonic.AND, Mnemonic.OR, Mnemonic.XOR,
                            Mnemonic.TEST):
                return (self._op_alu(index, step)
                        or self._op_alu_mem(index, step))
            if mnemonic in (Mnemonic.ADC, Mnemonic.SBB):
                return self._op_adc_sbb(index, step)
            if mnemonic is Mnemonic.POP:
                return self._op_pop(index, step)
            if mnemonic is Mnemonic.PUSH:
                return self._op_push(index, step)
            if mnemonic is Mnemonic.LEA:
                return self._op_lea(index, step)
            if mnemonic in (Mnemonic.INC, Mnemonic.DEC):
                return self._op_incdec(index, step)
            if mnemonic is Mnemonic.NEG:
                return self._op_neg(index, step)
            if mnemonic is Mnemonic.NOT:
                return self._op_not(index, step)
            if mnemonic in (Mnemonic.SHL, Mnemonic.SHR, Mnemonic.SAR):
                return self._op_shift(index, step)
            if mnemonic is Mnemonic.IMUL:
                return self._op_imul(index, step)
            if mnemonic is Mnemonic.XCHG:
                return self._op_xchg(index, step)
            if mnemonic is Mnemonic.CMOV:
                return self._op_cmov(index, step)
            if mnemonic is Mnemonic.SET:
                return self._op_set(index, step)
            if mnemonic is Mnemonic.CQO:
                self.emit(f"{self.reg(Register.RDX)} = {_M_LIT} "
                          f"if {self.reg(Register.RAX)} & {_H_LIT} else 0")
                return True
            if mnemonic is Mnemonic.LEAVE:
                return self._op_leave(index, step)
            if mnemonic is Mnemonic.NOP:
                return True
        except (KeyError, IndexError):
            return False
        return False

    def _op_mov(self, index: int, step) -> bool:
        dst, src = step.instruction.operands
        dcls, scls = type(dst), type(src)
        if dcls is Reg and dst.size == 8:
            d = self.reg(dst.reg)
            if scls is Imm:
                self.emit(f"{d} = {src.value & SIZE_MASKS[src.size]}")
                return True
            if scls is Reg:
                s = self.reg(src.reg)
                if src.size == 8:
                    self.emit(f"{d} = {s}")
                else:
                    self.emit(f"{d} = {s} & {SIZE_MASKS[src.size]}")
                return True
            if scls is Mem:
                ea = self.ea(src)
                self.emit(f"n = {index}")
                if src.size == 8:
                    self.emit(f"{d} = _RQ({ea})")
                else:
                    self.emit(f"{d} = _RD({ea}, {src.size})")
                return True
            return False
        if dcls is Reg and dst.size == 4:
            d = self.reg(dst.reg)
            if scls is Imm:
                self.emit(f"{d} = {src.value & SIZE_MASKS[src.size] & _M32}")
                return True
            if scls is Reg:
                smask = SIZE_MASKS[min(src.size, 4)]
                self.emit(f"{d} = {self.reg(src.reg)} & {smask:#x}")
                return True
            if scls is Mem:
                ea = self.ea(src)
                self.emit(f"n = {index}")
                self.emit(f"{d} = _RD({ea}, {src.size}) & {_M32}")
                return True
            return False
        if dcls is Reg and dst.size in (1, 2):
            # sized writes merge into the register's low bytes
            mask = SIZE_MASKS[dst.size]
            keep = ~mask & _M
            d = self.reg(dst.reg)
            if scls is Imm:
                value = src.value & SIZE_MASKS[src.size] & mask
                self.emit(f"{d} = ({d} & {keep}) | {value}")
                return True
            if scls is Reg:
                smask = SIZE_MASKS[min(src.size, dst.size)]
                self.emit(f"{d} = ({d} & {keep}) | "
                          f"({self.reg(src.reg)} & {smask:#x})")
                return True
            if scls is Mem:
                self.emit(f"n = {index}")
                load = f"_RD({self.ea(src)}, {src.size})"
                if src.size > dst.size:
                    load = f"({load}) & {mask:#x}"
                self.emit(f"{d} = ({d} & {keep}) | ({load})")
                return True
            return False
        if dcls is Mem:
            ea = self.ea(dst)
            if scls is Imm:
                value = str(src.value & SIZE_MASKS[src.size])
            elif scls is Reg:
                value = self.reg(src.reg)
                if src.size != 8:
                    value = f"{value} & {SIZE_MASKS[src.size]}"
            else:
                return False
            self.emit(f"n = {index}")
            if dst.size == 8:
                self.emit(f"_WQ({ea}, {value})")
            else:
                self.emit(f"_WR({ea}, {value}, {dst.size})")
            self.gen_check(index, step.post)
            return True
        return False

    def _op_movsx(self, index: int, step) -> bool:
        dst, src = step.instruction.operands
        if type(dst) is not Reg or dst.size not in (4, 8):
            return False
        scls = type(src)
        size = getattr(src, "size", 8)
        if scls is Reg:
            if size == 8:
                value = self.reg(src.reg)
            else:
                value = f"{self.reg(src.reg)} & {SIZE_MASKS[size]}"
            self.emit(f"v = {value}")
        elif scls is Mem:
            self.emit(f"n = {index}")
            self.emit(f"v = _RD({self.ea(src)}, {size})")
        else:
            return False
        d = self.reg(dst.reg)
        if size == 8:
            extended = "v"
        else:
            extended = (f"((v - {1 << (8 * size)}) & {_M_LIT}) "
                        f"if v & {1 << (8 * size - 1)} else v")
        if dst.size == 8:
            self.emit(f"{d} = {extended}")
        else:
            self.emit(f"{d} = ({extended}) & {_M32}")
        return True

    def _op_alu(self, index: int, step) -> bool:
        """Register destinations of every width (1/2/4/8 bytes) with
        register or immediate sources — sized flags, masks and the merge
        write convention all come from the shared ALU core."""
        dst, src = step.instruction.operands
        if type(dst) is not Reg:
            return False
        size = dst.size
        rhs = self._alu_rhs(src, size)
        if rhs is None:
            return False
        b, sb = rhs
        self.emit(f"a = {self.reg_value(dst)}")
        mnemonic = step.instruction.mnemonic
        self._emit_alu_core(mnemonic, size, b, sb)
        if mnemonic not in (Mnemonic.CMP, Mnemonic.TEST):
            self.write_reg_result(dst)
        return True

    def _emit_alu_core(self, mnemonic: Mnemonic, size: int, b: str,
                       sb: str) -> None:
        """Emit ``res``/``cf``/``of``/``zf``/``sf`` for ``a <op> b`` at
        ``size`` bytes.  ``a`` must already hold the masked left value;
        ``b``/``sb`` are the masked unsigned and signed right-hand
        expressions (constant-folded literals for immediates)."""
        mlit = _M_LIT if size == 8 else hex(SIZE_MASKS[size])
        slit = _H_LIT if size == 8 else hex(SIGN_BITS[size])
        if mnemonic is Mnemonic.ADD:
            self.emit(f"t = a + {b}")
            self.emit(f"res = t & {mlit}")
            self.emit(f"cf = 1 if t > {mlit} else 0")
            self.emit(f"st = (a - ((a & {slit}) << 1)) + {sb}")
            self.emit(f"of = 1 if st < -{slit} or st >= {slit} else 0")
        elif mnemonic in (Mnemonic.SUB, Mnemonic.CMP):
            self.emit(f"res = (a - {b}) & {mlit}")
            self.emit(f"cf = 1 if a < {b} else 0")
            self.emit(f"st = (a - ((a & {slit}) << 1)) - {sb}")
            self.emit(f"of = 1 if st < -{slit} or st >= {slit} else 0")
        else:
            symbol = _ALU_SYMBOL[mnemonic]
            self.emit(f"res = a {symbol} {b}")
            self.emit("cf = 0")
            self.emit("of = 0")
        self.flags_zs(size)

    def _alu_rhs(self, src, size: int) -> Optional[tuple]:
        """``(b, sb)`` expressions of a register/immediate ALU source at
        ``size`` bytes; emits a ``b = ...`` line for register sources."""
        if type(src) is Imm:
            value = src.value & SIZE_MASKS[src.size] & SIZE_MASKS[size]
            return str(value), str(value - ((value & SIGN_BITS[size]) << 1))
        if type(src) is Reg:
            smask = SIZE_MASKS[min(src.size, size)]
            source = self.reg(src.reg)
            if smask == SIZE_MASKS[8]:
                self.emit(f"b = {source}")
            else:
                self.emit(f"b = {source} & {smask:#x}")
            slit = _H_LIT if size == 8 else hex(SIGN_BITS[size])
            return "b", f"(b - ((b & {slit}) << 1))"
        return None

    def _op_alu_mem(self, index: int, step) -> bool:
        """Memory-operand ALU: ``cmp``/``test`` with a memory operand on
        either side, memory-source ALU into a register, and memory-
        destination ADD/SUB/AND/OR/XOR read-modify-writes (with the
        mid-trace SMC check after the store, like every other fused
        memory-writing op)."""
        dst, src = step.instruction.operands
        mnemonic = step.instruction.mnemonic
        dcls, scls = type(dst), type(src)
        if dcls is Reg and scls is Mem:
            size = dst.size
            slit = _H_LIT if size == 8 else hex(SIGN_BITS[size])
            self.emit(f"n = {index}")
            load = (f"_RQ({self.ea(src)})" if src.size == 8
                    else f"_RD({self.ea(src)}, {src.size})")
            if src.size > size:
                load = f"({load}) & {SIZE_MASKS[size]:#x}"
            self.emit(f"b = {load}")
            self.emit(f"a = {self.reg_value(dst)}")
            self._emit_alu_core(mnemonic, size, "b",
                                f"(b - ((b & {slit}) << 1))")
            if mnemonic not in (Mnemonic.CMP, Mnemonic.TEST):
                self.write_reg_result(dst)
            return True
        if dcls is not Mem:
            return False
        size = dst.size
        rhs = self._alu_rhs(src, size)
        if rhs is None:
            return False
        b, sb = rhs
        self.emit(f"p = {self.ea(dst)}")
        self.emit(f"n = {index}")
        self.emit("a = _RQ(p)" if size == 8 else f"a = _RD(p, {size})")
        self._emit_alu_core(mnemonic, size, b, sb)
        if mnemonic not in (Mnemonic.CMP, Mnemonic.TEST):
            self.emit("_WQ(p, res)" if size == 8
                      else f"_WR(p, res, {size})")
            self.gen_check(index, step.post)
        return True

    def _op_adc_sbb(self, index: int, step) -> bool:
        dst, src = step.instruction.operands
        if type(dst) is not Reg or dst.size != 8:
            return False
        rhs = self._alu_rhs(src, 8)
        if rhs is None:
            return False
        b, sb = rhs
        d = self.reg(dst.reg)
        self.emit(f"a = {d}")
        self.emit("c = cf")  # carry-in, read before cf is overwritten
        if step.instruction.mnemonic is Mnemonic.ADC:
            self.emit(f"t = a + {b} + c")
            self.emit(f"res = t & {_M_LIT}")
            self.emit(f"{d} = res")
            self.emit(f"cf = 1 if t > {_M_LIT} else 0")
            self.emit(f"st = (a - ((a & {_H_LIT}) << 1)) + {sb} + c")
        else:
            self.emit(f"res = (a - {b} - c) & {_M_LIT}")
            self.emit(f"{d} = res")
            self.emit(f"cf = 1 if a < {b} + c else 0")
            self.emit(f"st = (a - ((a & {_H_LIT}) << 1)) - {sb} - c")
        self.emit(f"of = 1 if st < -{_H_LIT} or st >= {_H_LIT} else 0")
        self.flags_zs()
        return True

    def _op_pop(self, index: int, step) -> bool:
        dst = step.instruction.operands[0]
        if type(dst) is not Reg or dst.size != 8:
            return False
        rsp = self.reg(Register.RSP)
        self.emit(f"rsp = {rsp}")
        self.stack_load("rsp", "v", index)
        self.emit(f"{rsp} = (rsp + 8) & {_M_LIT}")
        self.emit(f"{self.reg(dst.reg)} = v")
        return True

    def _op_push(self, index: int, step) -> bool:
        src = step.instruction.operands[0]
        scls = type(src)
        if scls is Reg and src.size == 8:
            # read before the rsp update: ``push rsp`` stores the old value
            self.emit(f"v = {self.reg(src.reg)}")
            value = "v"
        elif scls is Imm:
            value = str(src.value & SIZE_MASKS[src.size])
        else:
            return False
        rsp = self.reg(Register.RSP)
        self.emit(f"n = {index}")
        self.emit(f"rsp = ({rsp} - 8) & {_M_LIT}")
        self.emit(f"{rsp} = rsp")
        self.emit(f"_WQ(rsp, {value})")
        self.gen_check(index, step.post)
        return True

    def _op_lea(self, index: int, step) -> bool:
        dst, src = step.instruction.operands
        if type(dst) is not Reg or dst.size != 8 or type(src) is not Mem:
            return False
        self.emit(f"{self.reg(dst.reg)} = {self.ea(src)}")
        return True

    def _op_incdec(self, index: int, step) -> bool:
        dst = step.instruction.operands[0]
        if type(dst) is not Reg or dst.size != 8:
            return False
        d = self.reg(dst.reg)
        self.emit(f"a = {d}")
        if step.instruction.mnemonic is Mnemonic.INC:
            self.emit(f"res = (a + 1) & {_M_LIT}")
            # cf preserved; of set on signed overflow (0x7fff.. -> 0x8000..)
            self.emit(f"of = 1 if a == {_H - 1} else 0")
        else:
            self.emit(f"res = (a - 1) & {_M_LIT}")
            self.emit(f"of = 1 if a == {_H_LIT} else 0")
        self.emit(f"{d} = res")
        self.flags_zs()
        return True

    def _op_neg(self, index: int, step) -> bool:
        dst = step.instruction.operands[0]
        if type(dst) is not Reg or dst.size != 8:
            return False
        d = self.reg(dst.reg)
        self.emit(f"a = {d}")
        self.emit(f"res = (-a) & {_M_LIT}")
        self.emit(f"{d} = res")
        self.emit("cf = 1 if a else 0")
        self.emit(f"of = 1 if a == {_H_LIT} else 0")
        self.flags_zs()
        return True

    def _op_not(self, index: int, step) -> bool:
        dst = step.instruction.operands[0]
        if type(dst) is not Reg or dst.size != 8:
            return False
        d = self.reg(dst.reg)
        self.emit(f"{d} = (~{d}) & {_M_LIT}")
        return True

    def _op_shift(self, index: int, step) -> bool:
        """Shifts with register destinations of every width, by immediate or
        by a count register (the ``shl reg, cl`` shape ROP chains lean on).

        x86 semantics emitted inline: the count is masked by the operand
        width (6 bits for 64-bit operands, 5 otherwise), a masked count of
        zero touches neither flags nor destination, and OF is defined for
        1-bit shifts only (SHL: CF ^ MSB(result); SHR: MSB(original);
        SAR: 0) with wider counts pinned at 0 in every tier.
        """
        dst, src = step.instruction.operands
        if type(dst) is not Reg:
            return False
        size = dst.size
        bits = BIT_WIDTHS[size]
        mask = SIZE_MASKS[size]
        sign = SIGN_BITS[size]
        wmask = 0x3F if size == 8 else 0x1F
        mnemonic = step.instruction.mnemonic
        scls = type(src)
        if scls is Imm:
            amount = (src.value & SIZE_MASKS[src.size]) & wmask
            if amount == 0:
                # masked zero count: the whole instruction folds away
                return True
            self.emit(f"v = {self.reg_value(dst)}")
            one = amount == 1
            if mnemonic is Mnemonic.SHL:
                if amount <= bits:
                    self.emit(f"res = (v << {amount}) & {mask:#x}")
                    self.emit(f"cf = (v >> {bits - amount}) & 1")
                else:  # every bit (and the last carry) shifted out
                    self.emit("res = 0")
                    self.emit("cf = 0")
                self.emit(f"of = cf ^ (res >> {bits - 1})" if one else "of = 0")
            elif mnemonic is Mnemonic.SHR:
                self.emit(f"res = v >> {amount}")
                self.emit(f"cf = (v >> {amount - 1}) & 1")
                self.emit(f"of = v >> {bits - 1}" if one else "of = 0")
            else:  # SAR: shift the signed value (sign bits fill from above)
                self.emit(f"s = v - ((v & {sign:#x}) << 1)")
                self.emit(f"res = (s >> {amount}) & {mask:#x}")
                self.emit(f"cf = (s >> {amount - 1}) & 1")
                self.emit("of = 0")
            self.flags_zs(size)
            self.write_reg_result(dst)
            return True
        if scls is not Reg:
            return False
        # dynamic count: read the count register first (it may also be the
        # destination), then guard the whole update on a nonzero count
        self.emit(f"c = {self.reg(src.reg)} & {wmask}")
        self.emit("if c:")
        self.emit(f"    v = {self.reg_value(dst)}")
        if mnemonic is Mnemonic.SHL:
            if wmask >= bits:  # 1/2-byte operands: counts can exceed width
                self.emit(f"    if c <= {bits}:")
                self.emit(f"        res = (v << c) & {mask:#x}")
                self.emit(f"        cf = (v >> ({bits} - c)) & 1")
                self.emit("    else:")
                self.emit("        res = 0")
                self.emit("        cf = 0")
            else:
                self.emit(f"    res = (v << c) & {mask:#x}")
                self.emit(f"    cf = (v >> ({bits} - c)) & 1")
            self.emit(f"    of = cf ^ (res >> {bits - 1}) if c == 1 else 0")
        elif mnemonic is Mnemonic.SHR:
            self.emit("    res = v >> c")
            self.emit("    cf = (v >> (c - 1)) & 1")
            self.emit(f"    of = v >> {bits - 1} if c == 1 else 0")
        else:
            self.emit(f"    s = v - ((v & {sign:#x}) << 1)")
            self.emit(f"    res = (s >> c) & {mask:#x}")
            self.emit("    cf = (s >> (c - 1)) & 1")
            self.emit("    of = 0")
        self.emit("    zf = 1 if res == 0 else 0")
        self.emit(f"    sf = 1 if res & {sign:#x} else 0")
        name = self.reg(dst.reg)
        if size >= 4:
            self.emit(f"    {name} = res")
        else:
            keep = ~mask & _M
            self.emit(f"    {name} = ({name} & {keep}) | res")
        return True

    def _op_imul(self, index: int, step) -> bool:
        operands = step.instruction.operands
        if len(operands) != 2:
            return False
        dst, src = operands
        if type(dst) is not Reg or dst.size != 8:
            return False
        if type(src) is Imm:
            sb = str(_signed64(src.value & SIZE_MASKS[src.size]))
        elif type(src) is Reg and src.size == 8:
            s = self.reg(src.reg)
            sb = f"({s} - (({s} & {_H_LIT}) << 1))"
        else:
            return False
        d = self.reg(dst.reg)
        self.emit(f"a = {d}")
        self.emit(f"t = (a - ((a & {_H_LIT}) << 1)) * {sb}")
        self.emit(f"res = t & {_M_LIT}")
        self.emit(f"cf = 0 if -{_H_LIT} <= t < {_H_LIT} else 1")
        self.emit("of = cf")
        self.flags_zs()
        self.emit(f"{d} = res")
        return True

    def _op_xchg(self, index: int, step) -> bool:
        a, b = step.instruction.operands
        if type(a) is not Reg or a.size != 8 or type(b) is not Reg or b.size != 8:
            return False
        ra, rb = self.reg(a.reg), self.reg(b.reg)
        self.emit(f"t = {ra}")
        self.emit(f"{ra} = {rb}")
        self.emit(f"{rb} = t")
        return True

    def _op_cmov(self, index: int, step) -> bool:
        dst, src = step.instruction.operands
        if type(dst) is not Reg or dst.size != 8 \
                or type(src) is not Reg or src.size != 8:
            return False
        condition = _COND_EXPR[step.instruction.condition]
        d, s = self.reg(dst.reg), self.reg(src.reg)
        self.emit(f"if {condition}:")
        self.emit(f"    {d} = {s}")
        return True

    def _op_set(self, index: int, step) -> bool:
        dst = step.instruction.operands[0]
        if type(dst) is not Reg:
            return False
        condition = _COND_EXPR[step.instruction.condition]
        d = self.reg(dst.reg)
        if dst.size >= 4:
            self.emit(f"{d} = 1 if {condition} else 0")
        else:
            keep = ~SIZE_MASKS[dst.size] & _M
            self.emit(f"{d} = ({d} & {keep}) | (1 if {condition} else 0)")
        return True

    def _op_leave(self, index: int, step) -> bool:
        rsp, rbp = self.reg(Register.RSP), self.reg(Register.RBP)
        self.emit(f"{rsp} = {rbp}")
        self.emit(f"rsp = {rsp}")
        self.stack_load("rsp", "v", index)
        self.emit(f"{rsp} = (rsp + 8) & {_M_LIT}")
        self.emit(f"{rbp} = v")
        return True

    # -- control-flow / special step kinds --------------------------------------
    def emit_step(self, index: int, step) -> None:
        kind = step.kind
        if kind == "op":
            if self.emit_op(index, step):
                self.native_steps += 1
            else:
                self.emit_generic(index, step)
            return
        if kind == "term_generic":
            self.emit_generic(index, step, terminal=True)
            return
        self.native_steps += 1
        if kind == "jmp_fused":
            return
        if kind == "ret_guard":
            rsp = self.reg(Register.RSP)
            self.emit(f"rsp = {rsp}")
            self.stack_load("rsp", "t", index)
            self.emit(f"{rsp} = (rsp + 8) & {_M_LIT}")
            self.emit(f"if t != {step.target}:")
            self.emit("    _S.rip = t")
            self.early_exit(index + 1)
            return
        if kind == "ret_final":
            rsp = self.reg(Register.RSP)
            self.emit(f"rsp = {rsp}")
            self.stack_load("rsp", "t", index)
            self.emit(f"{rsp} = (rsp + 8) & {_M_LIT}")
            self.emit("_S.rip = t")
            self.emit("break")
            return
        if kind == "call_fused" or kind == "call_term":
            rsp = self.reg(Register.RSP)
            self.emit(f"n = {index}")
            self.emit(f"rsp = ({rsp} - 8) & {_M_LIT}")
            self.emit(f"{rsp} = rsp")
            self.emit(f"_WQ(rsp, {step.post})")
            if kind == "call_fused":
                self.gen_check(index, step.target)
            else:
                self.emit(f"_S.rip = {step.target}")
                self.emit("break")
            return
        if kind == "jmp_imm":
            self.emit(f"_S.rip = {step.target}")
            self.emit("break")
            return
        if kind == "jcc_imm":
            condition = _COND_EXPR[step.instruction.condition]
            self.emit(f"_S.rip = {step.target} if {condition} else {step.post}")
            self.emit("break")
            return
        if kind == "hlt":
            self.emit(f"_S.rip = {step.post}")
            self.emit("_E.halted = True")
            self.emit("break")
            return
        raise ValueError(f"unknown trace step kind {kind!r}")

    def emit_generic(self, index: int, step, terminal: bool = False) -> None:
        """Run one instruction through the emulator's own handler.

        The hoisted state is flushed first so the handler sees the live
        architectural state, and reloaded after.  ``n`` is parked at
        ``-(index + 1)`` across the call: the exception epilogue then knows
        the state is already synced and must not write the (stale) locals
        back over whatever the handler did before faulting.  Terminal
        handlers likewise return directly, bypassing the shared writeback
        tail.
        """
        self.generic_steps += 1
        handler_name = f"_h{index}"
        instruction_name = f"_i{index}"
        self.bindings[handler_name] = step.handler
        self.bindings[instruction_name] = step.instruction
        self.emit(_WB)
        if terminal:
            self.emit(f"_S.rip = {step.post}")
        self.emit(f"n = {-(index + 1)}")
        self.emit(f"{handler_name}({instruction_name})")
        if terminal:
            # the handler ran on synced state and may have redirected rip;
            # the locals are stale, so finish without writing them back
            self.emit(f"_E.steps += {self.trace.length}")
            self.emit("return")
            return
        if _writes_memory(step.instruction):
            # state is synced (flushed above, mutated only by the handler),
            # so this early exit must also skip the writeback tail
            self.emit(f"if _RGN.generation != {self.trace.generation}:")
            self.emit(f"    _S.rip = {step.post}")
            self.emit(f"    _E.steps += {index + 1}")
            self.emit("    return")
        self.emit(_RELOAD)

    # -- assembly ---------------------------------------------------------------
    def _writeback_lines(self) -> List[str]:
        lines = [f"_R[_K_{reg.name}] = r_{reg.name.lower()}"
                 for reg in sorted(self.hoisted)]
        lines.extend(_FLAG_STORES)
        return lines

    def _reload_lines(self) -> List[str]:
        lines = [f"r_{reg.name.lower()} = _R[_K_{reg.name}]"
                 for reg in sorted(self.hoisted)]
        lines.extend(_FLAG_LOADS)
        return lines

    def source(self) -> str:
        trace = self.trace
        for index, step in enumerate(trace.steps):
            self.emit_step(index, step)
        if trace.final_rip is not None:
            self.emit(f"_S.rip = {trace.final_rip}")
            self.emit("break")

        writeback = self._writeback_lines()
        reload_ = self._reload_lines()
        body: List[str] = []
        for line in self.lines:
            stripped = line.strip()
            indent = line[: len(line) - len(stripped)]
            if stripped == _WB:
                body.extend(indent + entry for entry in writeback)
            elif stripped == _RELOAD:
                body.extend(indent + entry for entry in reload_)
            else:
                body.append(line)

        parameters = ["_S=_S", "_R=_R", "_E=_E", "_RD=_RD", "_WR=_WR",
                      "_RQ=_RQ", "_WQ=_WQ", "_RGN=_RGN", "_STK=_STK",
                      "_UQ=_UQ", "_EE=_EE", "_ME=_ME", "_PST=_PST"]
        parameters += [f"_K_{reg.name}=_K_{reg.name}"
                       for reg in sorted(self.hoisted)]
        parameters += [f"{name}={name}" for name in sorted(self.bindings)]

        prologue = ["def _trace(" + ", ".join(parameters) + "):"]
        prologue += ["    " + entry for entry in _FLAG_LOADS]
        prologue += [f"    r_{reg.name.lower()} = _R[_K_{reg.name}]"
                     for reg in sorted(self.hoisted)]
        prologue += ["    n = 0",
                     f"    ex = {trace.length}",
                     "    try:",
                     "        while True:"]

        repair = []
        for exception, raise_lines in ((" _ME as exc",
                                        ["raise _EE(str(exc)) from exc"]),
                                       (" _EE", ["raise"])):
            repair.append(f"    except{exception}:")
            repair.append("        if n < 0:")
            repair.append("            n = -1 - n")
            repair.append("        else:")
            repair.extend("            " + entry for entry in writeback)
            repair.append("        _E.steps += n")
            repair.append("        _S.rip = _PST[n]")
            repair.extend("        " + entry for entry in raise_lines)

        tail = ["    " + entry for entry in writeback]
        tail += ["    _E.steps += ex", "    return"]

        return "\n".join(prologue + body + repair + tail) + "\n"


def compile_trace(emulator, trace) -> Optional[object]:
    """Compile ``trace`` to an exec'd Python function, or None to decline.

    Declines when the generated code would mostly round-trip through generic
    handler calls (the flush/reload overhead then outweighs the saved
    dispatch, so the closure tier stays the better fit).
    """
    generator = _Codegen(trace, emulator)
    try:
        source = generator.source()
    # lint: allow-broad-except — any failure to *generate* source is a
    # decline, not an error: the trace simply stays on the closure tier,
    # which is always correct.  KeyboardInterrupt/SystemExit still pass.
    except Exception:
        return None
    if generator.generic_steps * 2 > len(trace.steps):
        return None
    namespace = {
        "_S": emulator.state,
        "_R": emulator.state.regs,
        "_E": emulator,
        "_RD": emulator.memory.read_int,
        "_WR": emulator.memory.write_int,
        "_RQ": emulator.memory.read_qword,
        "_WQ": emulator.memory.write_qword,
        "_RGN": trace.region,
        "_STK": trace.stack_region,
        "_UQ": _UNPACK_QWORD,
        "_EE": EmulationError,
        "_ME": MemoryError_,
        "_PST": tuple(trace.posts),
    }
    for register in generator.hoisted:
        namespace[f"_K_{register.name}"] = register
    namespace.update(generator.bindings)
    try:
        code = compile(source, f"<trace@{trace.entry:#x}>", "exec")
        exec(code, namespace)
    except SyntaxError:  # codegen bug: fall back to the closure tier
        return None
    stats = emulator.jit_stats
    stats.native_steps += generator.native_steps
    stats.generic_steps += generator.generic_steps
    function = namespace["_trace"]
    function.__source__ = source  # debugging: dump what actually runs
    return function


# -- semantic-contract registration -------------------------------------------
# The compiled tier's covered/declined split (see repro.cpu.semantics).
# Covered mnemonics name the emitter method(s) whose *emitted* flag
# assignments must match the contract (flag_style="emitted": the checker
# parses the source-text string literals passed to emit()).  Empty entries
# are emitted inline by emit_op (CQO, NOP) or by the terminal-step machinery
# in emit_step (control flow).  Shape-level declines inside an emitter
# (e.g. memory-operand XCHG) fall back to emit_generic per step and do not
# change the mnemonic-level claim; IDIV is the only mnemonic with no native
# emitter at all.
_semantics.register_tier(
    "codegen", __name__,
    covered={
        Mnemonic.MOV: "_op_mov",
        Mnemonic.MOVZX: "_op_mov",
        Mnemonic.MOVSX: "_op_movsx",
        Mnemonic.ADD: ("_op_alu", "_op_alu_mem"),
        Mnemonic.SUB: ("_op_alu", "_op_alu_mem"),
        Mnemonic.CMP: ("_op_alu", "_op_alu_mem"),
        Mnemonic.AND: ("_op_alu", "_op_alu_mem"),
        Mnemonic.OR: ("_op_alu", "_op_alu_mem"),
        Mnemonic.XOR: ("_op_alu", "_op_alu_mem"),
        Mnemonic.TEST: ("_op_alu", "_op_alu_mem"),
        Mnemonic.ADC: "_op_adc_sbb",
        Mnemonic.SBB: "_op_adc_sbb",
        Mnemonic.POP: "_op_pop",
        Mnemonic.PUSH: "_op_push",
        Mnemonic.LEA: "_op_lea",
        Mnemonic.INC: "_op_incdec",
        Mnemonic.DEC: "_op_incdec",
        Mnemonic.NEG: "_op_neg",
        Mnemonic.NOT: "_op_not",
        Mnemonic.SHL: "_op_shift",
        Mnemonic.SHR: "_op_shift",
        Mnemonic.SAR: "_op_shift",
        Mnemonic.IMUL: "_op_imul",
        Mnemonic.XCHG: "_op_xchg",
        Mnemonic.CMOV: "_op_cmov",
        Mnemonic.SET: "_op_set",
        Mnemonic.CQO: None,
        Mnemonic.LEAVE: "_op_leave",
        Mnemonic.NOP: None,
        Mnemonic.JMP: None,
        Mnemonic.JCC: None,
        Mnemonic.CALL: None,
        Mnemonic.RET: None,
        Mnemonic.HLT: None,
    },
    declined=(Mnemonic.IDIV,),
    flag_style="emitted")
