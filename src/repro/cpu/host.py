"""Host runtime functions available to emulated programs.

Compiled workloads call a small libc-like runtime (allocation, character
output, coverage probes).  These functions live at reserved addresses in the
``HOST_FUNCTION_BASE`` range and are executed natively by the emulator — they
play the role of the non-ROP library functions the paper's chains must
inter-operate with (Figure 4): a ROP function calling ``malloc`` exercises the
full stack-switching call protocol.
"""

from __future__ import annotations

from typing import Dict, List

from repro.binary.sections import HEAP_BASE, HEAP_SIZE, HOST_FUNCTION_BASE
from repro.isa.registers import ARG_REGISTERS

#: Sentinel return address used by :func:`repro.cpu.emulator.call_function`.
#: When control returns here the emulation of the call is complete.
EXIT_ADDRESS = HOST_FUNCTION_BASE + 0xF000

#: Spacing between host function slots; any address in a slot resolves to it.
_SLOT_SIZE = 0x10

#: Stable name -> slot index assignment for host functions.
HOST_FUNCTION_NAMES = (
    "malloc",
    "free",
    "putchar",
    "print_int",
    "puts",
    "memcpy",
    "memset",
    "strlen",
    "abort",
    "__probe",
    "__output",
)


def host_function_address(name: str) -> int:
    """Return the reserved address of host function ``name``."""
    try:
        index = HOST_FUNCTION_NAMES.index(name)
    except ValueError:
        raise KeyError(f"unknown host function {name!r}") from None
    return HOST_FUNCTION_BASE + index * _SLOT_SIZE


def is_host_address(address: int) -> bool:
    """True if ``address`` falls in the host function range."""
    return (HOST_FUNCTION_BASE <= address < HOST_FUNCTION_BASE
            + len(HOST_FUNCTION_NAMES) * _SLOT_SIZE) or address == EXIT_ADDRESS


class HostEnvironment:
    """State backing the host runtime: heap allocator, output, probes.

    Attributes:
        output: bytes written through ``putchar``/``puts``.
        int_output: values passed to ``print_int`` / ``__output``.
        probes: coverage probe identifiers hit through ``__probe`` (ordered).
        aborted: set when the program called ``abort``.
    """

    def __init__(self) -> None:
        self.heap_cursor = HEAP_BASE
        self.heap_limit = HEAP_BASE + HEAP_SIZE
        self.allocations: Dict[int, int] = {}
        self.output = bytearray()
        self.int_output: List[int] = []
        self.probes: List[int] = []
        self.aborted = False

    # -- individual host functions -------------------------------------
    def _malloc(self, emulator) -> int:
        size = emulator.state.read_reg(ARG_REGISTERS[0])
        size = max(8, (size + 7) & ~7)
        if self.heap_cursor + size > self.heap_limit:
            return 0
        address = self.heap_cursor
        self.heap_cursor += size
        self.allocations[address] = size
        return address

    def _free(self, emulator) -> int:
        address = emulator.state.read_reg(ARG_REGISTERS[0])
        self.allocations.pop(address, None)
        return 0

    def _putchar(self, emulator) -> int:
        value = emulator.state.read_reg(ARG_REGISTERS[0], 1)
        self.output.append(value)
        return value

    def _print_int(self, emulator) -> int:
        value = emulator.state.read_reg(ARG_REGISTERS[0])
        self.int_output.append(value)
        self.output += str(value).encode() + b"\n"
        return 0

    def _puts(self, emulator) -> int:
        address = emulator.state.read_reg(ARG_REGISTERS[0])
        self.output += emulator.memory.read_cstring(address) + b"\n"
        return 0

    def _memcpy(self, emulator) -> int:
        dst = emulator.state.read_reg(ARG_REGISTERS[0])
        src = emulator.state.read_reg(ARG_REGISTERS[1])
        count = emulator.state.read_reg(ARG_REGISTERS[2])
        emulator.memory.write(dst, emulator.memory.read(src, count))
        return dst

    def _memset(self, emulator) -> int:
        dst = emulator.state.read_reg(ARG_REGISTERS[0])
        value = emulator.state.read_reg(ARG_REGISTERS[1], 1)
        count = emulator.state.read_reg(ARG_REGISTERS[2])
        emulator.memory.write(dst, bytes([value]) * count)
        return dst

    def _strlen(self, emulator) -> int:
        address = emulator.state.read_reg(ARG_REGISTERS[0])
        return len(emulator.memory.read_cstring(address))

    def _abort(self, emulator) -> int:
        self.aborted = True
        emulator.halted = True
        return 0

    def _probe(self, emulator) -> int:
        probe_id = emulator.state.read_reg(ARG_REGISTERS[0])
        self.probes.append(probe_id)
        return 0

    def _output(self, emulator) -> int:
        value = emulator.state.read_reg(ARG_REGISTERS[0])
        self.int_output.append(value)
        return 0

    #: address -> handler method name, shared by every instance.  The
    #: emulator resolves the name against the *current* host per call, so
    #: swapping hosts on a snapshot restore costs nothing and subclass
    #: overrides keep working.
    DISPATCH: Dict[int, str] = {}

    def fork(self) -> "HostEnvironment":
        """Return an independent copy of the host state.

        Everything the host tracks (allocator cursor, allocation table,
        output buffers, probe log) is small and flat, so forking is a few
        shallow copies — the host half of the O(1) emulator snapshots.
        """
        clone = HostEnvironment()
        clone.heap_cursor = self.heap_cursor
        clone.heap_limit = self.heap_limit
        clone.allocations = dict(self.allocations)
        clone.output = bytearray(self.output)
        clone.int_output = list(self.int_output)
        clone.probes = list(self.probes)
        clone.aborted = self.aborted
        return clone

    def reset_observations(self) -> None:
        """Clear output and probe records (heap state is preserved)."""
        self.output = bytearray()
        self.int_output = []
        self.probes = []
        self.aborted = False


HostEnvironment.DISPATCH = {
    host_function_address(name): method
    for name, method in (
        ("malloc", "_malloc"),
        ("free", "_free"),
        ("putchar", "_putchar"),
        ("print_int", "_print_int"),
        ("puts", "_puts"),
        ("memcpy", "_memcpy"),
        ("memset", "_memset"),
        ("strlen", "_strlen"),
        ("abort", "_abort"),
        ("__probe", "_probe"),
        ("__output", "_output"),
    )
}
