"""Virtualization obfuscation: bytecode plus a generated interpreter (§II-A).

``virtualize_function`` compiles a mini-C function to randomized bytecode
(:mod:`repro.obfuscation.bytecode`) and replaces its body with a generated
interpreter: a fetch/dispatch loop over a virtual program counter with one
handler per opcode.  Layers can be nested by virtualizing the interpreter
again (``nVM``); optionally the VPC updates of chosen layers use implicit
flows (``nVM-IMPx``).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.lang.ast import (
    Assign,
    BinOp,
    Call,
    Const,
    Expr,
    Function,
    GlobalArray,
    If,
    Load,
    Program,
    Return,
    Stmt,
    Store,
    UnOp,
    Var,
    While,
)
from repro.obfuscation.bytecode import BytecodeProgram, compile_to_bytecode
from repro.obfuscation.implicit_flow import direct_assign, implicit_assign

#: Depth (in 8-byte slots) of the interpreter's operand stack.
VM_STACK_SLOTS = 64

_MASK64 = (1 << 64) - 1


def _slot(array: str, index_expr: Expr) -> Expr:
    return BinOp("+", Var(array), BinOp("*", index_expr, Const(8)))


class _InterpreterBuilder:
    """Generates the interpreter function for one bytecode program."""

    def __init__(self, function: Function, bytecode: BytecodeProgram,
                 code_global: str, implicit_vpc: bool, suffix: str = "") -> None:
        self.function = function
        self.bytecode = bytecode
        self.code_global = code_global
        self.implicit_vpc = implicit_vpc
        self._implicit_counter = 0
        # interpreter-owned arrays get a per-layer suffix so nested
        # virtualization does not collide with the inner layer's arrays
        self.locals_array = f"__vm_locals{suffix}"
        self.stack_array = f"__vm_stack{suffix}"

    # -- helpers --------------------------------------------------------------
    def _set_vpc(self, value: Expr) -> List[Stmt]:
        if self.implicit_vpc:
            self._implicit_counter += 1
            return implicit_assign("__vpc", value, prefix=f"__imp{self._implicit_counter}")
        return direct_assign("__vpc", value)

    def _push(self, value: Expr) -> List[Stmt]:
        return [
            Store(_slot(self.stack_array, Var("__sp")), value, 8),
            Assign("__sp", BinOp("+", Var("__sp"), Const(1))),
        ]

    def _pop(self, destination: str) -> List[Stmt]:
        return [
            Assign("__sp", BinOp("-", Var("__sp"), Const(1))),
            Assign(destination, Load(_slot(self.stack_array, Var("__sp")), 8)),
        ]

    def _operand_u32(self) -> List[Stmt]:
        return [
            Assign("__arg", Load(BinOp("+", Var(self.code_global), Var("__vpc")), 4)),
            Assign("__vpc", BinOp("+", Var("__vpc"), Const(4))),
        ]

    def _operand_u64(self) -> List[Stmt]:
        return [
            Assign("__arg", Load(BinOp("+", Var(self.code_global), Var("__vpc")), 8)),
            Assign("__vpc", BinOp("+", Var("__vpc"), Const(8))),
        ]

    # -- opcode handlers --------------------------------------------------------
    def _handler(self, operation: str) -> List[Stmt]:
        binops = {
            "add": "+", "sub": "-", "mul": "*", "div": "/", "mod": "%",
            "and": "&", "or": "|", "xor": "^", "shl": "<<", "shr": ">>",
            "eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
        }
        unops = {"neg": "-", "not": "~", "lnot": "!"}
        if operation == "push":
            return self._operand_u64() + self._push(Var("__arg"))
        if operation == "load_local":
            return self._operand_u32() + self._push(Load(_slot(self.locals_array, Var("__arg")), 8))
        if operation == "store_local":
            return self._operand_u32() + self._pop("__val") + [
                Store(_slot(self.locals_array, Var("__arg")), Var("__val"), 8)]
        if operation.startswith("load_mem"):
            size = int(operation[len("load_mem"):])
            return self._pop("__addr") + self._push(Load(Var("__addr"), size))
        if operation.startswith("store_mem"):
            size = int(operation[len("store_mem"):])
            return self._pop("__val") + self._pop("__addr") + [
                Store(Var("__addr"), Var("__val"), size)]
        if operation == "addr_array":
            body = self._operand_u32()
            chain: List[Stmt] = []
            for index, name in enumerate(self.bytecode.arrays):
                chain.append(If(BinOp("==", Var("__arg"), Const(index)),
                                self._push(Var(name))))
            return body + chain
        if operation == "addr_global":
            body = self._operand_u32()
            chain = []
            for index, name in enumerate(self.bytecode.globals_used):
                chain.append(If(BinOp("==", Var("__arg"), Const(index)),
                                self._push(Var(name))))
            return body + chain
        if operation in binops:
            return (self._pop("__rhs") + self._pop("__lhs")
                    + self._push(BinOp(binops[operation], Var("__lhs"), Var("__rhs"))))
        if operation in unops:
            return self._pop("__lhs") + self._push(UnOp(unops[operation], Var("__lhs")))
        if operation == "jmp":
            return self._operand_u32() + self._set_vpc(Var("__arg"))
        if operation == "jz":
            return (self._operand_u32() + self._pop("__val")
                    + [If(BinOp("==", Var("__val"), Const(0)), self._set_vpc(Var("__arg")))])
        if operation == "pop":
            return self._pop("__val")
        if operation == "probe":
            return self._operand_u32() + [ExprProbe(Var("__arg"))]
        if operation == "ret":
            return self._pop("__val") + [Return(Var("__val"))]
        if operation == "call":
            body = self._operand_u32()
            chain = []
            for index, site in enumerate(self.bytecode.call_sites):
                case: List[Stmt] = []
                argument_names = []
                for position in reversed(range(site.arg_count)):
                    name = f"__a{position}"
                    case += self._pop(name)
                    argument_names.insert(0, name)
                case.append(Assign("__val", Call(site.name,
                                                 [Var(n) for n in argument_names])))
                case += self._push(Var("__val"))
                chain.append(If(BinOp("==", Var("__arg"), Const(index)), case))
            return body + chain
        raise ValueError(f"no handler for operation {operation!r}")

    # -- whole interpreter --------------------------------------------------------
    def build(self) -> Function:
        bytecode = self.bytecode
        body: List[Stmt] = []
        for param in self.function.params:
            body.append(Store(_slot(self.locals_array, Const(bytecode.locals_map[param])),
                              Var(param), 8))
        body.append(Assign("__vpc", Const(0)))
        body.append(Assign("__sp", Const(0)))

        dispatch: List[Stmt] = [
            Assign("__op", Load(BinOp("+", Var(self.code_global), Var("__vpc")), 1)),
            Assign("__vpc", BinOp("+", Var("__vpc"), Const(1))),
        ]
        # opcode handlers, dispatched through an if-chain over the randomized
        # opcode bytes (one randomly generated "architecture" per function)
        chain: Optional[If] = None
        for operation, opcode in sorted(bytecode.opcode_map.items(), key=lambda kv: kv[1]):
            handler = self._handler(operation)
            node = If(BinOp("==", Var("__op"), Const(opcode)), handler)
            if chain is None:
                dispatch.append(node)
                chain = node
            else:
                chain.else_body = [node]
                chain = node
        body.append(While(Const(1), dispatch))

        locals_size = 8 * max(1, len(bytecode.locals_map))
        arrays = dict(bytecode.arrays)
        arrays[self.locals_array] = locals_size
        arrays[self.stack_array] = 8 * VM_STACK_SLOTS
        return Function(name=self.function.name, params=list(self.function.params),
                        body=body, local_arrays=arrays)


def ExprProbe(value: Expr) -> Stmt:
    """Forward a probe identifier read from bytecode to the probe host call."""
    from repro.lang.ast import ExprStmt

    return ExprStmt(Call("__probe", [value]))


def virtualize_function(function: Function, known_globals: Sequence[str],
                        implicit_vpc: bool = False,
                        seed: int = 0) -> Tuple[Function, List[GlobalArray]]:
    """Virtualize one function.

    Returns the interpreter function (same name and parameters) plus the new
    global arrays (the bytecode) that must be added to the program.
    """
    rng = random.Random(seed)
    bytecode = compile_to_bytecode(function, list(known_globals), rng)
    suffix = f"_{rng.randrange(1 << 16)}"
    code_global = f"__vm_code_{function.name}{suffix}"
    builder = _InterpreterBuilder(function, bytecode, code_global, implicit_vpc, suffix)
    interpreter = builder.build()
    globals_ = [GlobalArray(code_global, len(bytecode.code), initial=bytecode.code)]
    return interpreter, globals_


def virtualize_program(program: Program, function_names: Iterable[str],
                       layers: int = 1, implicit: str = "none",
                       seed: int = 0) -> Program:
    """Apply ``layers`` of VM obfuscation to the named functions of a program.

    Args:
        program: the program to obfuscate (not modified).
        function_names: functions to virtualize.
        layers: number of nested virtualization layers (``nVM``).
        implicit: which layers use implicit VPC updates: ``"none"``,
            ``"first"`` (innermost), ``"last"`` (outermost) or ``"all"``.
        seed: randomness seed (a fresh bytecode ISA per function and layer).
    """
    if implicit not in ("none", "first", "last", "all"):
        raise ValueError(f"invalid implicit setting {implicit!r}")
    functions = {f.name: f for f in program.functions}
    new_globals = list(program.globals)
    known = [g.name for g in program.globals]
    rng = random.Random(seed)
    for name in function_names:
        function = functions[name]
        for layer in range(1, layers + 1):
            layer_implicit = (
                implicit == "all"
                or (implicit == "first" and layer == 1)
                or (implicit == "last" and layer == layers)
            )
            function, globals_ = virtualize_function(
                function, known, implicit_vpc=layer_implicit,
                seed=rng.getrandbits(32))
            for array in globals_:
                new_globals.append(array)
                known.append(array.name)
        functions[name] = function
    return Program(functions=[functions[f.name] for f in program.functions],
                   globals=new_globals)
