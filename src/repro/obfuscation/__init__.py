"""Baseline obfuscations the paper compares against (Tigress analogs).

* :mod:`repro.obfuscation.vm` — virtualization obfuscation: the function is
  compiled to a randomly-encoded bytecode and replaced by a generated
  interpreter; layers can be nested (``nVM``).
* :mod:`repro.obfuscation.implicit_flow` — implicit virtual-program-counter
  updates (``nVM-IMPx``) that frustrate taint tracking and inflate the state
  space when the VPC becomes symbolic.
* :mod:`repro.obfuscation.flattening` — control-flow flattening.
* :mod:`repro.obfuscation.configs` — the named configurations of Table I,
  extended with the protection-profile axis (``ROP1.00+OC``,
  ``ROP1.00+OC+IH``): ROPfuscator-style opaque-constant and
  instruction-hiding layers stacked on top of the strongest ROP row (see
  :mod:`repro.core.predicates.opaque` / :mod:`repro.core.predicates.hiding`
  and :data:`repro.core.config.PROTECTION_PROFILES`).
"""

from repro.obfuscation.vm import virtualize_function, virtualize_program
from repro.obfuscation.flattening import flatten_function
from repro.obfuscation.configs import (
    NATIVE,
    ObfuscationConfig,
    ROPK_SWEEP,
    TABLE2_CONFIGURATIONS,
    apply_configuration,
    nvm,
    ropk,
)

__all__ = [
    "virtualize_function",
    "virtualize_program",
    "flatten_function",
    "ObfuscationConfig",
    "apply_configuration",
    "NATIVE",
    "ropk",
    "nvm",
    "TABLE2_CONFIGURATIONS",
    "ROPK_SWEEP",
]
