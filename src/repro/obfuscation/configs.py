"""Named obfuscation configurations (Table I).

:func:`apply_configuration` maps a configuration name (``NATIVE``, ``ROPk``,
``nVM``, ``nVM-IMPx``) to the corresponding transformation of a mini-C
program, producing a ready-to-run binary image.  The evaluation harness and
the benchmarks build every experiment on top of this registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.binary.image import BinaryImage
from repro.compiler import compile_program
from repro.core import RopConfig, rop_obfuscate
from repro.lang.ast import Program
from repro.obfuscation.vm import virtualize_program


@dataclass(frozen=True)
class ObfuscationConfig:
    """A named point in the obfuscation configuration space of Table I.

    Attributes:
        name: display name (e.g. ``"ROP0.25"``, ``"2VM-IMPlast"``).
        kind: ``"native"``, ``"rop"`` or ``"vm"``.
        rop_k: P3 fraction for ROP configurations.
        vm_layers: number of nested VM layers for VM configurations.
        vm_implicit: implicit-VPC placement (``none``/``first``/``last``/``all``).
    """

    name: str
    kind: str
    rop_k: float = 0.0
    vm_layers: int = 0
    vm_implicit: str = "none"


def ropk(k: float) -> ObfuscationConfig:
    """The ``ROPk`` configuration of Table I."""
    return ObfuscationConfig(name=f"ROP{k:.2f}", kind="rop", rop_k=k)


def nvm(layers: int, implicit: str = "none") -> ObfuscationConfig:
    """The ``nVM`` / ``nVM-IMPx`` configurations of Table I."""
    suffix = "" if implicit == "none" else f"-IMP{implicit}"
    return ObfuscationConfig(name=f"{layers}VM{suffix}", kind="vm",
                             vm_layers=layers, vm_implicit=implicit)


NATIVE = ObfuscationConfig(name="NATIVE", kind="native")

#: The configurations evaluated in Table II, in presentation order.
TABLE2_CONFIGURATIONS: Tuple[ObfuscationConfig, ...] = (
    NATIVE,
    ropk(0.05), ropk(0.25), ropk(0.50), ropk(0.75), ropk(1.00),
    nvm(1, "all"),
    nvm(2), nvm(2, "first"), nvm(2, "last"), nvm(2, "all"),
    nvm(3), nvm(3, "first"), nvm(3, "last"), nvm(3, "all"),
)

#: The ROP configurations swept in Table III and Figure 5.
ROPK_SWEEP: Tuple[float, ...] = (0.0, 0.05, 0.25, 0.50, 0.75, 1.00)


def apply_configuration(program: Program, function_names: Iterable[str],
                        configuration: ObfuscationConfig,
                        seed: int = 1) -> BinaryImage:
    """Compile ``program`` under ``configuration`` and return the binary image.

    ROP configurations compile first and then run the binary rewriter; VM
    configurations transform the AST first (as Tigress does on source code)
    and then compile.
    """
    names = list(function_names)
    if configuration.kind == "native":
        return compile_program(program)
    if configuration.kind == "vm":
        transformed = virtualize_program(program, names, layers=configuration.vm_layers,
                                         implicit=configuration.vm_implicit, seed=seed)
        return compile_program(transformed)
    if configuration.kind == "rop":
        image = compile_program(program)
        config = RopConfig.ropk(configuration.rop_k, seed=seed)
        obfuscated, report = rop_obfuscate(image, names, config)
        obfuscated.metadata["rop_report"] = report
        return obfuscated
    raise ValueError(f"unknown configuration kind {configuration.kind!r}")
