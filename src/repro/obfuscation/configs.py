"""Named obfuscation configurations (Table I).

:func:`apply_configuration` maps a configuration name (``NATIVE``, ``ROPk``,
``nVM``, ``nVM-IMPx``) to the corresponding transformation of a mini-C
program, producing a ready-to-run binary image.  The evaluation harness and
the benchmarks build every experiment on top of this registry.

Beyond the paper's own rows, the registry exposes a *protection profile*
axis on the ROP configurations (ROPfuscator's robustness/overhead table):
``ROP1.00+OC`` layers opaque-constant materialization on top of ``ROP1.00``
and ``ROP1.00+OC+IH`` additionally hides instruction lowerings inside opaque
predicate bodies (see :mod:`repro.core.predicates.opaque` and
:mod:`repro.core.predicates.hiding`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.binary.image import BinaryImage
from repro.compiler import compile_program
from repro.core import RopConfig, rop_obfuscate
from repro.core.config import PROTECTION_PROFILES, ProtectionProfile
from repro.lang.ast import Program
from repro.obfuscation.vm import virtualize_program


@dataclass(frozen=True)
class ObfuscationConfig:
    """A named point in the obfuscation configuration space of Table I.

    Attributes:
        name: display name (e.g. ``"ROP0.25"``, ``"2VM-IMPlast"``).
        kind: ``"native"``, ``"rop"`` or ``"vm"``.
        rop_k: P3 fraction for ROP configurations.
        vm_layers: number of nested VM layers for VM configurations.
        vm_implicit: implicit-VPC placement (``none``/``first``/``last``/``all``).
        profile: protection profile applied on top of a ROP configuration
            (a key of :data:`repro.core.config.PROTECTION_PROFILES`, empty
            for the paper's plain rows).
    """

    name: str
    kind: str
    rop_k: float = 0.0
    vm_layers: int = 0
    vm_implicit: str = "none"
    profile: str = ""


def ropk(k: float, profile: str = "") -> ObfuscationConfig:
    """The ``ROPk`` configuration of Table I, optionally under a profile."""
    suffix = PROTECTION_PROFILES[profile].suffix if profile else ""
    return ObfuscationConfig(name=f"ROP{k:.2f}{suffix}", kind="rop",
                             rop_k=k, profile=profile)


def nvm(layers: int, implicit: str = "none") -> ObfuscationConfig:
    """The ``nVM`` / ``nVM-IMPx`` configurations of Table I."""
    suffix = "" if implicit == "none" else f"-IMP{implicit}"
    return ObfuscationConfig(name=f"{layers}VM{suffix}", kind="vm",
                             vm_layers=layers, vm_implicit=implicit)


NATIVE = ObfuscationConfig(name="NATIVE", kind="native")

#: The configurations evaluated in Table II, in presentation order.  The two
#: trailing rows extend the paper's table with the protection-profile axis:
#: the strongest ROP row plus opaque constants, and plus instruction hiding.
TABLE2_CONFIGURATIONS: Tuple[ObfuscationConfig, ...] = (
    NATIVE,
    ropk(0.05), ropk(0.25), ropk(0.50), ropk(0.75), ropk(1.00),
    nvm(1, "all"),
    nvm(2), nvm(2, "first"), nvm(2, "last"), nvm(2, "all"),
    nvm(3), nvm(3, "first"), nvm(3, "last"), nvm(3, "all"),
    ropk(1.00, profile="opaque"), ropk(1.00, profile="full"),
)

#: The ROP configurations swept in Table III and Figure 5.
ROPK_SWEEP: Tuple[float, ...] = (0.0, 0.05, 0.25, 0.50, 0.75, 1.00)


def apply_configuration(program: Program, function_names: Iterable[str],
                        configuration: ObfuscationConfig,
                        seed: int = 1,
                        function_profiles: Optional[
                            Dict[str, Union[str, ProtectionProfile]]] = None,
                        ) -> BinaryImage:
    """Compile ``program`` under ``configuration`` and return the binary image.

    ROP configurations compile first and then run the binary rewriter; VM
    configurations transform the AST first (as Tigress does on source code)
    and then compile.  ``configuration.profile`` applies a protection
    profile whole-program; ``function_profiles`` overrides it per function
    (ROPfuscator-style annotations).
    """
    names = list(function_names)
    if configuration.kind == "native":
        return compile_program(program)
    if configuration.kind == "vm":
        transformed = virtualize_program(program, names, layers=configuration.vm_layers,
                                         implicit=configuration.vm_implicit, seed=seed)
        return compile_program(transformed)
    if configuration.kind == "rop":
        image = compile_program(program)
        config = RopConfig.ropk(configuration.rop_k, seed=seed)
        if configuration.profile:
            config = PROTECTION_PROFILES[configuration.profile].apply(config)
        obfuscated, report = rop_obfuscate(image, names, config,
                                           profiles=function_profiles)
        obfuscated.metadata["rop_report"] = report
        return obfuscated
    raise ValueError(f"unknown configuration kind {configuration.kind!r}")
