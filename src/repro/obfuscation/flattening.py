"""Control-flow flattening (§II-A).

The function body is decomposed into numbered states driven by a single
dispatcher loop: every structured statement becomes one or more states that
set the next state explicitly, collapsing the original CFG into one layer
below a dispatcher — the classic Wang/Chow construction the paper lists among
heavy-duty transformations.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.lang.ast import (
    Assign,
    BinOp,
    Break,
    Const,
    Continue,
    Function,
    If,
    Probe,
    Return,
    Stmt,
    Switch,
    Var,
    While,
)

#: State value meaning "leave the dispatcher loop".
EXIT_STATE = 0xFFFF


class _Flattener:
    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.states: Dict[int, List[Stmt]] = {}
        self._counter = 0
        self._loops: List[tuple] = []

    def new_state(self) -> int:
        self._counter += 1
        return self._counter

    def _set_state(self, value: int) -> Stmt:
        return Assign("__state", Const(value))

    def flatten_body(self, body: List[Stmt], next_state: int) -> int:
        """Flatten ``body``; returns its entry state."""
        if not body:
            return next_state
        entry = None
        follow = next_state
        # process statements in reverse so each one knows its successor state
        states_needed = [self.new_state() for _ in body]
        for index in reversed(range(len(body))):
            successor = states_needed[index + 1] if index + 1 < len(body) else next_state
            self.flatten_statement(body[index], states_needed[index], successor)
        entry = states_needed[0]
        return entry

    def flatten_statement(self, statement: Stmt, state: int, next_state: int) -> None:
        if isinstance(statement, If):
            then_entry = self.flatten_body(statement.then_body, next_state)
            else_entry = self.flatten_body(statement.else_body, next_state) \
                if statement.else_body else next_state
            self.states[state] = [
                If(statement.condition,
                   [self._set_state(then_entry)],
                   [self._set_state(else_entry)]),
            ]
            return
        if isinstance(statement, While):
            body_entry_state = self.new_state()
            check_state = self.new_state()
            self.states[state] = [self._set_state(check_state)]
            self.states[check_state] = [
                If(statement.condition,
                   [self._set_state(body_entry_state)],
                   [self._set_state(next_state)]),
            ]
            self._loops.append((check_state, next_state))
            body_entry = self.flatten_body(statement.body, check_state)
            self._loops.pop()
            self.states[body_entry_state] = [self._set_state(body_entry)]
            return
        if isinstance(statement, Break):
            if not self._loops:
                raise ValueError("break outside of a loop")
            self.states[state] = [self._set_state(self._loops[-1][1])]
            return
        if isinstance(statement, Continue):
            if not self._loops:
                raise ValueError("continue outside of a loop")
            self.states[state] = [self._set_state(self._loops[-1][0])]
            return
        if isinstance(statement, Return):
            self.states[state] = [statement]
            return
        # simple statements (Assign, Store, ExprStmt, Probe, Switch, For kept whole)
        self.states[state] = [statement, self._set_state(next_state)]


def flatten_function(function: Function, seed: int = 0) -> Function:
    """Return a control-flow-flattened copy of ``function``."""
    from repro.compiler.normalize import normalize_function

    normalized = normalize_function(function)
    flattener = _Flattener(random.Random(seed))
    entry = flattener.flatten_body(normalized.body, EXIT_STATE)

    dispatcher: List[Stmt] = [Assign("__state", Const(entry))]
    cases = {value: statements for value, statements in flattener.states.items()}
    loop_body: List[Stmt] = [
        If(BinOp("==", Var("__state"), Const(EXIT_STATE)), [Return(Const(0))]),
        Switch(Var("__state"), cases, default=[Return(Const(0))]),
    ]
    dispatcher.append(While(Const(1), loop_body))
    return Function(name=normalized.name, params=list(normalized.params),
                    body=dispatcher, local_arrays=dict(normalized.local_arrays))
