"""Bytecode compiler used by the virtualization obfuscation.

Mini-C function bodies are lowered to a stack-machine bytecode with a
randomly assigned opcode encoding (a fresh instruction set is generated for
every virtualized function, one of the strengths of VM obfuscation the paper
lists in §II-A).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compiler.normalize import normalize_function
from repro.lang.ast import (
    Assign,
    BinOp,
    Break,
    Call,
    Const,
    Continue,
    Expr,
    ExprStmt,
    Function,
    If,
    Load,
    Probe,
    Return,
    Stmt,
    Store,
    Switch,
    UnOp,
    Var,
    While,
)

_MASK64 = (1 << 64) - 1

#: Abstract operation names; each virtualized function maps them to random
#: opcode bytes.
OPERATIONS = (
    "push", "load_local", "store_local", "load_mem1", "load_mem2", "load_mem4",
    "load_mem8", "store_mem1", "store_mem2", "store_mem4", "store_mem8",
    "addr_array", "addr_global",
    "add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr",
    "eq", "ne", "lt", "le", "gt", "ge",
    "neg", "not", "lnot",
    "jmp", "jz", "pop", "probe", "ret", "call",
)

_BINOPS = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
    "==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
}
_UNOPS = {"-": "neg", "~": "not", "!": "lnot"}


class VirtualizeError(Exception):
    """Raised when a function cannot be virtualized."""


@dataclass
class CallSite:
    """A distinct (callee, argument count) pair used by ``call`` instructions."""

    name: str
    arg_count: int


@dataclass
class BytecodeProgram:
    """The result of compiling one function to bytecode.

    Attributes:
        code: the encoded bytecode.
        opcode_map: operation name -> randomly chosen opcode byte.
        locals_map: scalar variable name -> locals-array slot index.
        arrays: original local arrays (kept as interpreter locals).
        globals_used: global names referenced through ``addr_global``.
        call_sites: distinct call targets, indexed by ``call`` operands.
    """

    code: bytes
    opcode_map: Dict[str, int]
    locals_map: Dict[str, int]
    arrays: Dict[str, int]
    globals_used: List[str]
    call_sites: List[CallSite]


class _BytecodeBuilder:
    def __init__(self, function: Function, known_globals: List[str], rng: random.Random) -> None:
        self.function = function
        self.known_globals = set(known_globals)
        self.rng = rng
        opcodes = list(range(1, 256))
        rng.shuffle(opcodes)
        self.opcode_map = {name: opcodes[i] for i, name in enumerate(OPERATIONS)}
        self.locals_map: Dict[str, int] = {}
        self.globals_used: List[str] = []
        self.call_sites: List[CallSite] = []
        self.code = bytearray()
        self._fixups: List[Tuple[int, int]] = []  # (position, label id)
        self._labels: Dict[int, int] = {}
        self._label_counter = 0
        self._loops: List[Tuple[int, int]] = []

    # -- low level emission ---------------------------------------------------
    def _emit_op(self, name: str) -> None:
        self.code.append(self.opcode_map[name])

    def _emit_u64(self, value: int) -> None:
        self.code += (value & _MASK64).to_bytes(8, "little")

    def _emit_u32(self, value: int) -> None:
        self.code += (value & 0xFFFFFFFF).to_bytes(4, "little")

    def _new_label(self) -> int:
        self._label_counter += 1
        return self._label_counter

    def _place(self, label: int) -> None:
        self._labels[label] = len(self.code)

    def _emit_jump(self, op: str, label: int) -> None:
        self._emit_op(op)
        self._fixups.append((len(self.code), label))
        self._emit_u32(0)

    def _local(self, name: str) -> int:
        if name not in self.locals_map:
            self.locals_map[name] = len(self.locals_map)
        return self.locals_map[name]

    def _global_index(self, name: str) -> int:
        if name not in self.globals_used:
            self.globals_used.append(name)
        return self.globals_used.index(name)

    def _call_index(self, name: str, argc: int) -> int:
        for index, site in enumerate(self.call_sites):
            if site.name == name and site.arg_count == argc:
                return index
        self.call_sites.append(CallSite(name, argc))
        return len(self.call_sites) - 1

    # -- expressions ------------------------------------------------------------
    def expr(self, node: Expr) -> None:
        if isinstance(node, Const):
            self._emit_op("push")
            self._emit_u64(node.value)
            return
        if isinstance(node, Var):
            if node.name in self.function.local_arrays:
                self._emit_op("addr_array")
                self._emit_u32(self._array_index(node.name))
                return
            if node.name in self.known_globals:
                self._emit_op("addr_global")
                self._emit_u32(self._global_index(node.name))
                return
            self._emit_op("load_local")
            self._emit_u32(self._local(node.name))
            return
        if isinstance(node, BinOp):
            self.expr(node.left)
            self.expr(node.right)
            self._emit_op(_BINOPS[node.op])
            return
        if isinstance(node, UnOp):
            self.expr(node.operand)
            self._emit_op(_UNOPS[node.op])
            return
        if isinstance(node, Load):
            self.expr(node.address)
            if node.size not in (1, 2, 4, 8):
                raise VirtualizeError(f"unsupported load size {node.size}")
            self._emit_op(f"load_mem{node.size}")
            return
        if isinstance(node, Call):
            for argument in node.args:
                self.expr(argument)
            self._emit_op("call")
            self._emit_u32(self._call_index(node.name, len(node.args)))
            return
        raise VirtualizeError(f"cannot virtualize expression {node!r}")

    def _array_index(self, name: str) -> int:
        return list(self.function.local_arrays).index(name)

    # -- statements --------------------------------------------------------------
    def statement(self, node: Stmt) -> None:
        if isinstance(node, Assign):
            self.expr(node.value)
            self._emit_op("store_local")
            self._emit_u32(self._local(node.name))
            return
        if isinstance(node, Store):
            self.expr(node.address)
            self.expr(node.value)
            if node.size not in (1, 2, 4, 8):
                raise VirtualizeError(f"unsupported store size {node.size}")
            self._emit_op(f"store_mem{node.size}")
            return
        if isinstance(node, ExprStmt):
            self.expr(node.expr)
            self._emit_op("pop")
            return
        if isinstance(node, Probe):
            self._emit_op("probe")
            self._emit_u32(node.probe_id)
            return
        if isinstance(node, Return):
            if node.value is None:
                self._emit_op("push")
                self._emit_u64(0)
            else:
                self.expr(node.value)
            self._emit_op("ret")
            return
        if isinstance(node, If):
            else_label = self._new_label()
            end_label = self._new_label()
            self.expr(node.condition)
            self._emit_jump("jz", else_label)
            for inner in node.then_body:
                self.statement(inner)
            self._emit_jump("jmp", end_label)
            self._place(else_label)
            for inner in node.else_body:
                self.statement(inner)
            self._place(end_label)
            return
        if isinstance(node, While):
            head = self._new_label()
            end = self._new_label()
            self._place(head)
            self.expr(node.condition)
            self._emit_jump("jz", end)
            self._loops.append((head, end))
            for inner in node.body:
                self.statement(inner)
            self._loops.pop()
            self._emit_jump("jmp", head)
            self._place(end)
            return
        if isinstance(node, Break):
            if not self._loops:
                raise VirtualizeError("break outside of a loop")
            self._emit_jump("jmp", self._loops[-1][1])
            return
        if isinstance(node, Continue):
            if not self._loops:
                raise VirtualizeError("continue outside of a loop")
            self._emit_jump("jmp", self._loops[-1][0])
            return
        if isinstance(node, Switch):
            selector = "__vm_switch_sel"
            self.expr(node.selector)
            self._emit_op("store_local")
            self._emit_u32(self._local(selector))
            end = self._new_label()
            for value, body in node.cases.items():
                skip = self._new_label()
                self._emit_op("load_local")
                self._emit_u32(self._local(selector))
                self._emit_op("push")
                self._emit_u64(value)
                self._emit_op("eq")
                self._emit_jump("jz", skip)
                for inner in body:
                    self.statement(inner)
                self._emit_jump("jmp", end)
                self._place(skip)
            for inner in node.default:
                self.statement(inner)
            self._place(end)
            return
        raise VirtualizeError(f"cannot virtualize statement {node!r}")

    # -- top level ------------------------------------------------------------------
    def build(self) -> BytecodeProgram:
        for statement in self.function.body:
            self.statement(statement)
        # implicit return 0
        self._emit_op("push")
        self._emit_u64(0)
        self._emit_op("ret")
        for position, label in self._fixups:
            target = self._labels[label]
            self.code[position:position + 4] = target.to_bytes(4, "little")
        return BytecodeProgram(
            code=bytes(self.code),
            opcode_map=dict(self.opcode_map),
            locals_map=dict(self.locals_map),
            arrays=dict(self.function.local_arrays),
            globals_used=list(self.globals_used),
            call_sites=list(self.call_sites),
        )


def compile_to_bytecode(function: Function, known_globals: List[str],
                        rng: Optional[random.Random] = None) -> BytecodeProgram:
    """Compile ``function`` (normalized first) into randomized bytecode.

    ``known_globals`` lists the global array names the function may reference
    so the builder can distinguish them from scalar locals.
    """
    normalized = normalize_function(function)
    # parameters become the first locals, in order
    builder = _BytecodeBuilder(normalized, known_globals, rng or random.Random(0))
    for param in normalized.params:
        builder._local(param)
    return builder.build()
