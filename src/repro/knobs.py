"""Central registry of ``REPRO_*`` environment knobs.

Every environment variable the reproduction reads is declared here once,
with its kind, default and scope — and :func:`raw` is the **only** place in
the tree that may touch ``os.environ`` for a ``REPRO_*`` name.  The static
analysis gate (``python -m repro.analysis.lint``) enforces that: any other
``os.environ`` read under ``src/repro`` is a finding.  The docs-consistency
tests derive the expected knob tables in ``README.md`` and
``benchmarks/README.md`` from this registry, so a knob cannot be added,
renamed or dropped without the documentation moving in lockstep.

Reading a knob that is not registered raises ``KeyError`` immediately —
a typo'd name fails loudly instead of silently falling back to a default.

The typed accessors reproduce the clamping conventions the call sites have
always used (malformed values never crash a worker that would otherwise run
fine — an operator typo in the environment degrades to the default):

* :func:`enabled` — ``"0"`` disables, anything else (or unset+default)
  enables; the convention of all cache/tier A/B levers.
* :func:`positive_int` / :func:`nonneg_int` — ``int()`` with the registered
  default on parse failure, clamped to ``>= 1`` / ``>= 0``.
* :func:`nonneg_float` — ``float()`` with the registered default on parse
  failure, clamped to ``>= 0.0``.
* :func:`optional_seconds` — ``float()``; unset/malformed/``<= 0`` all mean
  "no deadline" (``None``).
* :func:`raw` — the untyped escape hatch for knobs with bespoke parsing
  (fault-injection specs, fallback chains).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple


@dataclass(frozen=True)
class Knob:
    """One registered environment knob."""

    name: str
    #: "flag" (0/1 lever), "int", "float", "seconds" (optional deadline) or
    #: "spec" (free-form string with bespoke parsing at the call site).
    kind: str
    #: Documented default, as the string the environment would hold;
    #: ``None`` means "unset" is the default state.
    default: Optional[str]
    #: "src" for knobs read by ``src/repro``, "benchmarks" for knobs read
    #: only by the benchmark harness.
    scope: str
    description: str


_REGISTRY: Dict[str, Knob] = {}


def _register(name: str, kind: str, default: Optional[str], scope: str,
              description: str) -> None:
    if name in _REGISTRY:
        raise ValueError(f"duplicate knob registration: {name}")
    _REGISTRY[name] = Knob(name=name, kind=kind, default=default,
                           scope=scope, description=description)


# -- emulator tiers (repro.cpu) -----------------------------------------------
_register("REPRO_DECODE_CACHE", "flag", "1", "src",
          "0 disables the per-address decode cache")
_register("REPRO_TRACE_CACHE", "flag", "1", "src",
          "0 disables closure-trace fusion (single-step dispatch)")
_register("REPRO_TRACE_COMPILE", "flag", "1", "src",
          "0 disables the exec-compiled trace tier")
_register("REPRO_TRACE_SUPERBLOCK", "flag", "1", "src",
          "0 disables cross-trace superblock linking")

# -- attack engines (repro.attacks) -------------------------------------------
_register("REPRO_SNAPSHOT_POOL", "int", "32", "src",
          "global mid-path snapshot budget for backtracking DSE; 0 = "
          "rewind-from-entry only")
_register("REPRO_DSE_BACKTRACK", "flag", "1", "src",
          "0 forces rerun-from-entry DSE exploration")
_register("REPRO_DSE_WORKERS", "int", "1", "src",
          "worker processes sharing one DSE exploration's frontier")

# -- evaluation grid / fault tolerance ----------------------------------------
_register("REPRO_GRID_WORKERS", "int", "1", "src",
          "worker processes for the evaluation grid")
_register("REPRO_FULL_SCALE", "flag", "0", "src",
          "1 = paper-sized grids instead of reduced scale")
_register("REPRO_UNIT_TIMEOUT", "seconds", None, "src",
          "per-unit wall-clock deadline in seconds before kill+retry")
_register("REPRO_UNIT_RETRIES", "int", "2", "src",
          "retries before a failing unit is quarantined")
_register("REPRO_FAULT_INJECT", "spec", None, "src",
          "deterministic fault-injection directives (index:mode[:count])")

# -- long-lived attack service (repro.service) --------------------------------
_register("REPRO_SERVICE_WORKERS", "int", "1", "src",
          "pool workers for python -m repro.service (1 = in-process serial)")
_register("REPRO_SERVICE_QUEUE", "int", "64", "src",
          "admission bound: max requests admitted but not yet terminal")
_register("REPRO_SERVICE_TIMEOUT", "seconds", None, "src",
          "per-request deadline in seconds; falls back to REPRO_UNIT_TIMEOUT")
_register("REPRO_SERVICE_BACKOFF", "float", "0.1", "src",
          "base retry delay in seconds; attempt n waits base * 2**(n-1)")
_register("REPRO_SERVICE_BREAKER", "int", "8", "src",
          "respawns tolerated before degrading to in-process execution")

# -- benchmark harness (benchmarks/) ------------------------------------------
_register("REPRO_BENCH_UPDATE", "flag", "0", "benchmarks",
          "1 re-measures and rewrites the committed throughput baseline")
_register("REPRO_BENCH_GATE", "flag", "1", "benchmarks",
          "0 skips the throughput regression assertions")


def get(name: str) -> Knob:
    """The registration record for ``name`` (KeyError if unregistered)."""
    return _REGISTRY[name]


def names(scope: Optional[str] = None) -> FrozenSet[str]:
    """All registered knob names, optionally restricted to one scope."""
    return frozenset(knob.name for knob in _REGISTRY.values()
                     if scope is None or knob.scope == scope)


def all_knobs() -> Tuple[Knob, ...]:
    """Every registration, in declaration order (for table generation)."""
    return tuple(_REGISTRY.values())


def raw(name: str, default: Optional[str] = None) -> Optional[str]:
    """The environment's value for a *registered* knob, verbatim.

    This is the single sanctioned ``os.environ`` read for ``REPRO_*``
    names; ``default`` is returned when the variable is unset (it is the
    call site's parse-level default and may differ from the registered
    documented default, e.g. ``""`` to mean "trigger the fallback chain").
    """
    knob = _REGISTRY.get(name)
    if knob is None:
        raise KeyError(f"unregistered knob: {name} (register it in "
                       f"repro.knobs before reading it)")
    return os.environ.get(name, default)


def enabled(name: str) -> bool:
    """A 0/1 lever: ``"0"`` disables; unset falls back to the default."""
    knob = get(name)
    return raw(name, knob.default) != "0"


def _int_default(name: str) -> int:
    default = get(name).default
    if default is None:
        raise ValueError(f"knob {name} has no integer default")
    return int(default)


def positive_int(name: str) -> int:
    """``int()`` with the registered default on failure, clamped ``>= 1``."""
    value = raw(name, get(name).default)
    try:
        return max(1, int(value if value is not None else ""))
    except ValueError:
        return max(1, _int_default(name))


def nonneg_int(name: str) -> int:
    """``int()`` with the registered default on failure, clamped ``>= 0``."""
    value = raw(name, get(name).default)
    try:
        return max(0, int(value if value is not None else ""))
    except ValueError:
        return max(0, _int_default(name))


def nonneg_float(name: str) -> float:
    """``float()`` with the registered default on failure, clamped ``>= 0``."""
    value = raw(name, get(name).default)
    try:
        return max(0.0, float(value if value is not None else ""))
    except ValueError:
        default = get(name).default
        return max(0.0, float(default if default is not None else "0"))


def optional_seconds(name: str) -> Optional[float]:
    """An optional deadline: unset, malformed or ``<= 0`` mean ``None``."""
    try:
        value = float(raw(name, "") or "")
    except ValueError:
        return None
    return value if value > 0 else None
