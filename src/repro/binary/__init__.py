"""ELF-like binary image: sections, symbols, and a loader.

This stands in for the stripped x64 Linux ELF binaries the paper rewrites.
The image keeps just enough structure for the reproduction: named sections
at fixed load addresses, a function/object symbol table, and a loader that
maps everything plus a stack and a heap into a :class:`repro.memory.Memory`.
"""

from repro.binary.sections import Section, DEFAULT_LAYOUT
from repro.binary.symbols import Symbol, SymbolTable
from repro.binary.image import BinaryImage
from repro.binary.loader import LoadedProgram, load_image

__all__ = [
    "Section",
    "DEFAULT_LAYOUT",
    "Symbol",
    "SymbolTable",
    "BinaryImage",
    "LoadedProgram",
    "load_image",
]
