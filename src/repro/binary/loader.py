"""Loader: map a :class:`BinaryImage` into memory ready for emulation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.binary.image import BinaryImage
from repro.binary.sections import HEAP_BASE, HEAP_SIZE, STACK_SIZE, STACK_TOP
from repro.memory import Memory


@dataclass
class LoadedProgram:
    """A binary image mapped into memory together with runtime areas.

    Attributes:
        image: the source image (not copied; code patches show through).
        memory: the mapped memory.
        stack_top: initial stack pointer value.
        heap_base: start of the heap area used by the host allocator.
    """

    image: BinaryImage
    memory: Memory
    stack_top: int
    heap_base: int

    def fork(self) -> "LoadedProgram":
        """Return a copy-on-write fork of this program.

        The fork shares all region backing storage with this program until
        either side writes (see :meth:`repro.memory.Memory.snapshot`).  The
        attack engines call this once per execution instead of re-running
        :func:`load_image`, which made every fork deep-copy the stack.
        """
        return LoadedProgram(image=self.image, memory=self.memory.snapshot(),
                             stack_top=self.stack_top, heap_base=self.heap_base)


def load_image(image: BinaryImage, extra_stack: int = 0) -> LoadedProgram:
    """Map ``image`` plus a stack and heap into a fresh :class:`Memory`.

    Args:
        image: the program to load.
        extra_stack: extra bytes of stack to map below the default area.

    Returns:
        a :class:`LoadedProgram` whose memory contains a copy of every
        section's bytes (so emulation never mutates the image itself).
    """
    memory = Memory()
    for section in image.sections.values():
        if section.size == 0:
            continue
        memory.map(section.name, section.address, section.size,
                   bytes(section.data), writable=True)
    stack_size = STACK_SIZE + extra_stack
    memory.map("[stack]", STACK_TOP - stack_size, stack_size)
    memory.map("[heap]", HEAP_BASE, HEAP_SIZE)
    # leave a small guard below the stack top for argument spill space
    stack_top = STACK_TOP - 0x100
    return LoadedProgram(image=image, memory=memory, stack_top=stack_top,
                         heap_base=HEAP_BASE)
