"""Function and object symbols of a binary image."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


@dataclass
class Symbol:
    """A named address range inside a binary image.

    Attributes:
        name: symbol name.
        address: start address.
        size: extent in bytes (0 when unknown).
        kind: ``"func"`` for code, ``"object"`` for data.
    """

    name: str
    address: int
    size: int = 0
    kind: str = "func"

    @property
    def end(self) -> int:
        """One past the last address covered by the symbol."""
        return self.address + self.size


class SymbolTable:
    """Name- and address-indexed collection of :class:`Symbol` entries."""

    def __init__(self) -> None:
        self._by_name: Dict[str, Symbol] = {}

    def add(self, symbol: Symbol) -> Symbol:
        """Insert or replace a symbol and return it."""
        self._by_name[symbol.name] = symbol
        return symbol

    def get(self, name: str) -> Symbol:
        """Return the symbol called ``name``.

        Raises:
            KeyError: if no such symbol exists.
        """
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def functions(self) -> List[Symbol]:
        """All function symbols, sorted by address."""
        return sorted(
            (s for s in self._by_name.values() if s.kind == "func"),
            key=lambda s: s.address,
        )

    def at_address(self, address: int) -> Optional[Symbol]:
        """Return the symbol whose range covers ``address``, if any."""
        for symbol in self._by_name.values():
            if symbol.size and symbol.address <= address < symbol.end:
                return symbol
            if not symbol.size and symbol.address == address:
                return symbol
        return None
