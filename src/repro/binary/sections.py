"""Binary sections and the default load layout."""

from __future__ import annotations

from dataclasses import dataclass, field


#: Default load addresses for the standard sections.  The rewritten programs
#: are loaded at fixed addresses (the paper notes its prototype does the same,
#: §IV-C), which also keeps gadget addresses stable inside the chains.
DEFAULT_LAYOUT = {
    ".text": 0x400000,
    ".rodata": 0x500000,
    ".data": 0x600000,
    ".ropchains": 0x680000,
    ".bss": 0x700000,
}

#: Address range reserved for host-provided runtime functions (malloc, putchar,
#: probes, ...).  Calls landing in this range are serviced by the emulator.
HOST_FUNCTION_BASE = 0x10000
HOST_FUNCTION_LIMIT = 0x1FFFF

#: Runtime memory areas created by the loader.
STACK_TOP = 0x7FFF_0000
STACK_SIZE = 0x20000
HEAP_BASE = 0x900000
HEAP_SIZE = 0x200000


@dataclass
class Section:
    """A named contiguous section of a binary image.

    Attributes:
        name: section name (e.g. ``.text``).
        address: load address.
        data: section contents (mutable; the rewriter appends to it).
        writable: whether the section is writable once loaded.
        executable: whether the section is intended to hold code.
    """

    name: str
    address: int
    data: bytearray = field(default_factory=bytearray)
    writable: bool = False
    executable: bool = False

    @property
    def size(self) -> int:
        """Current size of the section in bytes."""
        return len(self.data)

    @property
    def end(self) -> int:
        """One past the last address occupied by the section."""
        return self.address + self.size

    def contains(self, address: int) -> bool:
        """True if ``address`` falls inside the section."""
        return self.address <= address < self.end

    def append(self, blob: bytes) -> int:
        """Append ``blob`` to the section and return its load address."""
        address = self.end
        self.data += blob
        return address

    def read(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes at absolute ``address`` from the section."""
        offset = address - self.address
        if offset < 0 or offset + size > self.size:
            raise ValueError(f"read outside section {self.name} at {address:#x}")
        return bytes(self.data[offset:offset + size])

    def write(self, address: int, blob: bytes) -> None:
        """Overwrite section contents at absolute ``address``."""
        offset = address - self.address
        if offset < 0 or offset + len(blob) > self.size:
            raise ValueError(f"write outside section {self.name} at {address:#x}")
        self.data[offset:offset + len(blob)] = blob
