"""The :class:`BinaryImage` container tying sections and symbols together."""

from __future__ import annotations

import copy
from typing import Dict, Optional

from repro.binary.sections import DEFAULT_LAYOUT, Section
from repro.binary.symbols import Symbol, SymbolTable


class BinaryImage:
    """An in-memory program image: sections, symbols, and an entry point.

    The compiler produces one of these; the ROP rewriter mutates it in place
    (replacing function bodies with pivot stubs, appending artificial gadgets
    to ``.text`` and chains to ``.ropchains``); the loader maps it for
    execution or analysis.
    """

    def __init__(self, name: str = "a.out") -> None:
        self.name = name
        self.sections: Dict[str, Section] = {}
        self.symbols = SymbolTable()
        self.entry: Optional[int] = None
        self.metadata: Dict[str, object] = {}

    # -- sections -----------------------------------------------------------
    def add_section(self, name: str, address: Optional[int] = None,
                    writable: bool = False, executable: bool = False) -> Section:
        """Create (or return an existing) section.

        When ``address`` is omitted the default layout address is used.
        """
        if name in self.sections:
            return self.sections[name]
        if address is None:
            if name not in DEFAULT_LAYOUT:
                raise ValueError(f"no default address for section {name!r}")
            address = DEFAULT_LAYOUT[name]
        section = Section(name, address, writable=writable, executable=executable)
        self.sections[name] = section
        return section

    @property
    def text(self) -> Section:
        """The ``.text`` section (created on first use)."""
        return self.add_section(".text", executable=True)

    @property
    def data(self) -> Section:
        """The ``.data`` section (created on first use)."""
        return self.add_section(".data", writable=True)

    @property
    def rodata(self) -> Section:
        """The ``.rodata`` section (created on first use)."""
        return self.add_section(".rodata")

    @property
    def ropchains(self) -> Section:
        """The dedicated section holding generated ROP chains (§IV-A4)."""
        return self.add_section(".ropchains", writable=True)

    def section_containing(self, address: int) -> Optional[Section]:
        """Return the section that covers ``address``, if any."""
        for section in self.sections.values():
            if section.contains(address):
                return section
        return None

    # -- symbols ------------------------------------------------------------
    def add_function(self, name: str, address: int, size: int) -> Symbol:
        """Register a function symbol."""
        return self.symbols.add(Symbol(name, address, size, kind="func"))

    def add_object(self, name: str, address: int, size: int) -> Symbol:
        """Register a data object symbol."""
        return self.symbols.add(Symbol(name, address, size, kind="object"))

    def function(self, name: str) -> Symbol:
        """Return the function symbol called ``name``."""
        symbol = self.symbols.get(name)
        if symbol.kind != "func":
            raise KeyError(f"{name!r} is not a function symbol")
        return symbol

    def function_bytes(self, name: str) -> bytes:
        """Return the raw bytes of a function's body."""
        symbol = self.function(name)
        section = self.section_containing(symbol.address)
        if section is None:
            raise ValueError(f"function {name!r} not inside any section")
        return section.read(symbol.address, symbol.size)

    # -- convenience --------------------------------------------------------
    def read(self, address: int, size: int) -> bytes:
        """Read bytes at an absolute address from whichever section holds it."""
        section = self.section_containing(address)
        if section is None:
            raise ValueError(f"address {address:#x} not in any section")
        return section.read(address, size)

    def write(self, address: int, blob: bytes) -> None:
        """Write bytes at an absolute address into whichever section holds it."""
        section = self.section_containing(address)
        if section is None:
            raise ValueError(f"address {address:#x} not in any section")
        section.write(address, blob)

    def clone(self) -> "BinaryImage":
        """Deep-copy the image (obfuscation passes never mutate their input)."""
        return copy.deepcopy(self)

    def summary(self) -> str:
        """A short human readable description used by examples and reports."""
        lines = [f"binary {self.name} entry={self.entry and hex(self.entry)}"]
        for section in self.sections.values():
            lines.append(
                f"  {section.name:<11} {section.address:#x}..{section.end:#x} "
                f"({section.size} bytes)"
            )
        lines.append(f"  {len(self.symbols)} symbols")
        return "\n".join(lines)
