"""AST normalization: hoist calls and over-deep expressions.

Code generation keeps expression operands in a small register stack and
assumes calls only appear as full statements.  The normalizer rewrites any
function so those assumptions hold:

* nested :class:`repro.lang.Call` expressions are hoisted into fresh
  temporary assignments executed before the enclosing statement;
* expressions nested deeper than the register stack can hold are split by
  hoisting sub-expressions into temporaries;
* :class:`repro.lang.For` loops are kept (the code generator lowers them
  directly so ``continue`` jumps to the step statement).
"""

from __future__ import annotations

from typing import List

from repro.lang.ast import (
    Assign,
    BinOp,
    Break,
    Call,
    Const,
    Continue,
    Expr,
    ExprStmt,
    For,
    Function,
    If,
    Load,
    Probe,
    Return,
    Stmt,
    Store,
    Switch,
    UnOp,
    Var,
    While,
)

#: Maximum expression depth the code generator's register stack supports.
MAX_EXPRESSION_DEPTH = 6


class _Normalizer:
    """Stateful helper carrying the fresh-temporary counter."""

    def __init__(self) -> None:
        self._counter = 0

    def fresh(self) -> str:
        self._counter += 1
        return f"__tmp{self._counter}"

    # -- expressions --------------------------------------------------------
    def depth(self, expr: Expr) -> int:
        """Return the operand-stack depth needed to evaluate ``expr``."""
        if isinstance(expr, (Const, Var)):
            return 1
        if isinstance(expr, UnOp):
            return self.depth(expr.operand)
        if isinstance(expr, Load):
            return self.depth(expr.address)
        if isinstance(expr, BinOp):
            return max(self.depth(expr.left), self.depth(expr.right) + 1)
        if isinstance(expr, Call):
            return 1  # hoisted before depth matters
        raise TypeError(f"unknown expression {expr!r}")

    def expr(self, expr: Expr, out: List[Stmt], top_level_call: bool = False) -> Expr:
        """Rewrite ``expr``, appending hoisted statements to ``out``."""
        if isinstance(expr, (Const, Var)):
            return expr
        if isinstance(expr, UnOp):
            return UnOp(expr.op, self.expr(expr.operand, out))
        if isinstance(expr, Load):
            return Load(self.expr(expr.address, out), expr.size)
        if isinstance(expr, BinOp):
            left = self.expr(expr.left, out)
            right = self.expr(expr.right, out)
            rewritten = BinOp(expr.op, left, right)
            if self.depth(rewritten) > MAX_EXPRESSION_DEPTH:
                # the right subtree drives the operand-stack depth: hoist it
                # into a temporary (expressions are pure at this point, so the
                # reordering is safe)
                name = self.fresh()
                out.append(Assign(name, right))
                rewritten = BinOp(expr.op, left, Var(name))
            return rewritten
        if isinstance(expr, Call):
            args = tuple(self.expr(arg, out) for arg in expr.args)
            call = Call(expr.name, args)
            if top_level_call:
                return call
            name = self.fresh()
            out.append(Assign(name, call))
            return Var(name)
        raise TypeError(f"unknown expression {expr!r}")

    # -- statements ---------------------------------------------------------
    def body(self, statements: List[Stmt]) -> List[Stmt]:
        """Normalize a statement list."""
        out: List[Stmt] = []
        for statement in statements:
            out.extend(self.statement(statement))
        return out

    def statement(self, statement: Stmt) -> List[Stmt]:
        """Normalize a single statement into one or more statements."""
        out: List[Stmt] = []
        if isinstance(statement, Assign):
            value = self.expr(statement.value, out, top_level_call=True)
            out.append(Assign(statement.name, value))
        elif isinstance(statement, Store):
            address = self.expr(statement.address, out)
            value = self.expr(statement.value, out)
            out.append(Store(address, value, statement.size))
        elif isinstance(statement, If):
            condition = self.expr(statement.condition, out)
            out.append(If(condition, self.body(statement.then_body),
                          self.body(statement.else_body)))
        elif isinstance(statement, While):
            pre: List[Stmt] = []
            condition = self.expr(statement.condition, pre)
            if pre:
                # condition contains a call: convert to an explicit flag variable
                flag = self.fresh()
                body = self.body(statement.body) + pre + [Assign(flag, condition)]
                out.extend(pre)
                out.append(Assign(flag, condition))
                out.append(While(BinOp("!=", Var(flag), Const(0)), body))
            else:
                out.append(While(condition, self.body(statement.body)))
        elif isinstance(statement, For):
            # Desugar to init + while(cond) { body; step }.  ``continue`` inside
            # a ``for`` body is not supported (it would skip the step); the
            # workloads use ``while`` loops when they need ``continue``.
            out.extend(self.statement(statement.init))
            pre: List[Stmt] = []
            condition = self.expr(statement.condition, pre)
            if pre:
                raise ValueError("for-loop conditions must not contain calls")
            out.append(While(condition,
                             self.body(statement.body) + self.statement(statement.step)))
        elif isinstance(statement, Switch):
            selector = self.expr(statement.selector, out)
            out.append(Switch(selector,
                              {value: self.body(body) for value, body in statement.cases.items()},
                              self.body(statement.default)))
        elif isinstance(statement, Return):
            if statement.value is None:
                out.append(Return(None))
            else:
                out.append(Return(self.expr(statement.value, out, top_level_call=False)))
        elif isinstance(statement, ExprStmt):
            out.append(ExprStmt(self.expr(statement.expr, out, top_level_call=True)))
        elif isinstance(statement, (Break, Continue, Probe)):
            out.append(statement)
        else:
            raise TypeError(f"unknown statement {statement!r}")
        return out


def normalize_function(function: Function) -> Function:
    """Return a normalized copy of ``function`` (the input is not mutated)."""
    normalizer = _Normalizer()
    return Function(
        name=function.name,
        params=list(function.params),
        body=normalizer.body(function.body),
        local_arrays=dict(function.local_arrays),
    )
