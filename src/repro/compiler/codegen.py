"""Code generation: normalized mini-C functions to ISA instruction listings.

The generated code follows ordinary compiled-code conventions:

* frame pointer based stack frames (``push rbp; mov rbp, rsp; sub rsp, N``),
* parameters spilled to the frame at entry,
* expressions evaluated through a small register operand stack,
* comparisons driving ``cmp``/``jcc`` pairs (the flag-based branches the
  paper's ROP branch encoding and the ROP-aware attacks both key on),
* the System-V-like calling convention of :mod:`repro.isa.registers`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.compiler.errors import CompileError
from repro.compiler.frame import Frame
from repro.cpu.host import HOST_FUNCTION_NAMES, host_function_address
from repro.isa.instructions import Instruction, make
from repro.isa.operands import Imm, Label, Mem, Reg
from repro.isa.registers import ARG_REGISTERS, Register
from repro.lang.ast import (
    Assign,
    BinOp,
    Break,
    Call,
    Const,
    Continue,
    Expr,
    ExprStmt,
    Function,
    If,
    Load,
    Probe,
    Return,
    Stmt,
    Store,
    Switch,
    UnOp,
    Var,
    While,
)

#: Registers used as the expression operand stack, in stack order.
OPERAND_STACK = (
    Register.RAX,
    Register.RCX,
    Register.RSI,
    Register.RDI,
    Register.R8,
    Register.R9,
    Register.R10,
    Register.R11,
)

_COMPARISONS = {"==": "e", "!=": "ne", "<": "l", "<=": "le", ">": "g", ">=": "ge"}
_MASK64 = (1 << 64) - 1

#: An item of a code listing: an instruction or a label name.
ListingItem = Union[Instruction, str]


def function_label(name: str) -> str:
    """The assembler label marking the entry of function ``name``."""
    return f"__func_{name}"


def function_end_label(name: str) -> str:
    """The assembler label marking one past the end of function ``name``."""
    return f"__funcend_{name}"


class FunctionCodegen:
    """Generates the instruction listing of a single normalized function."""

    def __init__(self, function: Function, global_addresses: Dict[str, int],
                 known_functions: Optional[set] = None) -> None:
        self.function = function
        self.globals = global_addresses
        self.known_functions = known_functions or set()
        self.frame = Frame()
        self.items: List[ListingItem] = []
        self._label_counter = 0
        self._loop_stack: List[tuple] = []
        if len(function.params) > len(ARG_REGISTERS):
            raise CompileError(
                f"{function.name}: at most {len(ARG_REGISTERS)} parameters supported"
            )
        # reserve slots for parameters and local arrays up front so the
        # prologue knows where to spill arguments
        for param in function.params:
            self.frame.slot(param)
        for array, size in function.local_arrays.items():
            self.frame.array(array, size)

    # -- helpers -------------------------------------------------------------
    def _emit(self, instruction: Instruction) -> None:
        self.items.append(instruction)

    def _label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{self.function.name}__{hint}_{self._label_counter}"

    def _place(self, label: str) -> None:
        self.items.append(label)

    def _slot_operand(self, name: str, size: int = 8) -> Mem:
        return Mem(base=Register.RBP, disp=-self.frame.slot(name), size=size)

    def _reg(self, depth: int) -> Register:
        if depth >= len(OPERAND_STACK):
            raise CompileError(
                f"{self.function.name}: expression too deep for operand stack"
            )
        return OPERAND_STACK[depth]

    # -- expressions ---------------------------------------------------------
    def _gen_expr(self, expr: Expr, depth: int) -> None:
        """Evaluate ``expr`` into ``OPERAND_STACK[depth]``."""
        target = Reg(self._reg(depth))
        if isinstance(expr, Const):
            self._emit(make("mov", target, Imm(expr.value & _MASK64)))
            return
        if isinstance(expr, Var):
            name = expr.name
            if name in self.function.local_arrays:
                offset = self.frame.array(name, self.function.local_arrays[name])
                self._emit(make("lea", target, Mem(base=Register.RBP, disp=-offset)))
            elif name in self.globals:
                self._emit(make("mov", target, Imm(self.globals[name])))
            else:
                self._emit(make("mov", target, self._slot_operand(name)))
            return
        if isinstance(expr, UnOp):
            self._gen_expr(expr.operand, depth)
            if expr.op == "-":
                self._emit(make("neg", target))
            elif expr.op == "~":
                self._emit(make("not", target))
            elif expr.op == "!":
                self._emit(make("cmp", target, Imm(0, 4)))
                self._emit(make("sete", Reg(target.reg, 1)))
                self._emit(make("movzx", target, Reg(target.reg, 1)))
            else:
                raise CompileError(f"unknown unary operator {expr.op!r}")
            return
        if isinstance(expr, Load):
            self._gen_expr(expr.address, depth)
            source = Mem(base=target.reg, size=expr.size)
            if expr.size < 8:
                self._emit(make("movzx", target, source))
            else:
                self._emit(make("mov", target, source))
            return
        if isinstance(expr, BinOp):
            self._gen_binop(expr, depth)
            return
        if isinstance(expr, Call):
            raise CompileError(
                "calls must be hoisted to statement level before code generation"
            )
        raise CompileError(f"unknown expression {expr!r}")

    def _gen_binop(self, expr: BinOp, depth: int) -> None:
        left = Reg(self._reg(depth))
        right = Reg(self._reg(depth + 1))
        self._gen_expr(expr.left, depth)
        self._gen_expr(expr.right, depth + 1)
        op = expr.op
        if op in ("+", "-", "&", "|", "^"):
            mnemonic = {"+": "add", "-": "sub", "&": "and", "|": "or", "^": "xor"}[op]
            self._emit(make(mnemonic, left, right))
        elif op == "*":
            self._emit(make("imul", left, right))
        elif op in ("<<", ">>"):
            self._emit(make("shl" if op == "<<" else "sar", left, right))
        elif op in ("/", "%"):
            self._gen_division(left.reg, right.reg, op)
        elif op in _COMPARISONS:
            self._emit(make("cmp", left, right))
            self._emit(make(f"set{_COMPARISONS[op]}", Reg(left.reg, 1)))
            self._emit(make("movzx", left, Reg(left.reg, 1)))
        else:
            raise CompileError(f"unknown binary operator {op!r}")

    def _gen_division(self, left: Register, right: Register, op: str) -> None:
        save_rax = left is not Register.RAX
        if save_rax:
            self._emit(make("push", Reg(Register.RAX)))
            self._emit(make("mov", Reg(Register.RAX), Reg(left)))
        self._emit(make("cqo"))
        self._emit(make("idiv", Reg(right)))
        result = Register.RAX if op == "/" else Register.RDX
        if save_rax:
            self._emit(make("mov", Reg(left), Reg(result)))
            self._emit(make("pop", Reg(Register.RAX)))
        elif op == "%":
            self._emit(make("mov", Reg(Register.RAX), Reg(Register.RDX)))

    # -- calls ---------------------------------------------------------------
    def _call_target(self, name: str):
        if name in HOST_FUNCTION_NAMES:
            return Imm(host_function_address(name))
        if name == self.function.name or name in self.known_functions or not self.known_functions:
            return Label(function_label(name))
        raise CompileError(f"call to unknown function {name!r}")

    def _gen_call(self, call: Call) -> None:
        """Generate a call; the return value is left in ``rax``."""
        if len(call.args) > len(ARG_REGISTERS):
            raise CompileError(f"too many arguments in call to {call.name!r}")
        for arg in call.args:
            self._gen_expr(arg, 0)
            self._emit(make("push", Reg(Register.RAX)))
        for index in reversed(range(len(call.args))):
            self._emit(make("pop", Reg(ARG_REGISTERS[index])))
        self._emit(make("call", self._call_target(call.name)))

    # -- statements ----------------------------------------------------------
    def _gen_condition(self, condition: Expr, false_label: str) -> None:
        """Evaluate ``condition`` and jump to ``false_label`` when it is false."""
        if isinstance(condition, BinOp) and condition.op in _COMPARISONS:
            left = Reg(self._reg(0))
            right = Reg(self._reg(1))
            self._gen_expr(condition.left, 0)
            self._gen_expr(condition.right, 1)
            self._emit(make("cmp", left, right))
            negated = {"e": "ne", "ne": "e", "l": "ge", "ge": "l",
                       "le": "g", "g": "le"}[_COMPARISONS[condition.op]]
            self._emit(make(f"j{negated}", Label(false_label)))
            return
        self._gen_expr(condition, 0)
        self._emit(make("test", Reg(Register.RAX), Reg(Register.RAX)))
        self._emit(make("je", Label(false_label)))

    def _gen_statement(self, statement: Stmt) -> None:
        if isinstance(statement, Assign):
            if isinstance(statement.value, Call):
                self._gen_call(statement.value)
            else:
                self._gen_expr(statement.value, 0)
            self._emit(make("mov", self._slot_operand(statement.name), Reg(Register.RAX)))
            return
        if isinstance(statement, Store):
            self._gen_expr(statement.address, 0)
            self._gen_expr(statement.value, 1)
            destination = Mem(base=Register.RAX, size=statement.size)
            self._emit(make("mov", destination, Reg(Register.RCX, statement.size)))
            return
        if isinstance(statement, ExprStmt):
            if isinstance(statement.expr, Call):
                self._gen_call(statement.expr)
            else:
                self._gen_expr(statement.expr, 0)
            return
        if isinstance(statement, Probe):
            self._emit(make("mov", Reg(Register.RDI), Imm(statement.probe_id)))
            self._emit(make("call", Imm(host_function_address("__probe"))))
            return
        if isinstance(statement, Return):
            if statement.value is None:
                self._emit(make("xor", Reg(Register.RAX), Reg(Register.RAX)))
            else:
                self._gen_expr(statement.value, 0)
            self._emit(make("leave"))
            self._emit(make("ret"))
            return
        if isinstance(statement, If):
            else_label = self._label("else")
            end_label = self._label("endif")
            self._gen_condition(statement.condition, else_label if statement.else_body else end_label)
            for inner in statement.then_body:
                self._gen_statement(inner)
            if statement.else_body:
                self._emit(make("jmp", Label(end_label)))
                self._place(else_label)
                for inner in statement.else_body:
                    self._gen_statement(inner)
            self._place(end_label)
            return
        if isinstance(statement, While):
            head_label = self._label("loop")
            end_label = self._label("endloop")
            self._place(head_label)
            self._gen_condition(statement.condition, end_label)
            self._loop_stack.append((head_label, end_label))
            for inner in statement.body:
                self._gen_statement(inner)
            self._loop_stack.pop()
            self._emit(make("jmp", Label(head_label)))
            self._place(end_label)
            return
        if isinstance(statement, Break):
            if not self._loop_stack:
                raise CompileError("break outside of a loop")
            self._emit(make("jmp", Label(self._loop_stack[-1][1])))
            return
        if isinstance(statement, Continue):
            if not self._loop_stack:
                raise CompileError("continue outside of a loop")
            self._emit(make("jmp", Label(self._loop_stack[-1][0])))
            return
        if isinstance(statement, Switch):
            self._gen_switch(statement)
            return
        raise CompileError(f"unknown statement {statement!r}")

    def _gen_switch(self, statement: Switch) -> None:
        selector_slot = self._slot_operand(self._label("switch_sel"))
        self._gen_expr(statement.selector, 0)
        self._emit(make("mov", selector_slot, Reg(Register.RAX)))
        end_label = self._label("endswitch")
        case_labels = {value: self._label(f"case_{value}") for value in statement.cases}
        default_label = self._label("default")
        for value, label in case_labels.items():
            self._emit(make("mov", Reg(Register.RAX), selector_slot))
            self._emit(make("cmp", Reg(Register.RAX), Imm(value & _MASK64)))
            self._emit(make("je", Label(label)))
        self._emit(make("jmp", Label(default_label)))
        for value, body in statement.cases.items():
            self._place(case_labels[value])
            for inner in body:
                self._gen_statement(inner)
            self._emit(make("jmp", Label(end_label)))
        self._place(default_label)
        for inner in statement.default:
            self._gen_statement(inner)
        self._place(end_label)

    # -- entry point ---------------------------------------------------------
    def generate(self) -> List[ListingItem]:
        """Generate the full listing: label, prologue, body, epilogue."""
        body_items: List[ListingItem] = []
        self.items = body_items
        for statement in self.function.body:
            self._gen_statement(statement)
        # implicit "return 0" when control may fall off the end
        if not self.function.body or not isinstance(self.function.body[-1], Return):
            self._emit(make("xor", Reg(Register.RAX), Reg(Register.RAX)))
            self._emit(make("leave"))
            self._emit(make("ret"))
        prologue: List[ListingItem] = [
            function_label(self.function.name),
            make("push", Reg(Register.RBP)),
            make("mov", Reg(Register.RBP), Reg(Register.RSP)),
            make("sub", Reg(Register.RSP), Imm(self.frame.size)),
        ]
        for index, param in enumerate(self.function.params):
            prologue.append(
                make("mov", self._slot_operand(param), Reg(ARG_REGISTERS[index]))
            )
        return prologue + body_items + [function_end_label(self.function.name)]
