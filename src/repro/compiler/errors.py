"""Compiler error type."""


class CompileError(Exception):
    """Raised when a mini-C program cannot be compiled."""
