"""Stack frame layout for compiled mini-C functions."""

from __future__ import annotations

from typing import Dict


class Frame:
    """Assigns frame-pointer-relative slots to parameters, locals and arrays.

    Slots are addressed as ``[rbp - offset]`` with ``offset`` positive.  The
    frame is grown lazily as the code generator discovers variables, and its
    final size (16-byte aligned) is only known once code generation finished.
    """

    def __init__(self) -> None:
        self._offsets: Dict[str, int] = {}
        self._cursor = 0

    def slot(self, name: str) -> int:
        """Return the offset of scalar variable ``name`` (allocating it)."""
        if name not in self._offsets:
            self._cursor += 8
            self._offsets[name] = self._cursor
        return self._offsets[name]

    def array(self, name: str, size: int) -> int:
        """Allocate a local array of ``size`` bytes and return its offset.

        The returned offset addresses the *base* (lowest address) of the
        array, i.e. the array occupies ``[rbp - offset, rbp - offset + size)``.
        """
        if name not in self._offsets:
            rounded = (size + 7) & ~7
            self._cursor += rounded
            self._offsets[name] = self._cursor
        return self._offsets[name]

    def has(self, name: str) -> bool:
        """True if ``name`` already has a slot."""
        return name in self._offsets

    @property
    def size(self) -> int:
        """Total frame size in bytes, aligned to 16."""
        return (self._cursor + 15) & ~15
