"""The compilation pipeline: mini-C programs to loadable binary images."""

from __future__ import annotations

from typing import Dict, Optional

from repro.binary import BinaryImage
from repro.compiler.codegen import FunctionCodegen, function_end_label, function_label
from repro.compiler.errors import CompileError
from repro.compiler.normalize import normalize_function
from repro.isa.assembler import Assembler
from repro.lang.ast import Program


def compile_program(program: Program, name: str = "a.out") -> BinaryImage:
    """Compile a mini-C program into a :class:`repro.binary.BinaryImage`.

    Global arrays are laid out in ``.data`` first (so code can reference their
    absolute addresses), then every function is normalized, code-generated and
    assembled into ``.text``.  Function symbols carry accurate sizes, which the
    ROP rewriter relies on to delimit what it disassembles and replaces.

    Args:
        program: the mini-C program.
        name: name recorded on the produced image.

    Returns:
        a binary image with ``.text``/``.data`` populated and one ``func``
        symbol per mini-C function.  ``image.entry`` points at ``main`` when
        the program defines one.

    Raises:
        CompileError: on malformed programs (unknown calls, too-deep
            expressions, too many parameters, duplicate function names).
    """
    image = BinaryImage(name)
    names = [function.name for function in program.functions]
    if len(set(names)) != len(names):
        raise CompileError("duplicate function names in program")

    # lay out global data objects
    global_addresses: Dict[str, int] = {}
    for array in program.globals:
        if len(array.initial) > array.size:
            raise CompileError(f"global {array.name!r} initializer larger than its size")
        blob = bytes(array.initial) + bytes(array.size - len(array.initial))
        address = image.data.append(blob)
        image.add_object(array.name, address, array.size)
        global_addresses[array.name] = address

    # generate code for every function into a single listing
    assembler = Assembler()
    known = set(names)
    for function in program.functions:
        normalized = normalize_function(function)
        codegen = FunctionCodegen(normalized, global_addresses, known)
        for item in codegen.generate():
            if isinstance(item, str):
                assembler.label(item)
            else:
                assembler.emit(item)

    code, labels = assembler.assemble(base_address=image.text.address)
    image.text.append(code)

    for function in program.functions:
        start = labels[function_label(function.name)]
        end = labels[function_end_label(function.name)]
        image.add_function(function.name, start, end - start)

    if "main" in known:
        image.entry = image.function("main").address
    image.metadata["source_functions"] = names
    return image


def compile_function(function, globals_=None, name: Optional[str] = None) -> BinaryImage:
    """Compile a single function (plus optional globals) into an image.

    Convenience wrapper used pervasively in tests, examples and the
    evaluation harness.
    """
    program = Program(functions=[function], globals=list(globals_ or []))
    return compile_program(program, name or f"{function.name}.bin")
