"""Mini-C compiler: AST normalization, code generation and linking.

The compiler produces the kind of code a C compiler at a low optimisation
level would: frame-pointer based stack frames, flag-driven conditional
branches, the standard calling convention, and multiple ``ret`` sites.  Those
are exactly the code shapes the paper's binary rewriter (:mod:`repro.core`)
is designed to consume.
"""

from repro.compiler.errors import CompileError
from repro.compiler.pipeline import compile_program, compile_function

__all__ = ["CompileError", "compile_program", "compile_function"]
