"""The :class:`Gadget` model shared by the rewriter and the attacks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.isa.instructions import Instruction, Mnemonic
from repro.isa.operands import Reg
from repro.isa.registers import Register


@dataclass
class Gadget:
    """A code fragment ending in ``ret`` (or a JOP fragment ending in ``jmp``).

    Attributes:
        address: load address of the first instruction.
        instructions: the instruction sequence, terminator included.
        kind: semantic kind assigned by the synthesizer/classifier
            (e.g. ``"pop"``, ``"add_rr"``, ``"load8"``); empty for unclassified
            gadgets found by scanning.
        params: semantic parameters, e.g. ``{"dst": Register.RAX}``.
        clobbers: registers whose value the gadget destroys besides the
            primary destination (used to honour liveness during crafting).
        pops: registers popped from the stack, in order — each pop consumes
            one 8-byte chain slot that the crafter must fill (with the operand
            or with junk).
        writes_flags: True when the gadget pollutes the condition flags.
    """

    address: int
    instructions: List[Instruction]
    kind: str = ""
    params: Dict[str, object] = field(default_factory=dict)
    clobbers: frozenset = frozenset()
    pops: Tuple[Register, ...] = ()
    writes_flags: bool = False

    @property
    def is_jop(self) -> bool:
        """True for jump-terminated (JOP) gadgets."""
        return bool(self.instructions) and self.instructions[-1].mnemonic is Mnemonic.JMP

    @property
    def length(self) -> int:
        """Number of instructions, terminator included."""
        return len(self.instructions)

    @property
    def chain_slots(self) -> int:
        """8-byte chain slots the gadget consumes: its address plus its pops."""
        return 1 + len(self.pops)

    def text(self) -> str:
        """Human-readable listing (``"pop rdi ; ret"`` style)."""
        return " ; ".join(str(i) for i in self.instructions)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Gadget {self.address:#x}: {self.text()}>"


def analyze_side_effects(instructions: List[Instruction]) -> Tuple[frozenset, Tuple[Register, ...], bool]:
    """Compute ``(clobbers, pops, writes_flags)`` for an instruction sequence.

    Used both by the synthesizer (to annotate artificial gadgets) and by the
    classifier (to annotate gadgets found in existing code).
    """
    clobbers = set()
    pops: List[Register] = []
    writes_flags = False
    for instruction in instructions:
        if instruction.writes_flags():
            writes_flags = True
        if instruction.mnemonic is Mnemonic.POP and isinstance(instruction.operands[0], Reg):
            pops.append(instruction.operands[0].reg)
            clobbers.add(instruction.operands[0].reg)
            continue
        if instruction.mnemonic in (Mnemonic.RET, Mnemonic.JMP, Mnemonic.JCC,
                                    Mnemonic.NOP, Mnemonic.CMP, Mnemonic.TEST,
                                    Mnemonic.PUSH, Mnemonic.HLT):
            continue
        if instruction.operands and isinstance(instruction.operands[0], Reg):
            clobbers.add(instruction.operands[0].reg)
        if instruction.mnemonic is Mnemonic.XCHG and len(instruction.operands) > 1:
            second = instruction.operands[1]
            if isinstance(second, Reg):
                clobbers.add(second.reg)
        if instruction.mnemonic in (Mnemonic.CQO, Mnemonic.IDIV):
            clobbers.add(Register.RDX)
            clobbers.add(Register.RAX)
    return frozenset(clobbers), tuple(pops), writes_flags
