"""Gadget discovery by scanning code bytes for ``ret``-terminated sequences.

This is a simplified Galileo-style scan: every byte offset of the scanned
range is treated as a potential gadget start, decoded forward for a bounded
number of instructions, and kept if a ``ret`` is reached.  The same routine
serves two masters: the rewriter's gadget pool (to reuse gadgets from program
parts left unobfuscated, §IV-A1) and the ROP-aware attacks' *gadget guessing*
(§V-D), which is why unaligned starts are deliberately included.
"""

from __future__ import annotations

from typing import List, Optional

from repro.binary.image import BinaryImage
from repro.gadgets.gadget import Gadget, analyze_side_effects
from repro.isa.encoding import DecodeError, decode_instruction
from repro.isa.instructions import Mnemonic


def gadget_at(data: bytes, offset: int, base_address: int,
              max_instructions: int = 6) -> Optional[Gadget]:
    """Try to decode a gadget starting at ``offset`` inside ``data``.

    Returns None unless a ``ret`` is reached within ``max_instructions``.
    """
    instructions = []
    cursor = offset
    for _ in range(max_instructions):
        try:
            instruction, length = decode_instruction(data, cursor)
        except DecodeError:
            return None
        instructions.append(instruction)
        cursor += length
        if instruction.mnemonic is Mnemonic.RET:
            clobbers, pops, flags = analyze_side_effects(instructions)
            return Gadget(
                address=base_address + offset,
                instructions=instructions,
                clobbers=clobbers,
                pops=pops,
                writes_flags=flags,
            )
        if instruction.is_control_flow():
            return None
    return None


def find_gadgets(data: bytes, base_address: int = 0, max_instructions: int = 6,
                 aligned_only: bool = False) -> List[Gadget]:
    """Scan ``data`` and return every discoverable ret-terminated gadget.

    Args:
        data: raw code bytes.
        base_address: load address of ``data[0]`` (gadget addresses are
            absolute).
        max_instructions: bound on gadget length.
        aligned_only: if True only offsets that start an intended instruction
            (as found by a linear sweep from offset 0) are considered; the
            default scans every byte offset, which is what makes unintended
            gadgets possible.
    """
    gadgets: List[Gadget] = []
    if aligned_only:
        offsets = []
        cursor = 0
        while cursor < len(data):
            try:
                _, length = decode_instruction(data, cursor)
            except DecodeError:
                cursor += 1
                continue
            offsets.append(cursor)
            cursor += length
    else:
        offsets = range(len(data))
    for offset in offsets:
        gadget = gadget_at(data, offset, base_address, max_instructions)
        if gadget is not None:
            gadgets.append(gadget)
    return gadgets


def find_gadgets_in_image(image: BinaryImage, section: str = ".text",
                          max_instructions: int = 6) -> List[Gadget]:
    """Scan one section of a binary image for gadgets."""
    sec = image.sections.get(section)
    if sec is None or sec.size == 0:
        return []
    return find_gadgets(bytes(sec.data), sec.address, max_instructions)
