"""Gadget modelling, discovery, synthesis and the diversified gadget pool."""

from repro.gadgets.gadget import Gadget
from repro.gadgets.finder import find_gadgets
from repro.gadgets.classify import classify_gadget
from repro.gadgets.pool import GadgetPool

__all__ = ["Gadget", "find_gadgets", "classify_gadget", "GadgetPool"]
