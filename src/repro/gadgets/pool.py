"""The diversified gadget pool backing the chain crafter.

Gadget sources follow §IV-A1: the pool is seeded with whatever usable gadgets
already exist in program parts left unobfuscated, and missing gadgets are
synthesized on demand as dead code appended to ``.text``.  Synthesis can
produce several *diversified* variants of the same semantic operation (extra
junk pops, harmless padding instructions) and the pool hands out a random
compatible variant each time, which is what gives different program points
different byte patterns for the same purpose (§V-D).
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Tuple

from repro.binary.image import BinaryImage
from repro.gadgets.classify import classify_gadget
from repro.gadgets.finder import find_gadgets_in_image
from repro.gadgets.gadget import Gadget, analyze_side_effects
from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction, make
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import Register


class GadgetPoolError(Exception):
    """Raised when a required gadget cannot be provided."""


def _key(kind: str, params: Dict[str, object]) -> Tuple:
    return (kind, tuple(sorted((k, v) for k, v in params.items())))


class GadgetPool:
    """Gadget registry bound to a binary image.

    Args:
        image: the image being rewritten; synthesized gadgets are appended to
            its ``.text`` section.
        seed: RNG seed controlling variant selection and diversification.
        diversify: when True, synthesis sometimes produces variants with
            dynamically dead instructions and junk pops.
        seed_from_text: when True, the existing ``.text`` is scanned and any
            classifiable gadget joins the pool (gadget reuse from
            unobfuscated program parts).
    """

    #: registers that junk pops may clobber when diversifying (never the
    #: frame/stack pointers).
    _JUNK_CANDIDATES = (
        Register.RBX, Register.R12, Register.R13, Register.R14, Register.R15,
        Register.R10, Register.R11,
    )

    def __init__(self, image: BinaryImage, seed: int = 0, diversify: bool = True,
                 seed_from_text: bool = True) -> None:
        self.image = image
        self.random = random.Random(seed)
        self.diversify = diversify
        self._by_key: Dict[Tuple, List[Gadget]] = {}
        self._all: List[Gadget] = []
        self.synthesized_bytes = 0
        if seed_from_text:
            self.seed_from_image()

    # -- registration --------------------------------------------------------
    def register(self, gadget: Gadget) -> Gadget:
        """Add a gadget to the pool (indexed by kind/params when classified)."""
        self._all.append(gadget)
        if gadget.kind:
            self._by_key.setdefault(_key(gadget.kind, gadget.params), []).append(gadget)
        return gadget

    def seed_from_image(self) -> int:
        """Scan ``.text`` for classifiable gadgets and register them."""
        count = 0
        for gadget in find_gadgets_in_image(self.image, ".text"):
            classified = classify_gadget(gadget)
            if classified is None:
                continue
            gadget.kind, gadget.params = classified
            self.register(gadget)
            count += 1
        return count

    # -- queries --------------------------------------------------------------
    @property
    def gadgets(self) -> List[Gadget]:
        """All registered gadgets."""
        return list(self._all)

    def addresses(self) -> List[int]:
        """Addresses of all registered gadgets (used by gadget confusion)."""
        return [g.address for g in self._all]

    def ensure(self, kind: str, avoid: FrozenSet[Register] = frozenset(),
               **params) -> Gadget:
        """Return a gadget of ``kind`` with ``params`` safe w.r.t. ``avoid``.

        ``avoid`` lists registers the gadget must not clobber (beyond the
        operation's own destination).  An existing compatible variant is
        chosen at random; otherwise a new gadget is synthesized, possibly as a
        diversified variant whose junk side effects stay clear of ``avoid``.
        """
        candidates = [
            g for g in self._by_key.get(_key(kind, params), [])
            if not (g.clobbers - self._own_effect(kind, params)) & set(avoid)
        ]
        if candidates:
            return self.random.choice(candidates)
        return self._synthesize(kind, params, avoid)

    def _own_effect(self, kind: str, params: Dict[str, object]) -> set:
        own = set()
        for name in ("dst",):
            value = params.get(name)
            if isinstance(value, Register):
                own.add(value)
        if kind in ("cqo", "idiv"):
            own |= {Register.RAX, Register.RDX}
        if kind in ("add_rsp_r", "mov_rsp_mem", "xchg_rsp_mem_jmp", "func_ret"):
            own.add(Register.RSP)
        return own

    # -- synthesis -------------------------------------------------------------
    def _template(self, kind: str, params: Dict[str, object]) -> List[Instruction]:
        dst = params.get("dst")
        src = params.get("src")
        cc = params.get("cc")
        alu = {
            "add_rr": "add", "sub_rr": "sub", "and_rr": "and", "or_rr": "or",
            "xor_rr": "xor", "adc_rr": "adc", "sbb_rr": "sbb", "imul_rr": "imul",
            "shl_rr": "shl", "shr_rr": "shr", "sar_rr": "sar",
            "cmp_rr": "cmp", "test_rr": "test",
        }
        if kind == "pop":
            return [make("pop", Reg(dst))]
        if kind == "ret":
            return []
        if kind == "mov_rr":
            return [make("mov", Reg(dst), Reg(src))]
        if kind in alu:
            return [make(alu[kind], Reg(dst), Reg(src))]
        if kind == "neg":
            return [make("neg", Reg(dst))]
        if kind == "not":
            return [make("not", Reg(dst))]
        if kind in ("load1", "load2", "load4", "load8"):
            size = int(kind[4:])
            mem = Mem(base=src, size=size)
            return [make("mov" if size == 8 else "movzx", Reg(dst), mem)]
        if kind in ("store1", "store2", "store4", "store8"):
            size = int(kind[5:])
            return [make("mov", Mem(base=dst, size=size), Reg(src, size))]
        if kind == "movzx_rr1":
            return [make("movzx", Reg(dst), Reg(src, 1))]
        if kind == "movsx_rr1":
            return [make("movsx", Reg(dst), Reg(src, 1))]
        if kind == "cmov":
            return [make(f"cmov{cc}", Reg(dst), Reg(src))]
        if kind == "set":
            return [make(f"set{cc}", Reg(dst, 1))]
        if kind == "add_rsp_r":
            return [make("add", Reg(Register.RSP), Reg(src))]
        if kind == "add_r_mem":
            return [make("add", Reg(dst), Mem(base=dst))]
        if kind == "sub_mem_r":
            return [make("sub", Mem(base=dst), Reg(src))]
        if kind == "mov_rsp_mem":
            return [make("mov", Reg(Register.RSP), Mem(base=src))]
        if kind == "cqo":
            return [make("cqo")]
        if kind == "idiv":
            return [make("idiv", Reg(src))]
        if kind == "spill":
            return [make("mov", Mem(disp=params["slot"], size=8), Reg(src))]
        if kind == "unspill":
            return [make("mov", Reg(dst), Mem(disp=params["slot"], size=8))]
        if kind == "xchg_rsp_mem_jmp":
            return [make("xchg", Reg(Register.RSP), Mem(base=params["mem"])),
                    make("jmp", Reg(params["target"]))]
        if kind == "func_ret":
            scratch = params.get("scratch", Register.R11)
            return [
                make("mov", Reg(scratch), Imm(params["ss"], 4)),
                make("add", Reg(scratch), Mem(base=scratch)),
                make("xchg", Reg(Register.RSP), Mem(base=scratch)),
            ]
        raise GadgetPoolError(f"no synthesis template for gadget kind {kind!r}")

    def _synthesize(self, kind: str, params: Dict[str, object],
                    avoid: FrozenSet[Register]) -> Gadget:
        body = self._template(kind, params)
        terminator = [] if kind == "xchg_rsp_mem_jmp" else [make("ret")]
        instructions = list(body)

        # never append junk pops to gadgets that redirect the chain pointer:
        # anything popped after an rsp update would be consumed at the branch
        # target instead of from this gadget's own chain slots
        rsp_redirecting = ("add_rsp_r", "mov_rsp_mem", "xchg_rsp_mem_jmp", "func_ret")
        if self.diversify and kind not in rsp_redirecting:
            blocked = set(avoid) | self._own_effect(kind, params) | set(self._params_registers(params))
            junk_options = [r for r in self._JUNK_CANDIDATES if r not in blocked]
            if junk_options and self.random.random() < 0.5:
                junk = self.random.choice(junk_options)
                # a dynamically dead pop: consumes a junk chain slot
                instructions.append(make("pop", Reg(junk)))
            if junk_options and self.random.random() < 0.3:
                junk = self.random.choice(junk_options)
                instructions.insert(0, make("mov", Reg(junk), Reg(junk)))
        instructions += terminator

        code, _ = assemble(instructions, base_address=self.image.text.end)
        address = self.image.text.append(code)
        self.synthesized_bytes += len(code)
        clobbers, pops, flags = analyze_side_effects(instructions)
        gadget = Gadget(address=address, instructions=instructions, kind=kind,
                        params=dict(params), clobbers=clobbers, pops=pops,
                        writes_flags=flags)
        return self.register(gadget)

    @staticmethod
    def _params_registers(params: Dict[str, object]) -> List[Register]:
        return [v for v in params.values() if isinstance(v, Register)]
