"""Semantic classification of discovered gadgets.

Only "clean" single-effect gadgets are classified (one useful instruction
followed by ``ret``); everything else stays unclassified and is only useful
to the diversification machinery or to an attacker's pattern matching.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.gadgets.gadget import Gadget
from repro.isa.instructions import Mnemonic
from repro.isa.operands import Mem, Reg
from repro.isa.registers import Register

#: Binary register-register ALU kinds and their mnemonics.
_ALU_RR = {
    Mnemonic.ADD: "add_rr",
    Mnemonic.SUB: "sub_rr",
    Mnemonic.AND: "and_rr",
    Mnemonic.OR: "or_rr",
    Mnemonic.XOR: "xor_rr",
    Mnemonic.ADC: "adc_rr",
    Mnemonic.SBB: "sbb_rr",
    Mnemonic.IMUL: "imul_rr",
    Mnemonic.SHL: "shl_rr",
    Mnemonic.SHR: "shr_rr",
    Mnemonic.SAR: "sar_rr",
    Mnemonic.CMP: "cmp_rr",
    Mnemonic.TEST: "test_rr",
}


def classify_gadget(gadget: Gadget) -> Optional[Tuple[str, dict]]:
    """Return ``(kind, params)`` for a clean gadget, or None.

    The kinds returned here are the same the synthesizer produces, so gadgets
    found in unobfuscated program parts can transparently join the pool.
    """
    instructions = gadget.instructions
    if len(instructions) != 2 or instructions[-1].mnemonic is not Mnemonic.RET:
        return None
    ins = instructions[0]
    ops = ins.operands

    if ins.mnemonic is Mnemonic.POP and isinstance(ops[0], Reg):
        return "pop", {"dst": ops[0].reg}
    if ins.mnemonic is Mnemonic.MOV and len(ops) == 2:
        if isinstance(ops[0], Reg) and isinstance(ops[1], Reg) and ops[0].size == 8:
            return "mov_rr", {"dst": ops[0].reg, "src": ops[1].reg}
        if isinstance(ops[0], Reg) and isinstance(ops[1], Mem) and ops[1].base is not None \
                and ops[1].index is None and ops[1].disp == 0:
            return f"load{ops[1].size}", {"dst": ops[0].reg, "src": ops[1].base}
        if isinstance(ops[0], Mem) and isinstance(ops[1], Reg) and ops[0].base is not None \
                and ops[0].index is None and ops[0].disp == 0:
            return f"store{ops[0].size}", {"dst": ops[0].base, "src": ops[1].reg}
    if ins.mnemonic is Mnemonic.MOVZX and len(ops) == 2 and isinstance(ops[0], Reg) \
            and isinstance(ops[1], Mem) and ops[1].base is not None and ops[1].index is None \
            and ops[1].disp == 0:
        return f"load{ops[1].size}", {"dst": ops[0].reg, "src": ops[1].base}
    if ins.mnemonic in _ALU_RR and len(ops) == 2 and isinstance(ops[0], Reg) \
            and isinstance(ops[1], Reg):
        if ins.mnemonic is Mnemonic.ADD and ops[0].reg is Register.RSP:
            return "add_rsp_r", {"src": ops[1].reg}
        return _ALU_RR[ins.mnemonic], {"dst": ops[0].reg, "src": ops[1].reg}
    if ins.mnemonic is Mnemonic.NEG and isinstance(ops[0], Reg):
        return "neg", {"dst": ops[0].reg}
    if ins.mnemonic is Mnemonic.NOT and isinstance(ops[0], Reg):
        return "not", {"dst": ops[0].reg}
    if ins.mnemonic is Mnemonic.CMOV and isinstance(ops[0], Reg) and isinstance(ops[1], Reg):
        return "cmov", {"cc": ins.condition, "dst": ops[0].reg, "src": ops[1].reg}
    if ins.mnemonic is Mnemonic.SET and isinstance(ops[0], Reg):
        return "set", {"cc": ins.condition, "dst": ops[0].reg}
    if ins.mnemonic is Mnemonic.CQO:
        return "cqo", {}
    if ins.mnemonic is Mnemonic.IDIV and isinstance(ops[0], Reg):
        return "idiv", {"src": ops[0].reg}
    return None
