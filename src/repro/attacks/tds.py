"""Taint-driven simplification (the TDS analog, §III-B1).

TDS records a concrete execution trace, tracks explicit flows from the
program inputs, and applies semantics-preserving simplifications to strip the
obfuscation machinery from the trace: untainted glue (the ROP ``ret``
dispatch, constant shuffling, VM fetch/dispatch code) is dropped while
instructions on the input-to-output path are kept.  The crucial limitation
the paper leans on (§V-C) is reproduced here: constant propagation is not
applied across input-tainted conditional jumps, so P3's input-coupled
recomputations and the implicit flows of the P1-array updates cannot be
simplified away without risking over-simplification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.attacks.engine import SnapshotEngine
from repro.binary.image import BinaryImage
from repro.cpu.state import EmulationError
from repro.cpu.tracing import TraceEntry, TraceRecorder
from repro.isa.instructions import Mnemonic
from repro.isa.operands import Mem, Reg
from repro.isa.registers import ARG_REGISTERS, Register

_MASK64 = (1 << 64) - 1


@dataclass
class SimplificationReport:
    """Outcome of simplifying one recorded trace.

    Attributes:
        trace_length: executed instructions recorded.
        simplified_length: instructions kept after simplification.
        dispatch_removed: ROP/VM dispatch instructions removed (rets, pops of
            gadget addresses, fetch loops not touching tainted data).
        tainted_branches: conditional control transfers whose decision
            depended on tainted data — these block constant propagation and
            are what P3 deliberately multiplies.
        kept_fraction: ``simplified_length / trace_length``.
    """

    trace_length: int
    simplified_length: int
    dispatch_removed: int
    tainted_branches: int

    @property
    def kept_fraction(self) -> float:
        if not self.trace_length:
            return 0.0
        return self.simplified_length / self.trace_length


class TaintDrivenSimplifier(SnapshotEngine):
    """Record and simplify a concrete execution of one function.

    Executions rewind the engine's prepared emulator with
    :meth:`repro.cpu.Emulator.restore` (see
    :class:`repro.attacks.engine.SnapshotEngine`) instead of paying a
    program fork plus a fresh emulator per recorded trace, which is what
    makes sweeping TDS over a configuration grid tractable.
    """

    def __init__(self, image: BinaryImage, function: str,
                 max_instructions: int = 2_000_000,
                 use_snapshots: bool = True) -> None:
        super().__init__(image, function, max_instructions=max_instructions,
                         use_snapshots=use_snapshots)

    # -- trace recording -----------------------------------------------------------
    def record(self, arguments: Sequence[int]) -> Tuple[List[TraceEntry], int]:
        """Execute the function concretely and return ``(trace, return_value)``."""
        emulator = self._fork_emulator()
        recorder = TraceRecorder(capture_registers=True).attach(emulator)
        for register, value in zip(ARG_REGISTERS, arguments):
            emulator.state.write_reg(register, value & _MASK64)
        try:
            emulator.run()
        except EmulationError:
            pass
        self.stats.executions += 1
        self.stats.instructions += emulator.steps
        return recorder.entries, emulator.state.read_reg(Register.RAX)

    # -- taint propagation over the trace ----------------------------------------------
    @staticmethod
    def _operand_registers(operand) -> Set[Register]:
        if isinstance(operand, Reg):
            return {operand.reg}
        if isinstance(operand, Mem):
            return {r for r in (operand.base, operand.index) if r is not None}
        return set()

    def simplify(self, arguments: Sequence[int],
                 tainted_arguments: Optional[Sequence[int]] = None) -> SimplificationReport:
        """Record a trace for ``arguments`` and simplify it.

        ``tainted_arguments`` selects which argument positions are inputs
        (all of them by default).
        """
        trace, _ = self.record(arguments)
        tainted_positions = list(tainted_arguments
                                 if tainted_arguments is not None
                                 else range(len(arguments)))
        tainted_regs: Set[Register] = {ARG_REGISTERS[i] for i in tainted_positions}
        tainted_memory: Set[int] = set()

        kept: List[TraceEntry] = []
        dispatch_removed = 0
        tainted_branches = 0

        for entry in trace:
            instruction = entry.instruction
            m = instruction.mnemonic
            ops = instruction.operands
            regs = entry.regs or {}

            def memory_address(operand: Mem) -> int:
                address = operand.disp
                if operand.base is not None:
                    address += regs.get(operand.base, 0)
                if operand.index is not None:
                    address += regs.get(operand.index, 0) * operand.scale
                return address & _MASK64

            source_tainted = False
            for operand in ops[1:] if len(ops) > 1 else ops:
                source_tainted |= bool(self._operand_registers(operand) & tainted_regs)
                if isinstance(operand, Mem) and memory_address(operand) in tainted_memory:
                    source_tainted = True
            if ops and isinstance(ops[0], Mem):
                if memory_address(ops[0]) in tainted_memory:
                    source_tainted = True
            if ops and isinstance(ops[0], Reg) and m not in (Mnemonic.MOV, Mnemonic.POP,
                                                             Mnemonic.MOVZX, Mnemonic.MOVSX,
                                                             Mnemonic.LEA, Mnemonic.SET):
                source_tainted |= ops[0].reg in tainted_regs

            # propagate taint
            if ops:
                destination = ops[0]
                if isinstance(destination, Reg):
                    if m is Mnemonic.POP:
                        address = regs.get(Register.RSP, 0)
                        incoming = address in tainted_memory
                        if incoming:
                            tainted_regs.add(destination.reg)
                        else:
                            tainted_regs.discard(destination.reg)
                    elif source_tainted:
                        tainted_regs.add(destination.reg)
                    elif m in (Mnemonic.MOV, Mnemonic.MOVZX, Mnemonic.MOVSX,
                               Mnemonic.LEA, Mnemonic.SET):
                        tainted_regs.discard(destination.reg)
                elif isinstance(destination, Mem):
                    address = memory_address(destination)
                    if source_tainted:
                        tainted_memory.add(address)
                    else:
                        tainted_memory.discard(address)
            if m is Mnemonic.PUSH and ops:
                address = (regs.get(Register.RSP, 0) - 8) & _MASK64
                if self._operand_registers(ops[0]) & tainted_regs:
                    tainted_memory.add(address)
                else:
                    tainted_memory.discard(address)

            # classification: keep tainted computation, drop untainted glue
            is_dispatch = m in (Mnemonic.RET, Mnemonic.CALL, Mnemonic.LEAVE) or (
                m is Mnemonic.POP and not source_tainted) or (
                m is Mnemonic.ADD and ops and isinstance(ops[0], Reg)
                and ops[0].reg is Register.RSP and not source_tainted)
            is_tainted_branch = (m in (Mnemonic.JCC, Mnemonic.CMOV, Mnemonic.SET)
                                 and source_tainted) or (
                m in (Mnemonic.ADD,) and ops and isinstance(ops[0], Reg)
                and ops[0].reg is Register.RSP and source_tainted)
            if is_tainted_branch:
                tainted_branches += 1
            if source_tainted or is_tainted_branch:
                kept.append(entry)
            elif is_dispatch:
                dispatch_removed += 1
            # untainted non-dispatch instructions are simplified away silently

        return SimplificationReport(
            trace_length=len(trace),
            simplified_length=len(kept),
            dispatch_removed=dispatch_removed,
            tainted_branches=tainted_branches,
        )
