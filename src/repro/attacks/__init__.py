"""Automated deobfuscation attacks (§III-B).

* :mod:`repro.attacks.solver` — bitvector expressions and a constraint solver.
* :mod:`repro.attacks.dse` — dynamic symbolic (concolic) execution, the S2E
  analog used for the Table II experiments, with exploration strategies
  including class-uniform path analysis (CUPA).
* :mod:`repro.attacks.symbolic` — static symbolic execution (angr analog)
  with a choice of memory models.
* :mod:`repro.attacks.tds` — taint-driven simplification of execution traces.
* :mod:`repro.attacks.ropaware` — ROPMEMU-style dynamic chain exploration and
  ROPDissector-style static chain analysis with gadget guessing.
* :mod:`repro.attacks.goals` — the G1 (secret finding) and G2 (code coverage)
  attack drivers with budgets.
"""

from repro.attacks.goals import AttackBudget, AttackOutcome, secret_finding_attack, coverage_attack

__all__ = ["AttackBudget", "AttackOutcome", "secret_finding_attack", "coverage_attack"]
