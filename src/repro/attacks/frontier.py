"""Distributed DSE snapshot frontier: work-sharing concolic exploration.

:class:`FrontierExplorer` parallelizes one attack's generational exploration
across worker processes.  The division of labor keeps the explored path set
equal to the serial :meth:`repro.attacks.dse.DseEngine.explore` loop's:

* The **coordinator** (the calling process) owns everything whose order or
  sharing determines the path set — the pending frontier, the
  ``seen_decisions`` decision-prefix dedupe set, the ``seen_inputs`` set,
  the path-signature registry, the constraint solver and the CUPA strategy
  RNG.  Branch negation, solving and dedup all happen here, exactly as in
  the serial loop; workers never expand paths on their own.
* **Workers** each own a full :class:`~repro.attacks.dse.DseEngine` (built
  after fork, so the binary image is inherited, not pickled) and do only
  the expensive part: claim a pending ``(assignment, resume_key)`` from the
  shared task queue, execute it concretely under the shadow tracker on
  their private rewound emulator, and stream the
  :class:`~repro.attacks.dse.ExecutionResult` back.

Mid-path snapshot pools are worker-local: a worker resuming a decision
prefix whose snapshot lives in *another* worker's pool simply falls back to
the entry rewind, which changes cost but never the executed path — so
backtracking remains an optimization, invisible in the path set.  Each
worker's pool gets an equal share of the global ``REPRO_SNAPSHOT_POOL``
budget (:func:`repro.attacks.engine.sharded_pool_capacity`), bounding
resident snapshot memory at the serial run's level regardless of the
worker count.

When the constraint solver is deterministic for the workload (e.g. its
exhaustive-enumeration phase covers the input space, as with the byte-sized
inputs of the RandomFuns suite), an exhaustive frontier run explores
*exactly* the serial explorer's path set in any execution order — the
differential property ``tests/attacks/test_frontier.py`` asserts.

Fault tolerance: workers announce each claimed task before executing it, so
when a worker dies — crash, OOM-kill, or even a *clean* premature exit —
the coordinator returns its claimed branch decision to the frontier,
respawns the worker slot and reassigns the work.  A worker that *hangs*
rather than dies is caught the same way: the coordinator times each
observed claim against the ``REPRO_UNIT_TIMEOUT`` deadline (the claim-cell
protocol shared with :mod:`repro.evaluation.parallel`), kills the stuck
worker and requeues its decision.  Because the path set is determined
entirely by coordinator-owned state (frontier, dedupe sets, solver), a
recovered exploration still equals the serial explorer's — the
fault-injection differential tests (``REPRO_FAULT_INJECT``, see
:mod:`repro.faults`) kill and hang workers mid-exploration and assert
exactly that.

``workers <= 1`` — or a platform without the fork start method — delegates
to the serial engine outright.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import queue as queue_module
import random
import sys
import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.attacks.dse import DseEngine, ExecutionResult, InputSpec
from repro.attacks.engine import EngineStats, sharded_pool_capacity
from repro.attacks.solver.solver import ConstraintSolver
from repro.binary.image import BinaryImage
from repro.faults import (inject_fault, parse_fault_spec, unit_retries,
                          unit_timeout)

#: Seconds between liveness checks while waiting on worker results.
_POLL_SECONDS = 0.5


def fork_available() -> bool:
    """Whether the fork start method (required by the worker pool) exists."""
    return "fork" in multiprocessing.get_all_start_methods()


_STAT_FIELDS = tuple(field.name for field in dataclasses.fields(EngineStats)
                     if field.name != "elapsed")


def _worker_main(worker_index: int, engine_factory: Callable[[], DseEngine],
                 task_queue, result_queue, claim_cell) -> None:
    """Worker loop: execute claimed tasks until the ``None`` sentinel.

    Every claimed task is announced in ``claim_cell`` — a shared int the
    coordinator reads to return a dead worker's branch decision to the
    frontier.  The claim must NOT travel through the result queue: queue
    puts are flushed by a background feeder thread, so a worker dying right
    after claiming (SIGKILL, OOM) would lose the in-flight claim message and
    strand the decision forever; the shared-memory write is synchronous and
    survives any death.  Results carry the engine's per-execution stat
    deltas so the coordinator can aggregate instructions/restores without a
    second message exchange.  Deep shadow-expression DAGs can out-recurse
    pickle's default limit, so it is raised before any result is serialized.
    Interrupts (``KeyboardInterrupt``/``SystemExit``) re-raise instead of
    being reported as task errors: the coordinator treats the dying worker
    like any other premature exit.
    """
    sys.setrecursionlimit(max(sys.getrecursionlimit(), 100_000))
    fault_spec = parse_fault_spec()
    engine = engine_factory()
    while True:
        task = task_queue.get()
        if task is None:
            break
        task_id, assignment, resume_key = task
        claim_cell.value = task_id
        before = {name: getattr(engine.stats, name) for name in _STAT_FIELDS}
        try:
            inject_fault(task_id, 0, fault_spec)
            result = engine.execute(assignment, resume_key=resume_key)
            delta = {name: getattr(engine.stats, name) - before[name]
                     for name in _STAT_FIELDS}
            result_queue.put((worker_index, "ok", (task_id, result), delta))
        except (KeyboardInterrupt, SystemExit):
            raise
        # lint: allow-broad-except — worker blast containment: any
        # failure becomes an error event for the coordinator (KeyboardInterrupt/
        # SystemExit re-raised above)
        except BaseException as exc:  # surface, don't hang the coordinator
            result_queue.put((worker_index, "error",
                              (task_id, f"{type(exc).__name__}: {exc}"),
                              None))
        # cleared only after the result is queued: a death in between leaves
        # a stale claim, which the drain-first recovery ignores
        claim_cell.value = -1


class FrontierExplorer:
    """Coordinator of a distributed DSE exploration of one function.

    Constructor arguments mirror :class:`~repro.attacks.dse.DseEngine`, plus
    ``workers`` (process count) and ``pool_capacity`` reinterpreted as the
    *global* mid-path snapshot budget to divide across workers (default:
    the ``REPRO_SNAPSHOT_POOL`` environment budget).
    """

    def __init__(self, image: BinaryImage, function: str,
                 input_spec: Optional[InputSpec] = None,
                 strategy: str = "cupa", memory_model: str = "concretize",
                 seed: int = 0, max_instructions: int = 2_000_000,
                 workers: int = 2, use_snapshots: bool = True,
                 backtracking: Optional[bool] = None,
                 pool_capacity: Optional[int] = None) -> None:
        if strategy not in ("cupa", "bfs", "dfs"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.image = image
        self.function = function
        self.input_spec = input_spec or InputSpec()
        self.strategy = strategy
        self.memory_model = memory_model
        self.seed = seed
        self.max_instructions = max_instructions
        self.workers = max(1, workers)
        self.use_snapshots = use_snapshots
        self.backtracking = backtracking
        self.worker_pool_capacity = sharded_pool_capacity(
            self.workers, total=pool_capacity)
        self.random = random.Random(seed)
        self.symbols = self.input_spec.symbol_table()
        self.solver = ConstraintSolver(self.symbols, seed=seed)
        self.stats = EngineStats()
        #: worker index -> concrete executions it performed (serial
        #: delegation reports everything under worker 0).
        self.executions_by_worker: Dict[int, int] = {}
        #: replacement workers forked after a premature worker exit.
        self.respawns = 0
        #: claimed decisions whose ``REPRO_UNIT_TIMEOUT`` deadline expired.
        self.timeouts = 0

    # -- serial delegation ---------------------------------------------------
    def _make_engine(self, pool_capacity: Optional[int]) -> DseEngine:
        return DseEngine(self.image, self.function, self.input_spec,
                         strategy=self.strategy,
                         memory_model=self.memory_model, seed=self.seed,
                         max_instructions=self.max_instructions,
                         use_snapshots=self.use_snapshots,
                         backtracking=self.backtracking,
                         pool_capacity=pool_capacity)

    @property
    def distributed(self) -> bool:
        return self.workers > 1 and fork_available()

    # -- exploration ---------------------------------------------------------
    def explore(self, time_budget: float = 10.0, max_executions: int = 200,
                stop_condition: Optional[Callable[[ExecutionResult], bool]] = None,
                max_solver_queries: Optional[int] = None,
                ) -> Tuple[List[ExecutionResult], EngineStats]:
        """Explore paths until the budget runs out or ``stop_condition`` holds.

        Same contract as :meth:`DseEngine.explore`; ``stop_condition`` runs
        in the coordinator process, so closures over caller state work
        unchanged.  Results that were already in flight when the stop fired
        are still drained and counted (they did execute).
        """
        if not self.distributed:
            engine = self._make_engine(None)
            results, stats = engine.explore(
                time_budget=time_budget, max_executions=max_executions,
                stop_condition=stop_condition,
                max_solver_queries=max_solver_queries)
            self.stats = stats
            self.executions_by_worker = {0: stats.executions}
            return results, stats
        return self._explore_distributed(time_budget, max_executions,
                                         stop_condition, max_solver_queries)

    def _explore_distributed(self, time_budget, max_executions,
                             stop_condition, max_solver_queries):
        start = time.monotonic()  # lint: allow-wallclock — wall-clock attack budget, reported not row-keyed
        stats = self.stats
        initial = {name: 0 for name in self.symbols}
        # pending entries are (priority, assignment, resume_key, attempt);
        # attempt counts how often a worker died holding this decision
        pending: List[Tuple[int, Dict[str, int], Optional[Tuple], int]] = \
            [(0, initial, None, 0)]
        seen_inputs: Set[Tuple] = {tuple(sorted(initial.items()))}
        seen_decisions: Set[Tuple] = set()
        results: List[ExecutionResult] = []
        path_signatures: Set[Tuple] = set()
        self.executions_by_worker = {index: 0 for index in range(self.workers)}
        self.respawns = 0
        self.timeouts = 0
        retries = unit_retries()
        deadline = unit_timeout()
        respawn_limit = max(8, self.workers * (retries + 2))

        context = multiprocessing.get_context("fork")
        task_queue = context.Queue()
        result_queue = context.Queue()
        #: per-slot shared claim cells (-1 = idle); see :func:`_worker_main`
        claim_cells = [context.Value("q", -1, lock=False)
                       for _ in range(self.workers)]
        factory = lambda: self._make_engine(self.worker_pool_capacity)  # noqa: E731

        def spawn(index: int):
            claim_cells[index].value = -1
            process = context.Process(
                target=_worker_main,
                args=(index, factory, task_queue, result_queue,
                      claim_cells[index]),
                daemon=True)
            process.start()
            return process

        processes: Dict[int, object] = {index: spawn(index)
                                        for index in range(self.workers)}
        #: dispatched-but-unresolved tasks, by task id
        inflight: Dict[int, Tuple[int, Dict[str, int], Optional[Tuple], int]] = {}
        #: results drained off the queue, waiting for frontier expansion
        arrived: List[Tuple[int, ExecutionResult, dict]] = []
        next_task_id = 0
        stopped = False
        #: slot -> (claimed task id, first observed) — the coordinator's
        #: view of the shared claim cells; deadlines run from observation
        observed: Dict[int, Optional[Tuple[int, float]]] = {
            slot: None for slot in range(self.workers)}

        def handle(message) -> None:
            worker_index, kind, payload, delta = message
            task_id, body = payload
            if task_id not in inflight:
                return  # stale duplicate drained around a worker death
            del inflight[task_id]
            if kind == "error":
                raise RuntimeError(
                    f"frontier worker {worker_index} failed: {body}")
            arrived.append((worker_index, body, delta))

        def drain() -> None:
            while True:
                try:
                    handle(result_queue.get_nowait())
                except queue_module.Empty:
                    break

        def poll_claims() -> None:
            now = time.monotonic()  # lint: allow-wallclock — worker-liveness deadline, not row content
            for slot, cell in enumerate(claim_cells):
                value = cell.value
                if value < 0:
                    observed[slot] = None
                elif observed[slot] is None or observed[slot][0] != value:
                    observed[slot] = (value, now)

        def requeue(task_id: int, failure: str) -> None:
            """Return a lost claimed decision to the frontier (attempt-capped)."""
            if task_id not in inflight:
                return  # its result raced the fault and won
            priority, assignment, resume_key, attempt = inflight.pop(task_id)
            if attempt >= retries:
                raise RuntimeError(
                    f"frontier worker {failure} {attempt + 1} times on one "
                    f"branch decision")
            # the decision goes back to the frontier and is reassigned
            # (under a fresh task id) — path set stays identical to serial
            pending.append((priority, assignment, resume_key, attempt + 1))

        def respawn(slot: int) -> None:
            self.respawns += 1
            if self.respawns > respawn_limit:
                raise RuntimeError(
                    f"frontier worker respawn limit exceeded "
                    f"({self.respawns} respawns)")
            observed[slot] = None
            processes[slot] = spawn(slot)

        def recover_dead_workers() -> None:
            dead = [slot for slot, process in processes.items()
                    if not process.is_alive()]
            if not dead:
                return
            # drain buffered messages first: a result that raced the death
            # must win over re-enqueueing its decision
            drain()
            for slot in dead:
                exitcode = processes[slot].exitcode
                claimed = claim_cells[slot].value
                if claimed >= 0:
                    requeue(claimed,
                            f"died (last exit code {exitcode})")
                respawn(slot)

        def enforce_deadlines() -> None:
            """Kill workers whose claimed decision outlived the deadline.

            Same protocol as the grid pool's supervisor: deadlines run from
            when the coordinator first *observed* the claim, the stuck
            worker is killed, buffered results are drained first (a result
            that raced the kill wins over a retry), and the decision goes
            back to the frontier under the attempt cap.
            """
            if deadline is None:
                return
            now = time.monotonic()  # lint: allow-wallclock — worker-liveness deadline, not row content
            for slot, claim in list(observed.items()):
                if claim is None or claim[0] not in inflight \
                        or now - claim[1] <= deadline:
                    continue
                process = processes[slot]
                if process.is_alive():
                    process.kill()
                    process.join(timeout=5.0)
                self.timeouts += 1
                drain()
                requeue(claim[0],
                        f"exceeded the {deadline:g}s unit deadline")
                respawn(slot)

        try:
            while True:
                # dispatch while there is pending work, free workers and budget
                while (pending and not stopped
                       and len(inflight) < self.workers
                       and stats.executions + len(inflight) < max_executions
                       and time.monotonic() - start <= time_budget):  # lint: allow-wallclock — wall-clock attack budget, reported not row-keyed
                    index = self._pick(pending)
                    entry = pending.pop(index)
                    inflight[next_task_id] = entry
                    task_queue.put((next_task_id, entry[1], entry[2]))
                    next_task_id += 1
                if not inflight and not arrived:
                    break

                poll_claims()
                try:
                    handle(result_queue.get(timeout=_POLL_SECONDS))
                except queue_module.Empty:
                    recover_dead_workers()
                    enforce_deadlines()

                while arrived:
                    worker_index, result, delta = arrived.pop(0)
                    results.append(result)
                    self.executions_by_worker[worker_index] += 1
                    for name, value in delta.items():
                        setattr(stats, name, getattr(stats, name) + value)

                    signature = tuple(
                        (address, constraint.expected)
                        for address, constraint in zip(result.branch_addresses,
                                                       result.constraints))
                    if signature not in path_signatures:
                        path_signatures.add(signature)
                        stats.paths_seen += 1

                    if stopped:
                        continue  # draining in-flight results after a stop
                    if stop_condition is not None and stop_condition(result):
                        stopped = True
                        continue

                    # generational expansion — identical to the serial loop;
                    # the shared dedupe sets live here, so no two workers
                    # ever chase the same negated decision
                    for position, constraint in enumerate(result.constraints):
                        if max_solver_queries is not None \
                                and stats.solver_queries >= max_solver_queries:
                            break
                        if time.monotonic() - start > time_budget:  # lint: allow-wallclock — wall-clock attack budget, reported not row-keyed
                            break
                        decision_key = (
                            signature[:position],
                            result.branch_addresses[position],
                            not constraint.expected,
                        )
                        if decision_key in seen_decisions:
                            continue
                        seen_decisions.add(decision_key)
                        prefix = result.constraints[:position] \
                            + [constraint.negated()]
                        stats.solver_queries += 1
                        solution = self.solver.solve(
                            prefix, seed_assignment=result.assignment)
                        if solution is None:
                            continue
                        key = tuple(sorted(solution.items()))
                        if key in seen_inputs:
                            continue
                        seen_inputs.add(key)
                        pending.append((result.branch_addresses[position],
                                        solution,
                                        result.decision_keys[:position], 0))
        # lint: allow-broad-except — error-path cleanup that re-raises:
        # workers are terminated so a failed exploration cannot hang the join
        except BaseException:
            # error path: terminate instead of the sentinel handshake, so a
            # failed exploration doesn't block up to 10 s per process
            for process in processes.values():
                if process.is_alive():
                    process.terminate()
            for process in processes.values():
                process.join(timeout=2.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=2.0)
            task_queue.cancel_join_thread()
            result_queue.cancel_join_thread()
            raise
        else:
            for _ in processes:
                try:
                    task_queue.put(None)
                except (OSError, ValueError):
                    break
            for process in processes.values():
                process.join(timeout=5.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)

        stats.elapsed = time.monotonic() - start  # lint: allow-wallclock — elapsed-time stat, excluded from byte-identity
        return results, stats

    def _pick(self, pending: List[Tuple]) -> int:
        """Strategy-driven frontier pick (same policy as the serial engine)."""
        if self.strategy == "dfs":
            return len(pending) - 1
        if self.strategy == "bfs":
            return 0
        classes: Dict[int, List[int]] = {}
        for index, entry in enumerate(pending):
            classes.setdefault(entry[0], []).append(index)
        chosen_class = self.random.choice(list(classes))
        return self.random.choice(classes[chosen_class])
