"""Distributed DSE snapshot frontier: work-sharing concolic exploration.

:class:`FrontierExplorer` parallelizes one attack's generational exploration
across worker processes.  The division of labor keeps the explored path set
equal to the serial :meth:`repro.attacks.dse.DseEngine.explore` loop's:

* The **coordinator** (the calling process) owns everything whose order or
  sharing determines the path set — the pending frontier, the
  ``seen_decisions`` decision-prefix dedupe set, the ``seen_inputs`` set,
  the path-signature registry, the constraint solver and the CUPA strategy
  RNG.  Branch negation, solving and dedup all happen here, exactly as in
  the serial loop; workers never expand paths on their own.
* **Workers** each own a full :class:`~repro.attacks.dse.DseEngine` (built
  after fork, so the binary image is inherited, not pickled) and do only
  the expensive part: claim a pending ``(assignment, resume_key)`` from the
  shared task queue, execute it concretely under the shadow tracker on
  their private rewound emulator, and stream the
  :class:`~repro.attacks.dse.ExecutionResult` back.

Mid-path snapshot pools are worker-local: a worker resuming a decision
prefix whose snapshot lives in *another* worker's pool simply falls back to
the entry rewind, which changes cost but never the executed path — so
backtracking remains an optimization, invisible in the path set.  Each
worker's pool gets an equal share of the global ``REPRO_SNAPSHOT_POOL``
budget (:func:`repro.attacks.engine.sharded_pool_capacity`), bounding
resident snapshot memory at the serial run's level regardless of the
worker count.

When the constraint solver is deterministic for the workload (e.g. its
exhaustive-enumeration phase covers the input space, as with the byte-sized
inputs of the RandomFuns suite), an exhaustive frontier run explores
*exactly* the serial explorer's path set in any execution order — the
differential property ``tests/attacks/test_frontier.py`` asserts.

``workers <= 1`` — or a platform without the fork start method — delegates
to the serial engine outright.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import queue as queue_module
import random
import sys
import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.attacks.dse import DseEngine, ExecutionResult, InputSpec
from repro.attacks.engine import EngineStats, sharded_pool_capacity
from repro.attacks.solver.solver import ConstraintSolver
from repro.binary.image import BinaryImage

#: Seconds between liveness checks while waiting on worker results.
_POLL_SECONDS = 0.5


def fork_available() -> bool:
    """Whether the fork start method (required by the worker pool) exists."""
    return "fork" in multiprocessing.get_all_start_methods()


_STAT_FIELDS = tuple(field.name for field in dataclasses.fields(EngineStats)
                     if field.name != "elapsed")


def _worker_main(worker_index: int, engine_factory: Callable[[], DseEngine],
                 task_queue, result_queue) -> None:
    """Worker loop: execute claimed inputs until the ``None`` sentinel.

    Results carry the engine's per-execution stat deltas so the coordinator
    can aggregate instructions/restores without a second message exchange.
    Deep shadow-expression DAGs can out-recurse pickle's default limit, so
    it is raised before any result is serialized.
    """
    sys.setrecursionlimit(max(sys.getrecursionlimit(), 100_000))
    engine = engine_factory()
    while True:
        task = task_queue.get()
        if task is None:
            break
        assignment, resume_key = task
        before = {name: getattr(engine.stats, name) for name in _STAT_FIELDS}
        try:
            result = engine.execute(assignment, resume_key=resume_key)
            delta = {name: getattr(engine.stats, name) - before[name]
                     for name in _STAT_FIELDS}
            result_queue.put((worker_index, "ok", result, delta))
        except BaseException as exc:  # surface, don't hang the coordinator
            result_queue.put((worker_index, "error",
                              f"{type(exc).__name__}: {exc}", None))


class FrontierExplorer:
    """Coordinator of a distributed DSE exploration of one function.

    Constructor arguments mirror :class:`~repro.attacks.dse.DseEngine`, plus
    ``workers`` (process count) and ``pool_capacity`` reinterpreted as the
    *global* mid-path snapshot budget to divide across workers (default:
    the ``REPRO_SNAPSHOT_POOL`` environment budget).
    """

    def __init__(self, image: BinaryImage, function: str,
                 input_spec: Optional[InputSpec] = None,
                 strategy: str = "cupa", memory_model: str = "concretize",
                 seed: int = 0, max_instructions: int = 2_000_000,
                 workers: int = 2, use_snapshots: bool = True,
                 backtracking: Optional[bool] = None,
                 pool_capacity: Optional[int] = None) -> None:
        if strategy not in ("cupa", "bfs", "dfs"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.image = image
        self.function = function
        self.input_spec = input_spec or InputSpec()
        self.strategy = strategy
        self.memory_model = memory_model
        self.seed = seed
        self.max_instructions = max_instructions
        self.workers = max(1, workers)
        self.use_snapshots = use_snapshots
        self.backtracking = backtracking
        self.worker_pool_capacity = sharded_pool_capacity(
            self.workers, total=pool_capacity)
        self.random = random.Random(seed)
        self.symbols = self.input_spec.symbol_table()
        self.solver = ConstraintSolver(self.symbols, seed=seed)
        self.stats = EngineStats()
        #: worker index -> concrete executions it performed (serial
        #: delegation reports everything under worker 0).
        self.executions_by_worker: Dict[int, int] = {}

    # -- serial delegation ---------------------------------------------------
    def _make_engine(self, pool_capacity: Optional[int]) -> DseEngine:
        return DseEngine(self.image, self.function, self.input_spec,
                         strategy=self.strategy,
                         memory_model=self.memory_model, seed=self.seed,
                         max_instructions=self.max_instructions,
                         use_snapshots=self.use_snapshots,
                         backtracking=self.backtracking,
                         pool_capacity=pool_capacity)

    @property
    def distributed(self) -> bool:
        return self.workers > 1 and fork_available()

    # -- exploration ---------------------------------------------------------
    def explore(self, time_budget: float = 10.0, max_executions: int = 200,
                stop_condition: Optional[Callable[[ExecutionResult], bool]] = None,
                max_solver_queries: Optional[int] = None,
                ) -> Tuple[List[ExecutionResult], EngineStats]:
        """Explore paths until the budget runs out or ``stop_condition`` holds.

        Same contract as :meth:`DseEngine.explore`; ``stop_condition`` runs
        in the coordinator process, so closures over caller state work
        unchanged.  Results that were already in flight when the stop fired
        are still drained and counted (they did execute).
        """
        if not self.distributed:
            engine = self._make_engine(None)
            results, stats = engine.explore(
                time_budget=time_budget, max_executions=max_executions,
                stop_condition=stop_condition,
                max_solver_queries=max_solver_queries)
            self.stats = stats
            self.executions_by_worker = {0: stats.executions}
            return results, stats
        return self._explore_distributed(time_budget, max_executions,
                                         stop_condition, max_solver_queries)

    def _explore_distributed(self, time_budget, max_executions,
                             stop_condition, max_solver_queries):
        start = time.monotonic()
        stats = self.stats
        initial = {name: 0 for name in self.symbols}
        pending: List[Tuple[int, Dict[str, int], Optional[Tuple]]] = \
            [(0, initial, None)]
        seen_inputs: Set[Tuple] = {tuple(sorted(initial.items()))}
        seen_decisions: Set[Tuple] = set()
        results: List[ExecutionResult] = []
        path_signatures: Set[Tuple] = set()
        self.executions_by_worker = {index: 0 for index in range(self.workers)}

        context = multiprocessing.get_context("fork")
        task_queue = context.Queue()
        result_queue = context.Queue()
        factory = lambda: self._make_engine(self.worker_pool_capacity)  # noqa: E731
        processes = [
            context.Process(target=_worker_main,
                            args=(index, factory, task_queue, result_queue),
                            daemon=True)
            for index in range(self.workers)
        ]
        for process in processes:
            process.start()

        inflight = 0
        stopped = False
        try:
            while True:
                # dispatch while there is pending work, free workers and budget
                while (pending and not stopped and inflight < self.workers
                       and stats.executions + inflight < max_executions
                       and time.monotonic() - start <= time_budget):
                    index = self._pick(pending)
                    _, assignment, resume_key = pending.pop(index)
                    task_queue.put((assignment, resume_key))
                    inflight += 1
                if inflight == 0:
                    break

                try:
                    worker_index, status, payload, delta = \
                        result_queue.get(timeout=_POLL_SECONDS)
                except queue_module.Empty:
                    dead = [p for p in processes
                            if not p.is_alive() and p.exitcode not in (0, None)]
                    if dead:
                        raise RuntimeError(
                            f"frontier worker died with exit code "
                            f"{dead[0].exitcode}")
                    continue
                inflight -= 1
                if status == "error":
                    raise RuntimeError(
                        f"frontier worker {worker_index} failed: {payload}")
                result: ExecutionResult = payload
                results.append(result)
                self.executions_by_worker[worker_index] += 1
                for name, value in delta.items():
                    setattr(stats, name, getattr(stats, name) + value)

                signature = tuple(
                    (address, constraint.expected)
                    for address, constraint in zip(result.branch_addresses,
                                                   result.constraints))
                if signature not in path_signatures:
                    path_signatures.add(signature)
                    stats.paths_seen += 1

                if stopped:
                    continue  # draining in-flight results after a stop
                if stop_condition is not None and stop_condition(result):
                    stopped = True
                    continue

                # generational expansion — identical to the serial loop;
                # the shared dedupe sets live here, so no two workers ever
                # chase the same negated decision
                for position, constraint in enumerate(result.constraints):
                    if max_solver_queries is not None \
                            and stats.solver_queries >= max_solver_queries:
                        break
                    if time.monotonic() - start > time_budget:
                        break
                    decision_key = (
                        signature[:position],
                        result.branch_addresses[position],
                        not constraint.expected,
                    )
                    if decision_key in seen_decisions:
                        continue
                    seen_decisions.add(decision_key)
                    prefix = result.constraints[:position] + [constraint.negated()]
                    stats.solver_queries += 1
                    solution = self.solver.solve(
                        prefix, seed_assignment=result.assignment)
                    if solution is None:
                        continue
                    key = tuple(sorted(solution.items()))
                    if key in seen_inputs:
                        continue
                    seen_inputs.add(key)
                    pending.append((result.branch_addresses[position], solution,
                                    result.decision_keys[:position]))
        finally:
            for _ in processes:
                try:
                    task_queue.put(None)
                except (OSError, ValueError):
                    break
            for process in processes:
                process.join(timeout=5.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)

        stats.elapsed = time.monotonic() - start
        return results, stats

    def _pick(self, pending: List[Tuple]) -> int:
        """Strategy-driven frontier pick (same policy as the serial engine)."""
        if self.strategy == "dfs":
            return len(pending) - 1
        if self.strategy == "bfs":
            return 0
        classes: Dict[int, List[int]] = {}
        for index, entry in enumerate(pending):
            classes.setdefault(entry[0], []).append(index)
        chosen_class = self.random.choice(list(classes))
        return self.random.choice(classes[chosen_class])
