"""Shadow (symbolic) execution alongside the concrete emulator.

The :class:`ShadowTracker` hooks an :class:`repro.cpu.Emulator` and mirrors
every executed instruction over symbolic expressions: registers and memory
locations whose value derives from the designated input symbols carry an
expression, everything else stays concrete.  When a branch decision (or a
chain-pointer update, for ROP-encoded branches) depends on a symbolic value,
the tracker records a :class:`PathConstraint` — the raw material both the DSE
and the SE engines feed to the solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.attacks.solver.expr import (
    BinExpr,
    ConstExpr,
    Expression,
    SelectExpr,
    UnExpr,
)
from repro.attacks.solver.solver import PathConstraint
from repro.cpu import semantics as _semantics
from repro.isa.flags import Flag
from repro.isa.instructions import Instruction, Mnemonic
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import Register
from repro.memory import MemoryError_

_MASK64 = (1 << 64) - 1

#: Condition-code -> comparison operator used when the flag source is a ``cmp``.
_CMP_CONDITIONS = {
    "e": "eq", "ne": "ne",
    "l": "slt", "le": "sle", "g": "sgt", "ge": "sge",
    "b": "ult", "be": "ule", "a": "ugt", "ae": "uge",
}

_ALU_OPERATORS = {
    Mnemonic.ADD: "add", Mnemonic.SUB: "sub", Mnemonic.AND: "and",
    Mnemonic.OR: "or", Mnemonic.XOR: "xor", Mnemonic.IMUL: "mul",
    Mnemonic.SHL: "shl", Mnemonic.SHR: "shr", Mnemonic.SAR: "sar",
}

#: Lazily-resolved addresses of the host functions that read or write guest
#: memory directly (resolved on first use to keep this module import-light).
_MEMORY_TOUCHING_HOSTS: frozenset = frozenset()


def _memory_touching_hosts() -> frozenset:
    global _MEMORY_TOUCHING_HOSTS
    if not _MEMORY_TOUCHING_HOSTS:
        from repro.cpu.host import host_function_address

        _MEMORY_TOUCHING_HOSTS = frozenset(
            host_function_address(name)
            for name in ("memcpy", "memset", "strlen", "puts"))
    return _MEMORY_TOUCHING_HOSTS


@dataclass
class BranchRecord:
    """A recorded symbolic branch decision.

    Attributes:
        address: address of the deciding instruction.
        constraint: the path constraint describing the decision actually taken.
        kind: ``"jcc"`` for flag branches, ``"pointer"`` for symbolic values
            concretized into the stack/instruction pointer (ROP branches).
    """

    address: int
    constraint: PathConstraint
    kind: str


class ShadowTracker:
    """Symbolic mirror of a concrete execution.

    Beyond the path constraints, the tracker maintains the bookkeeping the
    backtracking DSE explorer needs to resume an execution from a mid-path
    snapshot under a *different* input assignment:

    * :attr:`repair_exact` stays True while the shadow state exactly
      characterizes every input-dependent bit of the machine — re-evaluating
      :attr:`register_exprs` / :attr:`memory_exprs` under a new assignment
      then reconstructs the state a rerun from the entry would have reached.
      Depth-truncated expressions, symbolic-address memory accesses (whose
      concretization loses the input dependence), host calls over symbolic
      arguments and partial-register merges the shadow cannot model all
      clear it.
    * :attr:`constraints_exact` stays True while every recorded constraint's
      *expression* semantics exactly match the concrete branch semantics
      (sub-64-bit signed comparisons, for example, do not), so a solver
      assignment that satisfies a prefix provably drives a rerun down it.
    * :attr:`flag_repair` describes how to recompute the concrete CPU flags
      from the current symbolic flag source (``("sub"|"add", left, right,
      size)`` or ``("logic", expr, size)``), ``("concrete",)`` when the last
      flag-setting instruction had no symbolic inputs (the restored flags
      are already exact), or None when it is not exactly reproducible.
    * :attr:`branch_observer`, when set, is invoked as ``observer(kind,
      address)`` at the exact point a :class:`BranchRecord` is about to be
      recorded — *before* the record is appended and before the hook mutates
      any shadow state for that instruction.  This is the capture point the
      backtracking DSE explorer snapshots at: ``cmov`` and pointer (ROP)
      records update destination shadows in the same hook call, so a
      snapshot taken after the hook could not be unwound to the pre-branch
      state, while the observer sees it directly.  Observers are
      deliberately not copied by :meth:`fork` (a stored fork must not
      capture into a dead pool).
    * ``stable_ranges`` are memory regions the obfuscator guarantees are
      runtime-constant (the opaque predicate arrays, recorded by the
      rewriter under ``image.metadata["rop_stable_ranges"]``).  A
      symbolic-address *read* that falls inside one is modeled exactly as a
      :class:`SelectExpr` over the whole region instead of being
      concretized, so opaque-constant extraction loads do not collapse
      :attr:`repair_exact`.  Any write into a range (or a memory-touching
      host call) conservatively retires it.
    """

    def __init__(self, memory_model: str = "concretize", page_size: int = 256,
                 max_expression_depth: int = 512,
                 stable_ranges: Sequence[Tuple[int, int]] = ()) -> None:
        if memory_model not in ("concretize", "page"):
            raise ValueError("memory_model must be 'concretize' or 'page'")
        self.memory_model = memory_model
        self.page_size = page_size
        self.max_expression_depth = max_expression_depth
        #: regions guaranteed constant at run time; retired on any write
        self._stable_ranges: Tuple[Tuple[int, int], ...] = tuple(
            (int(start), int(end)) for start, end in stable_ranges)
        self._stable_snapshots: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self.register_exprs: Dict[Register, Expression] = {}
        self.memory_exprs: Dict[Tuple[int, int], Expression] = {}
        #: byte address -> owning ``memory_exprs`` key, so overlap probes in
        #: the per-instruction hook cost O(access width), not O(entries)
        self._memory_bytes: Dict[int, Tuple[int, int]] = {}
        #: last flag-setting operation: ("cmp", a, b) or ("result", expr)
        self.flag_state: Optional[Tuple] = None
        self.carry_expr: Optional[Expression] = None
        self.branches: List[BranchRecord] = []
        self.symbolic_instruction_count = 0
        self.flag_repair: Optional[Tuple] = None
        self.repair_exact = memory_model == "concretize"
        self.constraints_exact = True
        #: ``observer(kind, address)`` called right before a branch record
        #: is appended (kinds: "jcc", "cmov", "pointer"); see class docs.
        self.branch_observer: Optional[Callable[[str, int], None]] = None

    def fork(self) -> "ShadowTracker":
        """Return an independent copy of the tracker state.

        Expressions are immutable, so forking is a handful of shallow dict
        and list copies — the shadow half of a mid-path branch snapshot.
        """
        clone = ShadowTracker(memory_model=self.memory_model,
                              page_size=self.page_size,
                              max_expression_depth=self.max_expression_depth)
        clone._stable_ranges = self._stable_ranges
        clone._stable_snapshots = dict(self._stable_snapshots)
        clone.register_exprs = dict(self.register_exprs)
        clone.memory_exprs = dict(self.memory_exprs)
        clone._memory_bytes = dict(self._memory_bytes)
        clone.flag_state = self.flag_state
        clone.carry_expr = self.carry_expr
        clone.branches = list(self.branches)
        clone.symbolic_instruction_count = self.symbolic_instruction_count
        clone.flag_repair = self.flag_repair
        clone.repair_exact = self.repair_exact
        clone.constraints_exact = self.constraints_exact
        return clone

    # -- symbol introduction ----------------------------------------------------
    def set_register_symbol(self, register: Register, expression: Expression) -> None:
        """Mark a register as holding a symbolic input value."""
        self.register_exprs[register] = expression

    def set_memory_symbol(self, address: int, size: int, expression: Expression) -> None:
        """Mark a memory location as holding a symbolic input value."""
        self._set_memory_expr((address, size), expression)

    # -- small helpers -------------------------------------------------------------
    def _bounded(self, expression: Expression) -> Expression:
        if expression.depth() > self.max_expression_depth:
            # giving up loses the input dependence: state repair is no
            # longer exact from here on
            self.repair_exact = False
            return ConstExpr(0)  # give up on unwieldy expressions (concretize)
        return expression

    def _set_memory_expr(self, key: Tuple[int, int],
                         expression: Optional[Expression]) -> None:
        """Insert or remove a ``memory_exprs`` entry, keeping the byte map."""
        address, size = key
        if expression is None:
            if self.memory_exprs.pop(key, None) is not None:
                for byte in range(address, address + size):
                    self._memory_bytes.pop(byte, None)
            return
        if key not in self.memory_exprs:
            for byte in range(address, address + size):
                self._memory_bytes[byte] = key
        self.memory_exprs[key] = expression

    def _overlapping_memory(self, address: int, size: int,
                            key: Tuple[int, int]) -> bool:
        """True when ``[address, address+size)`` overlaps a foreign entry."""
        bytes_map = self._memory_bytes
        for byte in range(address, address + size):
            owner = bytes_map.get(byte)
            if owner is not None and owner != key:
                return True
        return False

    def _register_expr(self, emulator, register: Register, size: int = 8) -> Optional[Expression]:
        expression = self.register_exprs.get(register)
        if expression is None:
            return None
        if size < 8:
            return BinExpr("and", expression, ConstExpr((1 << (8 * size)) - 1))
        return expression

    def _operand_expr(self, emulator, operand) -> Optional[Expression]:
        """Expression of an operand, or None when it is concrete."""
        if isinstance(operand, Reg):
            return self._register_expr(emulator, operand.reg, operand.size)
        if isinstance(operand, Imm):
            return None
        if isinstance(operand, Mem):
            address = emulator.effective_address(operand)
            symbolic_address = self._address_expr(emulator, operand)
            if symbolic_address is not None:
                select = self._stable_select(emulator, address,
                                             symbolic_address, operand.size)
                if select is not None:
                    # the read falls in a runtime-constant region: the select
                    # over the full region keeps the input dependence, so
                    # state repair stays exact
                    return select
            if symbolic_address is not None and self.memory_model == "page":
                return self._page_select(emulator, address, symbolic_address, operand.size)
            if symbolic_address is not None:
                # concretizing a symbolic-address read drops the address's
                # input dependence from the loaded value
                self.repair_exact = False
            expression = self.memory_exprs.get((address, operand.size))
            if expression is None and self.repair_exact \
                    and self._overlapping_memory(address, operand.size,
                                                 (address, operand.size)):
                # a wider/narrower symbolic entry covers these bytes: the
                # exact-key miss silently concretizes input-tainted data
                self.repair_exact = False
            return expression
        return None

    def _address_expr(self, emulator, operand: Mem) -> Optional[Expression]:
        parts: List[Expression] = []
        symbolic = False
        if operand.base is not None:
            expression = self.register_exprs.get(operand.base)
            if expression is not None:
                symbolic = True
                parts.append(expression)
            else:
                parts.append(ConstExpr(emulator.state.read_reg(operand.base)))
        if operand.index is not None:
            expression = self.register_exprs.get(operand.index)
            scale = ConstExpr(operand.scale)
            if expression is not None:
                symbolic = True
                parts.append(BinExpr("mul", expression, scale))
            else:
                parts.append(ConstExpr(emulator.state.read_reg(operand.index) * operand.scale))
        if operand.disp:
            parts.append(ConstExpr(operand.disp & _MASK64))
        if not symbolic or not parts:
            return None
        expression = parts[0]
        for part in parts[1:]:
            expression = BinExpr("add", expression, part)
        return expression

    def _stable_select(self, emulator, address: int, address_expr: Expression,
                       size: int) -> Optional[Expression]:
        """Select over a runtime-constant region, or None when outside one.

        The snapshot covers the *entire* region (not one page), so any
        assignment whose index stays inside the region — the opaque
        extraction masks its index to guarantee exactly that — evaluates to
        the bytes the machine would actually load.
        """
        for start, end in self._stable_ranges:
            if start <= address and address + size <= end:
                key = (start, end)
                snapshot = self._stable_snapshots.get(key)
                if snapshot is None:
                    try:
                        snapshot = tuple(emulator.memory.read(start, end - start))
                    except MemoryError_:  # unmapped: let the caller concretize
                        return None
                    self._stable_snapshots[key] = snapshot
                return SelectExpr(base_address=start, snapshot=snapshot,
                                  index=address_expr, size=size)
        return None

    def _invalidate_stable(self, address: int, size: int) -> None:
        """Retire every stable range a write to ``[address, address+size)`` hits."""
        if not self._stable_ranges:
            return
        kept = []
        for start, end in self._stable_ranges:
            if address < end and address + size > start:
                self._stable_snapshots.pop((start, end), None)
            else:
                kept.append((start, end))
        self._stable_ranges = tuple(kept)

    def _page_select(self, emulator, address: int, address_expr: Expression,
                     size: int) -> Expression:
        base = address - (address % self.page_size)
        try:
            snapshot = tuple(emulator.memory.read(base, self.page_size))
        except MemoryError_:  # unmapped page: fall back to the concrete byte
            return self.memory_exprs.get((address, size)) or ConstExpr(0)
        return SelectExpr(base_address=base, snapshot=snapshot, index=address_expr, size=size)

    def _value_or_const(self, emulator, operand, expression: Optional[Expression]) -> Expression:
        if expression is not None:
            return expression
        return ConstExpr(emulator.read_operand(operand))

    def _set_destination(self, emulator, operand, expression: Optional[Expression]) -> None:
        if isinstance(operand, Reg):
            size = getattr(operand, "size", 8)
            if expression is None:
                old = self.register_exprs.pop(operand.reg, None)
                if old is not None and size < 4:
                    # a narrow concrete write merges into symbolic upper bits
                    # the shadow just dropped wholesale
                    self.repair_exact = False
            else:
                if size < 8:
                    mask = (1 << (8 * size)) - 1
                    # mask so the stored expression equals the full register
                    # value after the (zero-extending or merging) write
                    expression = BinExpr("and", expression, ConstExpr(mask))
                    if size < 4:
                        # 1/2-byte writes merge into the register's upper
                        # bits.  A concrete upper half is input-independent
                        # (anything input-dependent the shadow dropped has
                        # already cleared repair_exact), so the merge is
                        # exactly ``upper | (expr & mask)``; only a merge
                        # into *symbolic* upper bits stays unmodeled.
                        if self.register_exprs.get(operand.reg) is not None:
                            self.repair_exact = False
                        else:
                            upper = (emulator.state.read_reg(operand.reg)
                                     & ~mask & _MASK64)
                            if upper:
                                expression = BinExpr("or", ConstExpr(upper),
                                                     expression)
                self.register_exprs[operand.reg] = self._bounded(expression)
            return
        if isinstance(operand, Mem):
            address = emulator.effective_address(operand)
            self._invalidate_stable(address, operand.size)
            if self._address_expr(emulator, operand) is not None \
                    and self.memory_model != "page":
                # the store lands at an input-dependent address the shadow
                # pinned to this execution's concrete choice
                self.repair_exact = False
            key = (address, operand.size)
            if self.repair_exact and self._overlapping_memory(
                    address, operand.size, key):
                self.repair_exact = False
            if expression is not None and operand.size < 8:
                expression = BinExpr("and", expression,
                                     ConstExpr((1 << (8 * operand.size)) - 1))
            self._set_memory_expr(
                key, None if expression is None else self._bounded(expression))

    # -- condition expressions -------------------------------------------------------
    def _condition_expr(self, condition: str) -> Optional[Expression]:
        if self.flag_state is None:
            return None
        kind = self.flag_state[0]
        if kind == "cmp":
            _, left, right = self.flag_state
            operator = _CMP_CONDITIONS.get(condition)
            if operator is None:
                return None
            return BinExpr(operator, left, right)
        if kind == "result":
            result = self.flag_state[1]
            if condition == "e":
                return BinExpr("eq", result, ConstExpr(0))
            if condition == "ne":
                return BinExpr("ne", result, ConstExpr(0))
            if condition == "s":
                return BinExpr("slt", result, ConstExpr(0))
            if condition == "ns":
                return BinExpr("sge", result, ConstExpr(0))
            if condition in ("l", "g", "le", "ge", "b", "a", "be", "ae"):
                return BinExpr(_CMP_CONDITIONS[condition], result, ConstExpr(0))
        return None

    def _flags_symbolic(self) -> bool:
        if self.flag_state is None:
            return False
        if self.flag_state[0] == "cmp":
            return bool(self.flag_state[1].symbols() or self.flag_state[2].symbols())
        return bool(self.flag_state[1].symbols())

    def _condition_exact(self, condition: str) -> bool:
        """True when the condition's expression semantics match the concrete
        flag semantics exactly (expressions compare at 64 bits, so signed
        predicates over narrower flag sources do not)."""
        repair = self.flag_repair
        if repair is None or repair[0] == "concrete":
            return False
        kind, size = repair[0], repair[-1]
        if kind == "sub":
            # operands are width-masked, so unsigned/equality predicates are
            # width-independent; signed ones need the full 64-bit width
            return condition in ("e", "ne", "b", "be", "a", "ae") or size == 8
        if kind == "logic":
            return condition in ("e", "ne") or size == 8
        if kind == "add":
            # the 64-bit sum of masked operands can carry past the operand
            # width, so only full-width equality survives
            return size == 8 and condition in ("e", "ne")
        return False

    # -- the hook ------------------------------------------------------------------
    def hook(self, emulator, address: int, instruction: Instruction) -> None:
        """Pre-execution hook registered on the emulator."""
        m = instruction.mnemonic
        ops = instruction.operands

        if m in (Mnemonic.NOP, Mnemonic.HLT):
            return

        if m in (Mnemonic.MOV, Mnemonic.MOVZX, Mnemonic.MOVSX) and len(ops) == 2:
            expression = self._operand_expr(emulator, ops[1])
            if expression is not None and m in (Mnemonic.MOVZX, Mnemonic.MOVSX):
                size = getattr(ops[1], "size", 8)
                if size < 8:
                    expression = BinExpr("and", expression, ConstExpr((1 << (8 * size)) - 1))
                    if m is Mnemonic.MOVSX:
                        # sign-extend: (x ^ sign_bit) - sign_bit over the
                        # zero-extended value
                        sign = ConstExpr(1 << (8 * size - 1))
                        expression = BinExpr("sub", BinExpr("xor", expression, sign), sign)
            if expression is not None:
                self.symbolic_instruction_count += 1
            self._set_destination(emulator, ops[0], expression)
            return

        if m is Mnemonic.LEA and len(ops) == 2 and isinstance(ops[1], Mem):
            self._set_destination(emulator, ops[0], self._address_expr(emulator, ops[1]))
            return

        if m is Mnemonic.XCHG and len(ops) == 2:
            first = self._operand_expr(emulator, ops[0])
            second = self._operand_expr(emulator, ops[1])
            self._set_destination(emulator, ops[0], second)
            self._set_destination(emulator, ops[1], first)
            return

        if m is Mnemonic.PUSH and ops:
            if Register.RSP in self.register_exprs:
                # the concrete slot address is itself input-dependent
                self.repair_exact = False
            expression = self._operand_expr(emulator, ops[0])
            destination = emulator.state.read_reg(Register.RSP) - 8
            self._invalidate_stable(destination, 8)
            if self.repair_exact and self._overlapping_memory(
                    destination, 8, (destination, 8)):
                self.repair_exact = False
            self._set_memory_expr((destination, 8), expression)
            return
        if m is Mnemonic.POP and ops:
            if Register.RSP in self.register_exprs:
                self.repair_exact = False
            source = emulator.state.read_reg(Register.RSP)
            expression = self.memory_exprs.get((source, 8))
            if expression is None and self.repair_exact \
                    and self._overlapping_memory(source, 8, (source, 8)):
                self.repair_exact = False
            self._set_destination(emulator, ops[0], expression)
            return

        if m in (Mnemonic.CMP, Mnemonic.TEST) and len(ops) == 2:
            left = self._value_or_const(emulator, ops[0], self._operand_expr(emulator, ops[0]))
            right = self._value_or_const(emulator, ops[1], self._operand_expr(emulator, ops[1]))
            size = getattr(ops[0], "size", 8)
            if m is Mnemonic.CMP:
                self.flag_state = ("cmp", left, right)
                self.carry_expr = BinExpr("ult", left, right)
                self.flag_repair = ("sub", left, right, size)
            else:
                self.flag_state = ("result", BinExpr("and", left, right))
                self.carry_expr = None
                self.flag_repair = ("logic", BinExpr("and", left, right), size)
            return

        if m in _ALU_OPERATORS and len(ops) == 2:
            if m in (Mnemonic.SHL, Mnemonic.SHR, Mnemonic.SAR):
                # x86 masks the count by the operand width, and a masked
                # count of zero modifies neither the destination nor any
                # flag — mirror the emulator's (fixed) semantics exactly
                size = getattr(ops[0], "size", 8)
                count = emulator.read_operand(ops[1]) & (
                    0x3F if size == 8 else 0x1F)
                if count == 0:
                    if self._operand_expr(emulator, ops[1]) is not None:
                        # a different assignment may shift by a nonzero
                        # count, changing flags and destination in ways the
                        # (skipped) shadow update cannot model
                        self.repair_exact = False
                        self.constraints_exact = False
                    return
            left_expr = self._operand_expr(emulator, ops[0])
            right_expr = self._operand_expr(emulator, ops[1])
            if left_expr is None and right_expr is None:
                self._set_destination(emulator, ops[0], None)
                self.flag_state = ("result", ConstExpr(0))
                self.carry_expr = None
                self.flag_repair = ("concrete",)
                return
            left = self._value_or_const(emulator, ops[0], left_expr)
            right = self._value_or_const(emulator, ops[1], right_expr)
            if m in (Mnemonic.SHL, Mnemonic.SHR, Mnemonic.SAR) \
                    and right_expr is None:
                # bake the *width-masked* concrete count into the
                # expression: its fixed 6-bit shift mask would otherwise
                # diverge from the machine's width-dependent one for
                # counts 32-63 on sub-width operands
                right = ConstExpr(count)
            expression = BinExpr(_ALU_OPERATORS[m], left, right)
            size = getattr(ops[0], "size", 8)
            if self.branch_observer is not None and isinstance(ops[0], Reg) \
                    and ops[0].reg is Register.RSP:
                # a pointer (ROP) branch record is imminent: let the observer
                # capture before this op's flag/shadow bookkeeping lands
                self.branch_observer("pointer", address)
            if m is Mnemonic.SUB:
                self.flag_repair = ("sub", left, right, size)
            elif m is Mnemonic.ADD:
                self.flag_repair = ("add", left, right, size)
            elif m in (Mnemonic.AND, Mnemonic.OR, Mnemonic.XOR):
                self.flag_repair = ("logic", expression, size)
            else:
                # imul/shifts set carry/overflow the repair recipes do not
                # model
                self.flag_repair = None
                if m is not Mnemonic.IMUL:
                    if right_expr is not None:
                        # the expressions' fixed 6-bit count mask models
                        # neither the width-dependent mask nor a count
                        # reassigned to (or away from) zero
                        self.repair_exact = False
                    if m is Mnemonic.SAR and size < 8 \
                            and left_expr is not None:
                        # the expression sign-extends at 64 bits, the
                        # machine at the operand width
                        self.repair_exact = False
            self.symbolic_instruction_count += 1
            # symbolic values flowing into the stack pointer are ROP branches:
            # concretize and record the decision (§III-B, S2E-style)
            if isinstance(ops[0], Reg) and ops[0].reg is Register.RSP:
                concrete = ConstExpr(
                    BinExpr(_ALU_OPERATORS[m],
                            ConstExpr(emulator.read_operand(ops[0])),
                            ConstExpr(emulator.read_operand(ops[1]))).evaluate({}))
                constraint = PathConstraint(BinExpr("eq", expression, concrete), True)
                self.branches.append(BranchRecord(address=address, constraint=constraint,
                                                  kind="pointer"))
                self._set_destination(emulator, ops[0], None)
            else:
                self._set_destination(emulator, ops[0], expression)
            self.flag_state = ("result", expression)
            if m is Mnemonic.SUB:
                self.flag_state = ("cmp", left, right)
                self.carry_expr = BinExpr("ult", left, right)
            else:
                self.carry_expr = None
            return

        if m in (Mnemonic.ADC, Mnemonic.SBB) and len(ops) == 2:
            left_expr = self._operand_expr(emulator, ops[0])
            right_expr = self._operand_expr(emulator, ops[1])
            carry = self.carry_expr
            if left_expr is None and right_expr is None and (
                    carry is None or not carry.symbols()):
                self._set_destination(emulator, ops[0], None)
                self.flag_state = ("result", ConstExpr(0))
                self.carry_expr = None
                self.flag_repair = ("concrete",)
                return
            left = self._value_or_const(emulator, ops[0], left_expr)
            right = self._value_or_const(emulator, ops[1], right_expr)
            carry_term = carry if carry is not None else ConstExpr(
                emulator.state.read_flag(Flag.CF))
            operator = "add" if m is Mnemonic.ADC else "sub"
            expression = BinExpr(operator, BinExpr(operator, left, right), carry_term)
            self._set_destination(emulator, ops[0], expression)
            self.flag_state = ("result", expression)
            self.flag_repair = None
            return

        if m in (Mnemonic.NEG, Mnemonic.NOT) and ops:
            expression = self._operand_expr(emulator, ops[0])
            if expression is None:
                self._set_destination(emulator, ops[0], None)
                if m is Mnemonic.NEG:
                    self.carry_expr = None
                    self.flag_state = ("result", ConstExpr(0))
                    self.flag_repair = ("concrete",)
                return
            operator = "neg" if m is Mnemonic.NEG else "not"
            result = UnExpr(operator, expression)
            self._set_destination(emulator, ops[0], result)
            if m is Mnemonic.NEG:
                self.flag_state = ("result", result)
                self.carry_expr = BinExpr("ne", expression, ConstExpr(0))
                self.flag_repair = None
            return

        if m in (Mnemonic.INC, Mnemonic.DEC) and ops:
            expression = self._operand_expr(emulator, ops[0])
            if expression is None:
                self._set_destination(emulator, ops[0], None)
                # inc/dec leave CF alone, so a symbolic carry survives a
                # concrete increment: the architectural CF is then
                # input-dependent in a way neither the flag_state nor the
                # repair recipes can express
                if self.carry_expr is not None and self.carry_expr.symbols():
                    self.flag_repair = None
                    self.repair_exact = False
                else:
                    self.flag_repair = ("concrete",)
                self.flag_state = ("result", ConstExpr(0))
                return
            operator = "add" if m is Mnemonic.INC else "sub"
            result = BinExpr(operator, expression, ConstExpr(1))
            self._set_destination(emulator, ops[0], result)
            self.flag_state = ("result", result)
            self.flag_repair = None
            return

        if m is Mnemonic.SET and ops:
            expression = None
            if self._flags_symbolic():
                expression = self._condition_expr(instruction.condition)
                if expression is None or not self._condition_exact(instruction.condition):
                    # the written 0/1 is input-dependent but the shadow's
                    # model of it is missing or only approximate
                    self.repair_exact = False
            self._set_destination(emulator, ops[0], expression)
            return

        if m is Mnemonic.CMOV and len(ops) == 2:
            if self._flags_symbolic():
                condition = self._condition_expr(instruction.condition)
                taken = emulator.state.condition(instruction.condition)
                if condition is not None:
                    if self.branch_observer is not None:
                        # capture before the exactness update and before the
                        # select mutates the destination shadow below
                        self.branch_observer("cmov", address)
                    if not self._condition_exact(instruction.condition):
                        self.constraints_exact = False
                    self.branches.append(BranchRecord(
                        address=address,
                        constraint=PathConstraint(condition, taken),
                        kind="jcc"))
                else:
                    # an input-dependent select went unrecorded
                    self.constraints_exact = False
            taken = emulator.state.condition(instruction.condition)
            if taken:
                self._set_destination(emulator, ops[0], self._operand_expr(emulator, ops[1]))
            return

        if m is Mnemonic.JCC and ops:
            if self._flags_symbolic():
                condition = self._condition_expr(instruction.condition)
                if condition is not None:
                    if self.branch_observer is not None:
                        self.branch_observer("jcc", address)
                    if not self._condition_exact(instruction.condition):
                        self.constraints_exact = False
                    taken = emulator.state.condition(instruction.condition)
                    self.branches.append(BranchRecord(
                        address=address,
                        constraint=PathConstraint(condition, taken),
                        kind="jcc"))
                else:
                    # an input-dependent branch went unrecorded
                    self.constraints_exact = False
            return

        if m in (Mnemonic.CQO,):
            rax = self.register_exprs.get(Register.RAX)
            if rax is None:
                self.register_exprs.pop(Register.RDX, None)
            else:
                self.register_exprs[Register.RDX] = BinExpr("sar", rax, ConstExpr(63))
            return
        if m is Mnemonic.IDIV and ops:
            dividend = self.register_exprs.get(Register.RAX)
            divisor = self._operand_expr(emulator, ops[0])
            if divisor is not None:
                # a different assignment may drive the divisor to zero, where
                # the concrete machine faults but the expression yields 0
                self.repair_exact = False
            if dividend is None and divisor is None:
                self.register_exprs.pop(Register.RAX, None)
                self.register_exprs.pop(Register.RDX, None)
                return
            left = dividend if dividend is not None else ConstExpr(
                emulator.state.read_reg(Register.RAX))
            right = self._value_or_const(emulator, ops[0], divisor)
            self.register_exprs[Register.RAX] = BinExpr("div", left, right)
            self.register_exprs[Register.RDX] = BinExpr("mod", left, right)
            return

        if m in (Mnemonic.CALL, Mnemonic.RET, Mnemonic.JMP, Mnemonic.LEAVE):
            # calls into host runtime functions are not instrumented: clear
            # the caller-saved shadows they may clobber (the return value of a
            # host call over symbolic arguments is treated as concrete, which
            # matches how the runtime functions are used by the workloads).
            # Calls into compiled mini-C code keep executing under this hook,
            # so their shadows propagate naturally and nothing is cleared.
            if m in (Mnemonic.CALL, Mnemonic.JMP) and ops \
                    and isinstance(ops[0], Reg) \
                    and ops[0].reg in self.register_exprs:
                # input-dependent control transfer with no recorded
                # constraint: the prefix no longer pins the path
                self.constraints_exact = False
            if m is Mnemonic.RET:
                # a symbolic return slot is an opaque-materialized gadget
                # address (the +OC layer stores the recombined value into the
                # chain right before this ret pops it): record the concrete
                # target as a pinned pointer decision, exactly like a
                # symbolic ``add rsp`` chain-pointer update
                slot = emulator.state.read_reg(Register.RSP) & _MASK64
                expression = self.memory_exprs.get((slot, 8))
                if expression is not None and expression.symbols():
                    if self.branch_observer is not None:
                        self.branch_observer("pointer", address)
                    target = int.from_bytes(
                        bytes(emulator.memory.read(slot, 8)), "little")
                    self.branches.append(BranchRecord(
                        address=address,
                        constraint=PathConstraint(
                            BinExpr("eq", expression, ConstExpr(target)), True),
                        kind="pointer"))
                    self.symbolic_instruction_count += 1
                    # the constraint pins the popped value to its concrete
                    # target, so dropping the (now dead) slot shadow is exact
                    self._set_memory_expr((slot, 8), None)
            if m is Mnemonic.CALL and ops:
                from repro.cpu.host import is_host_address
                from repro.isa.registers import CALLER_SAVED

                # the call implicitly pushes its (concrete, path-determined)
                # return address: drop any shadow entry aliasing that slot,
                # or a later state repair would clobber the live return
                # address with a stale expression
                if Register.RSP in self.register_exprs:
                    self.repair_exact = False
                slot = (emulator.state.read_reg(Register.RSP) - 8) & _MASK64
                self._invalidate_stable(slot, 8)
                if self.repair_exact and self._overlapping_memory(slot, 8, (slot, 8)):
                    self.repair_exact = False
                self._set_memory_expr((slot, 8), None)

                target = None
                if isinstance(ops[0], Imm):
                    target = ops[0].value
                elif isinstance(ops[0], Reg):
                    target = emulator.state.read_reg(ops[0].reg)
                if target is not None and is_host_address(target):
                    if target in _memory_touching_hosts():
                        # the host may write anywhere in guest memory:
                        # retire every stable region
                        self._invalidate_stable(0, 1 << 64)
                    # host side effects (heap cursor, output, return value)
                    # over symbolic arguments are concretized, and dropping a
                    # symbolic caller-saved shadow loses a live dependence
                    if any(reg in self.register_exprs for reg in CALLER_SAVED):
                        self.repair_exact = False
                    elif self.memory_exprs and target in _memory_touching_hosts():
                        # memcpy/memset/strlen/puts read or write guest
                        # memory directly: symbolic bytes flow through (or
                        # get clobbered) without any shadow update
                        self.repair_exact = False
                    for reg in CALLER_SAVED:
                        self.register_exprs.pop(reg, None)
            return

    def path_constraints(self) -> List[PathConstraint]:
        """Constraints of the executed path, in decision order."""
        return [record.constraint for record in self.branches]


# -- semantic-contract registration -------------------------------------------
# The symbolic mirror covers every mnemonic inside ShadowTracker.hook()
# (with the same width-merge / masked-shift / zero-count-no-op rules as the
# concrete tiers), but models flags as expressions rather than assignments
# to the architectural slots — so only its coverage claim is statically
# checkable (flag_style="none"); the flag-expression fidelity is carried by
# the dynamic DSE differential tests.
_semantics.register_tier(
    "shadow", __name__,
    covered={mnemonic: None for mnemonic in Mnemonic},
    declined=(), flag_style="none")
