"""Shadow (symbolic) execution alongside the concrete emulator.

The :class:`ShadowTracker` hooks an :class:`repro.cpu.Emulator` and mirrors
every executed instruction over symbolic expressions: registers and memory
locations whose value derives from the designated input symbols carry an
expression, everything else stays concrete.  When a branch decision (or a
chain-pointer update, for ROP-encoded branches) depends on a symbolic value,
the tracker records a :class:`PathConstraint` — the raw material both the DSE
and the SE engines feed to the solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.attacks.solver.expr import (
    BinExpr,
    ConstExpr,
    Expression,
    SelectExpr,
    SymExpr,
    UnExpr,
)
from repro.attacks.solver.solver import PathConstraint
from repro.isa.flags import Flag
from repro.isa.instructions import Instruction, Mnemonic
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import Register

_MASK64 = (1 << 64) - 1

#: Condition-code -> comparison operator used when the flag source is a ``cmp``.
_CMP_CONDITIONS = {
    "e": "eq", "ne": "ne",
    "l": "slt", "le": "sle", "g": "sgt", "ge": "sge",
    "b": "ult", "be": "ule", "a": "ugt", "ae": "uge",
}

_ALU_OPERATORS = {
    Mnemonic.ADD: "add", Mnemonic.SUB: "sub", Mnemonic.AND: "and",
    Mnemonic.OR: "or", Mnemonic.XOR: "xor", Mnemonic.IMUL: "mul",
    Mnemonic.SHL: "shl", Mnemonic.SHR: "shr", Mnemonic.SAR: "sar",
}


@dataclass
class BranchRecord:
    """A recorded symbolic branch decision.

    Attributes:
        address: address of the deciding instruction.
        constraint: the path constraint describing the decision actually taken.
        kind: ``"jcc"`` for flag branches, ``"pointer"`` for symbolic values
            concretized into the stack/instruction pointer (ROP branches).
    """

    address: int
    constraint: PathConstraint
    kind: str


class ShadowTracker:
    """Symbolic mirror of a concrete execution."""

    def __init__(self, memory_model: str = "concretize", page_size: int = 256,
                 max_expression_depth: int = 512) -> None:
        if memory_model not in ("concretize", "page"):
            raise ValueError("memory_model must be 'concretize' or 'page'")
        self.memory_model = memory_model
        self.page_size = page_size
        self.max_expression_depth = max_expression_depth
        self.register_exprs: Dict[Register, Expression] = {}
        self.memory_exprs: Dict[Tuple[int, int], Expression] = {}
        #: last flag-setting operation: ("cmp", a, b) or ("result", expr)
        self.flag_state: Optional[Tuple] = None
        self.carry_expr: Optional[Expression] = None
        self.branches: List[BranchRecord] = []
        self.symbolic_instruction_count = 0

    # -- symbol introduction ----------------------------------------------------
    def set_register_symbol(self, register: Register, expression: Expression) -> None:
        """Mark a register as holding a symbolic input value."""
        self.register_exprs[register] = expression

    def set_memory_symbol(self, address: int, size: int, expression: Expression) -> None:
        """Mark a memory location as holding a symbolic input value."""
        self.memory_exprs[(address, size)] = expression

    # -- small helpers -------------------------------------------------------------
    def _bounded(self, expression: Expression) -> Expression:
        if expression.depth() > self.max_expression_depth:
            return ConstExpr(0)  # give up on unwieldy expressions (concretize)
        return expression

    def _register_expr(self, emulator, register: Register, size: int = 8) -> Optional[Expression]:
        expression = self.register_exprs.get(register)
        if expression is None:
            return None
        if size < 8:
            return BinExpr("and", expression, ConstExpr((1 << (8 * size)) - 1))
        return expression

    def _operand_expr(self, emulator, operand) -> Optional[Expression]:
        """Expression of an operand, or None when it is concrete."""
        if isinstance(operand, Reg):
            return self._register_expr(emulator, operand.reg, operand.size)
        if isinstance(operand, Imm):
            return None
        if isinstance(operand, Mem):
            address = emulator.effective_address(operand)
            symbolic_address = self._address_expr(emulator, operand)
            if symbolic_address is not None and self.memory_model == "page":
                return self._page_select(emulator, address, symbolic_address, operand.size)
            return self.memory_exprs.get((address, operand.size))
        return None

    def _address_expr(self, emulator, operand: Mem) -> Optional[Expression]:
        parts: List[Expression] = []
        symbolic = False
        if operand.base is not None:
            expression = self.register_exprs.get(operand.base)
            if expression is not None:
                symbolic = True
                parts.append(expression)
            else:
                parts.append(ConstExpr(emulator.state.read_reg(operand.base)))
        if operand.index is not None:
            expression = self.register_exprs.get(operand.index)
            scale = ConstExpr(operand.scale)
            if expression is not None:
                symbolic = True
                parts.append(BinExpr("mul", expression, scale))
            else:
                parts.append(ConstExpr(emulator.state.read_reg(operand.index) * operand.scale))
        if operand.disp:
            parts.append(ConstExpr(operand.disp & _MASK64))
        if not symbolic or not parts:
            return None
        expression = parts[0]
        for part in parts[1:]:
            expression = BinExpr("add", expression, part)
        return expression

    def _page_select(self, emulator, address: int, address_expr: Expression,
                     size: int) -> Expression:
        base = address - (address % self.page_size)
        try:
            snapshot = tuple(emulator.memory.read(base, self.page_size))
        except Exception:  # unmapped page: fall back to the concrete byte
            return self.memory_exprs.get((address, size)) or ConstExpr(0)
        return SelectExpr(base_address=base, snapshot=snapshot, index=address_expr, size=size)

    def _value_or_const(self, emulator, operand, expression: Optional[Expression]) -> Expression:
        if expression is not None:
            return expression
        return ConstExpr(emulator.read_operand(operand))

    def _set_destination(self, emulator, operand, expression: Optional[Expression]) -> None:
        if isinstance(operand, Reg):
            if expression is None:
                self.register_exprs.pop(operand.reg, None)
            else:
                self.register_exprs[operand.reg] = self._bounded(expression)
            return
        if isinstance(operand, Mem):
            address = emulator.effective_address(operand)
            key = (address, operand.size)
            if expression is None:
                self.memory_exprs.pop(key, None)
            else:
                self.memory_exprs[key] = self._bounded(expression)

    # -- condition expressions -------------------------------------------------------
    def _condition_expr(self, condition: str) -> Optional[Expression]:
        if self.flag_state is None:
            return None
        kind = self.flag_state[0]
        if kind == "cmp":
            _, left, right = self.flag_state
            operator = _CMP_CONDITIONS.get(condition)
            if operator is None:
                return None
            return BinExpr(operator, left, right)
        if kind == "result":
            result = self.flag_state[1]
            if condition == "e":
                return BinExpr("eq", result, ConstExpr(0))
            if condition == "ne":
                return BinExpr("ne", result, ConstExpr(0))
            if condition == "s":
                return BinExpr("slt", result, ConstExpr(0))
            if condition == "ns":
                return BinExpr("sge", result, ConstExpr(0))
            if condition in ("l", "g", "le", "ge", "b", "a", "be", "ae"):
                return BinExpr(_CMP_CONDITIONS[condition], result, ConstExpr(0))
        return None

    def _flags_symbolic(self) -> bool:
        if self.flag_state is None:
            return False
        if self.flag_state[0] == "cmp":
            return bool(self.flag_state[1].symbols() or self.flag_state[2].symbols())
        return bool(self.flag_state[1].symbols())

    # -- the hook ------------------------------------------------------------------
    def hook(self, emulator, address: int, instruction: Instruction) -> None:
        """Pre-execution hook registered on the emulator."""
        m = instruction.mnemonic
        ops = instruction.operands

        if m in (Mnemonic.NOP, Mnemonic.HLT):
            return

        if m in (Mnemonic.MOV, Mnemonic.MOVZX, Mnemonic.MOVSX) and len(ops) == 2:
            expression = self._operand_expr(emulator, ops[1])
            if expression is not None and m in (Mnemonic.MOVZX, Mnemonic.MOVSX):
                size = getattr(ops[1], "size", 8)
                if size < 8:
                    expression = BinExpr("and", expression, ConstExpr((1 << (8 * size)) - 1))
            if expression is not None:
                self.symbolic_instruction_count += 1
            self._set_destination(emulator, ops[0], expression)
            return

        if m is Mnemonic.LEA and len(ops) == 2 and isinstance(ops[1], Mem):
            self._set_destination(emulator, ops[0], self._address_expr(emulator, ops[1]))
            return

        if m is Mnemonic.XCHG and len(ops) == 2:
            first = self._operand_expr(emulator, ops[0])
            second = self._operand_expr(emulator, ops[1])
            self._set_destination(emulator, ops[0], second)
            self._set_destination(emulator, ops[1], first)
            return

        if m is Mnemonic.PUSH and ops:
            expression = self._operand_expr(emulator, ops[0])
            destination = emulator.state.read_reg(Register.RSP) - 8
            if expression is None:
                self.memory_exprs.pop((destination, 8), None)
            else:
                self.memory_exprs[(destination, 8)] = expression
            return
        if m is Mnemonic.POP and ops:
            source = emulator.state.read_reg(Register.RSP)
            expression = self.memory_exprs.get((source, 8))
            self._set_destination(emulator, ops[0], expression)
            return

        if m in (Mnemonic.CMP, Mnemonic.TEST) and len(ops) == 2:
            left = self._value_or_const(emulator, ops[0], self._operand_expr(emulator, ops[0]))
            right = self._value_or_const(emulator, ops[1], self._operand_expr(emulator, ops[1]))
            if m is Mnemonic.CMP:
                self.flag_state = ("cmp", left, right)
                self.carry_expr = BinExpr("ult", left, right)
            else:
                self.flag_state = ("result", BinExpr("and", left, right))
                self.carry_expr = None
            return

        if m in _ALU_OPERATORS and len(ops) == 2:
            left_expr = self._operand_expr(emulator, ops[0])
            right_expr = self._operand_expr(emulator, ops[1])
            if left_expr is None and right_expr is None:
                self._set_destination(emulator, ops[0], None)
                self.flag_state = ("result", ConstExpr(0))
                self.carry_expr = None
                if isinstance(ops[0], Reg) and ops[0].reg is Register.RSP:
                    pass
                return
            left = self._value_or_const(emulator, ops[0], left_expr)
            right = self._value_or_const(emulator, ops[1], right_expr)
            expression = BinExpr(_ALU_OPERATORS[m], left, right)
            self.symbolic_instruction_count += 1
            # symbolic values flowing into the stack pointer are ROP branches:
            # concretize and record the decision (§III-B, S2E-style)
            if isinstance(ops[0], Reg) and ops[0].reg is Register.RSP:
                concrete = ConstExpr(
                    BinExpr(_ALU_OPERATORS[m],
                            ConstExpr(emulator.read_operand(ops[0])),
                            ConstExpr(emulator.read_operand(ops[1]))).evaluate({}))
                constraint = PathConstraint(BinExpr("eq", expression, concrete), True)
                self.branches.append(BranchRecord(address=address, constraint=constraint,
                                                  kind="pointer"))
                self._set_destination(emulator, ops[0], None)
            else:
                self._set_destination(emulator, ops[0], expression)
            self.flag_state = ("result", expression)
            if m is Mnemonic.SUB:
                self.flag_state = ("cmp", left, right)
                self.carry_expr = BinExpr("ult", left, right)
            else:
                self.carry_expr = None
            return

        if m in (Mnemonic.ADC, Mnemonic.SBB) and len(ops) == 2:
            left_expr = self._operand_expr(emulator, ops[0])
            right_expr = self._operand_expr(emulator, ops[1])
            carry = self.carry_expr
            if left_expr is None and right_expr is None and (
                    carry is None or not carry.symbols()):
                self._set_destination(emulator, ops[0], None)
                return
            left = self._value_or_const(emulator, ops[0], left_expr)
            right = self._value_or_const(emulator, ops[1], right_expr)
            carry_term = carry if carry is not None else ConstExpr(
                emulator.state.read_flag(Flag.CF))
            operator = "add" if m is Mnemonic.ADC else "sub"
            expression = BinExpr(operator, BinExpr(operator, left, right), carry_term)
            self._set_destination(emulator, ops[0], expression)
            self.flag_state = ("result", expression)
            return

        if m in (Mnemonic.NEG, Mnemonic.NOT) and ops:
            expression = self._operand_expr(emulator, ops[0])
            if expression is None:
                self._set_destination(emulator, ops[0], None)
                if m is Mnemonic.NEG:
                    self.carry_expr = None
                    self.flag_state = ("result", ConstExpr(0))
                return
            operator = "neg" if m is Mnemonic.NEG else "not"
            result = UnExpr(operator, expression)
            self._set_destination(emulator, ops[0], result)
            if m is Mnemonic.NEG:
                self.flag_state = ("result", result)
                self.carry_expr = BinExpr("ne", expression, ConstExpr(0))
            return

        if m in (Mnemonic.INC, Mnemonic.DEC) and ops:
            expression = self._operand_expr(emulator, ops[0])
            if expression is None:
                self._set_destination(emulator, ops[0], None)
                return
            operator = "add" if m is Mnemonic.INC else "sub"
            result = BinExpr(operator, expression, ConstExpr(1))
            self._set_destination(emulator, ops[0], result)
            self.flag_state = ("result", result)
            return

        if m is Mnemonic.SET and ops:
            expression = None
            if self._flags_symbolic():
                expression = self._condition_expr(instruction.condition)
            self._set_destination(emulator, ops[0], expression)
            return

        if m is Mnemonic.CMOV and len(ops) == 2:
            if self._flags_symbolic():
                condition = self._condition_expr(instruction.condition)
                taken = emulator.state.condition(instruction.condition)
                if condition is not None:
                    self.branches.append(BranchRecord(
                        address=address,
                        constraint=PathConstraint(condition, taken),
                        kind="jcc"))
            taken = emulator.state.condition(instruction.condition)
            if taken:
                self._set_destination(emulator, ops[0], self._operand_expr(emulator, ops[1]))
            return

        if m is Mnemonic.JCC and ops:
            if self._flags_symbolic():
                condition = self._condition_expr(instruction.condition)
                if condition is not None:
                    taken = emulator.state.condition(instruction.condition)
                    self.branches.append(BranchRecord(
                        address=address,
                        constraint=PathConstraint(condition, taken),
                        kind="jcc"))
            return

        if m in (Mnemonic.CQO,):
            rax = self.register_exprs.get(Register.RAX)
            if rax is None:
                self.register_exprs.pop(Register.RDX, None)
            else:
                self.register_exprs[Register.RDX] = BinExpr("sar", rax, ConstExpr(63))
            return
        if m is Mnemonic.IDIV and ops:
            dividend = self.register_exprs.get(Register.RAX)
            divisor = self._operand_expr(emulator, ops[0])
            if dividend is None and divisor is None:
                self.register_exprs.pop(Register.RAX, None)
                self.register_exprs.pop(Register.RDX, None)
                return
            left = dividend if dividend is not None else ConstExpr(
                emulator.state.read_reg(Register.RAX))
            right = self._value_or_const(emulator, ops[0], divisor)
            self.register_exprs[Register.RAX] = BinExpr("div", left, right)
            self.register_exprs[Register.RDX] = BinExpr("mod", left, right)
            return

        if m in (Mnemonic.CALL, Mnemonic.RET, Mnemonic.JMP, Mnemonic.LEAVE):
            # calls into host runtime functions are not instrumented: clear
            # the caller-saved shadows they may clobber (the return value of a
            # host call over symbolic arguments is treated as concrete, which
            # matches how the runtime functions are used by the workloads).
            # Calls into compiled mini-C code keep executing under this hook,
            # so their shadows propagate naturally and nothing is cleared.
            if m is Mnemonic.CALL and ops:
                from repro.cpu.host import is_host_address
                from repro.isa.registers import CALLER_SAVED

                target = None
                if isinstance(ops[0], Imm):
                    target = ops[0].value
                elif isinstance(ops[0], Reg):
                    target = emulator.state.read_reg(ops[0].reg)
                if target is not None and is_host_address(target):
                    for reg in CALLER_SAVED:
                        self.register_exprs.pop(reg, None)
            return

    def path_constraints(self) -> List[PathConstraint]:
        """Constraints of the executed path, in decision order."""
        return [record.constraint for record in self.branches]
