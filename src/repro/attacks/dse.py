"""Dynamic symbolic execution (the S2E analog used throughout §VII).

The engine repeatedly executes the target function concretely under a
:class:`repro.attacks.shadow.ShadowTracker`, collects the path constraints of
each run, and derives new inputs by negating individual branch decisions and
handing the resulting constraint prefix to the solver — generational
exploration in the style of concolic engines.  Exploration order is governed
by a pluggable strategy; class-uniform path analysis (CUPA) groups pending
inputs by the branch they negate and picks classes uniformly, the strategy
the paper found most effective for both ROP and VM configurations.

Exploration is *backtracking* by default: while a path executes, the engine
captures whole-emulator snapshots (:meth:`repro.cpu.Emulator.snapshot`) at
symbolic branch points into a bounded :class:`repro.attacks.engine.
SnapshotPool`.  Capture happens through the tracker's ``branch_observer``
callback, which fires before the hook mutates any shadow state for the
branching instruction, so every record kind is a capture point — plain
``jcc`` branches, ``cmov`` selects and pointer-kind (ROP) branch records
alike.  An input derived by negating decision ``p`` of a path then
restores the nearest recorded ancestor of its decision prefix instead of
re-running from the function entry, and the engine *repairs* the restored
state for the new input assignment by re-evaluating every shadow expression
(registers, memory, CPU flags) under it.  The repair is exact precisely when
the tracker's :attr:`~repro.attacks.shadow.ShadowTracker.repair_exact` and
:attr:`~repro.attacks.shadow.ShadowTracker.constraints_exact` invariants
hold, so snapshots are only taken while they do — any execution the shadow
cannot exactly characterize falls back to the entry rewind, which keeps
backtracking exploration path-for-path identical to rerun-from-entry
exploration (the differential property the tests assert).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro import knobs
from repro.attacks.engine import EngineStats, SnapshotEngine, SnapshotPool
from repro.attacks.shadow import BranchRecord, ShadowTracker
from repro.attacks.solver.expr import BinExpr, ConstExpr, SymExpr
from repro.attacks.solver.solver import ConstraintSolver, PathConstraint
from repro.binary.image import BinaryImage
from repro.cpu.emulator import Emulator
from repro.cpu.state import EmulationError
from repro.memory import MemoryError_
from repro.isa.registers import ARG_REGISTERS, Register

_MASK64 = (1 << 64) - 1

#: ``REPRO_DSE_BACKTRACK=0`` forces rerun-from-entry exploration globally
#: (the A/B lever the differential tests and the benchmark use).
_BACKTRACK_DEFAULT = knobs.enabled("REPRO_DSE_BACKTRACK")

#: Backwards-compatible name: the DSE statistics are the shared engine stats.
ExplorationStats = EngineStats


def _decision_key(record: BranchRecord) -> Tuple:
    """Pool-key element uniquely identifying one branch decision.

    ``(address, expected)`` is ambiguous for pointer records: two sibling
    chains pin *different* concrete targets at the same address, both with
    ``expected=True``.  Folding the pinned value in keeps a resume from
    restoring a snapshot that belongs to the wrong sibling chain.
    """
    pinned = None
    if record.kind == "pointer":
        expression = record.constraint.expression
        if isinstance(expression, BinExpr) and isinstance(expression.right, ConstExpr):
            pinned = expression.right.value
    return (record.address, record.constraint.expected, pinned)


@dataclass
class InputSpec:
    """Describes the symbolic inputs of the attacked function.

    Attributes:
        argument_sizes: byte width of each integer argument treated as
            symbolic (one symbol per argument, matching the RandomFuns input
            sizes of §VII-B).
        buffer_symbols: optional number of symbolic bytes passed through a
            pointer argument (used by the base64 case study); the buffer is
            allocated by the engine and its address passed as the last
            argument.
    """

    argument_sizes: Sequence[int] = (8,)
    buffer_symbols: int = 0

    def symbol_table(self) -> Dict[str, int]:
        table = {f"arg{i}": size for i, size in enumerate(self.argument_sizes)}
        for i in range(self.buffer_symbols):
            table[f"buf{i}"] = 1
        return table


@dataclass
class ExecutionResult:
    """Outcome of a single concolic execution."""

    assignment: Dict[str, int]
    return_value: int
    probes: Tuple[int, ...]
    constraints: List[PathConstraint]
    branch_addresses: List[int]
    instructions: int
    faulted: bool
    #: how many branch decisions deep the snapshot this execution resumed
    #: from was (0 = started from the function entry).
    resumed_depth: int = 0
    #: one :func:`_decision_key` per branch decision — the unambiguous form
    #: of the path signature the snapshot pool is keyed by.
    decision_keys: Tuple = ()


class DseEngine(SnapshotEngine):
    """Concolic exploration of one function in a binary image.

    Args:
        image: the (possibly obfuscated) binary image.
        function: name of the function to attack.
        input_spec: which inputs are symbolic.
        strategy: ``"cupa"``, ``"bfs"`` or ``"dfs"``.
        memory_model: ``"concretize"`` (default) or ``"page"`` (§VII-C3).
        seed: RNG seed.
        max_instructions: per-execution instruction cap.
        use_snapshots: False restores the legacy fork-per-execution path.
        backtracking: explore by restoring mid-path branch snapshots instead
            of rewinding to the entry per path.  Defaults to the
            ``REPRO_DSE_BACKTRACK`` knob; forced off for the page memory
            model (whose select expressions pin another execution's concrete
            memory) and when snapshots are disabled.
        max_snapshots_per_run: cap on snapshots captured per execution, so
            loop-heavy paths do not monopolize the pool.
        max_snapshot_depth: deepest branch decision worth snapshotting.
        pool_capacity: override for the mid-path snapshot pool size.  Defaults
            to the full ``REPRO_SNAPSHOT_POOL`` budget; parallel explorers
            pass each worker its share of that global budget instead.
    """

    def __init__(self, image: BinaryImage, function: str,
                 input_spec: Optional[InputSpec] = None, strategy: str = "cupa",
                 memory_model: str = "concretize", seed: int = 0,
                 max_instructions: int = 2_000_000,
                 use_snapshots: bool = True,
                 backtracking: Optional[bool] = None,
                 max_snapshots_per_run: int = 24,
                 max_snapshot_depth: int = 48,
                 pool_capacity: Optional[int] = None) -> None:
        if strategy not in ("cupa", "bfs", "dfs"):
            raise ValueError(f"unknown strategy {strategy!r}")
        super().__init__(image, function, max_instructions=max_instructions,
                         use_snapshots=use_snapshots)
        self.input_spec = input_spec or InputSpec()
        self.strategy = strategy
        self.memory_model = memory_model
        self.random = random.Random(seed)
        self.symbols = self.input_spec.symbol_table()
        self.solver = ConstraintSolver(self.symbols, seed=seed)
        self._pool = SnapshotPool(pool_capacity)
        if backtracking is None:
            backtracking = _BACKTRACK_DEFAULT
        self.backtracking = (backtracking and use_snapshots
                             and memory_model == "concretize"
                             and self._pool.capacity > 0)
        self.max_snapshots_per_run = max_snapshots_per_run
        self.max_snapshot_depth = max_snapshot_depth

    def invalidate_snapshots(self) -> None:
        super().invalidate_snapshots()
        self._pool.clear()

    def reset(self, input_spec: Optional[InputSpec] = None,
              seed: int = 0) -> None:
        """Restore the engine to freshly-constructed exploration state.

        The long-lived attack service reuses one engine per image across
        requests; everything a previous request could leak into the next —
        the CUPA RNG stream, the solver's model cache, the cumulative
        :class:`EngineStats`, the mid-path snapshot pool — is rebuilt here,
        which is exactly what makes a served request byte-identical to a
        one-shot run at the same seed.  The *entry* snapshot is deliberately
        kept: it depends only on the image and the attacked symbol, and
        reusing it across requests is the service's whole point.
        """
        if input_spec is not None:
            self.input_spec = input_spec
            self.symbols = self.input_spec.symbol_table()
        self.random = random.Random(seed)
        self.solver = ConstraintSolver(self.symbols, seed=seed)
        self.stats = EngineStats()
        self._pool.clear()

    # -- mid-path snapshot capture and resume ------------------------------------
    def _branch_observer(self, emulator: Emulator, tracker: ShadowTracker) -> Callable:
        """Build the tracker's branch observer that captures snapshots.

        The tracker invokes it at the exact point a branch record is about
        to be appended — before the hook mutates any shadow state for that
        instruction — so *every* record kind is a capture point: plain
        ``jcc`` branches, ``cmov`` selects (whose hook updates the
        destination shadow in the same call) and pointer (ROP) branches
        (whose hook also rewrites the flag-repair recipe).  The fork taken
        here therefore needs no unwinding: ``tracker.branches`` is still the
        pre-branch decision prefix, which doubles as the pool key.
        """
        state = {"taken": 0}

        def observer(kind: str, address: int) -> None:
            if state["taken"] >= self.max_snapshots_per_run:
                return
            branches = tracker.branches
            if len(branches) >= self.max_snapshot_depth:
                return
            if not (tracker.repair_exact and tracker.constraints_exact):
                return
            if tracker.flag_repair is None:
                return
            key = tuple(_decision_key(record) for record in branches)
            if key in self._pool:
                self._pool.touch(key)
                return
            fork = tracker.fork()
            evicted = self._pool.evictions
            self._pool.put(key, (emulator.snapshot(), fork))
            state["taken"] += 1
            self.stats.snapshots_taken += 1
            self.stats.snapshots_evicted += self._pool.evictions - evicted

        return observer

    def _repair_state(self, emulator: Emulator, tracker: ShadowTracker,
                      assignment: Dict[str, int]) -> None:
        """Rewrite the restored context for a different input assignment.

        Every input-dependent register, memory location and CPU flag carries
        a shadow expression; re-evaluating those under ``assignment``
        reconstructs exactly the state a rerun from the entry would have
        reached at the snapshot point (the tracker's exactness invariants
        guarantee nothing input-dependent is missing).
        """
        regs = emulator.state.regs
        for register, expression in tracker.register_exprs.items():
            regs[register] = expression.evaluate(assignment) & _MASK64
        memory = emulator.memory
        for (address, size), expression in tracker.memory_exprs.items():
            memory.write_int(address, expression.evaluate(assignment), size)
        repair = tracker.flag_repair
        kind = repair[0]
        if kind == "sub":
            _, left, right, size = repair
            emulator._set_sub_flags(left.evaluate(assignment),
                                    right.evaluate(assignment), 0, size)
        elif kind == "add":
            _, left, right, size = repair
            emulator._set_add_flags(left.evaluate(assignment),
                                    right.evaluate(assignment), 0, size)
        elif kind == "logic":
            _, expression, size = repair
            emulator._set_logic_flags(expression.evaluate(assignment), size)
        # "concrete": the last flag-setting instruction had no symbolic
        # inputs, so the snapshot's restored flags are input-independent and
        # already exact — common at pointer (ROP) branch points, whose
        # decision does not go through the flags at all

    def _resume(self, resume_key: Tuple, assignment: Dict[str, int]
                ) -> Optional[Tuple[Emulator, ShadowTracker, int]]:
        """Restore the nearest recorded ancestor of ``resume_key``.

        Returns ``(emulator, tracker, depth)`` ready to run, or None when no
        usable snapshot exists (the caller falls back to the entry rewind).
        """
        if not self.backtracking or self._entry_snapshot is None \
                or self._entry_symbol != self.function:
            return None
        hit = self._pool.nearest_ancestor(resume_key)
        if hit is None:
            return None
        key, (snapshot, tracker_fork) = hit
        emulator = self._emulator
        emulator.restore(snapshot)
        tracker = tracker_fork.fork()
        try:
            self._repair_state(emulator, tracker, assignment)
        except (ValueError, MemoryError_, EmulationError):
            # un-evaluable repair expression or unwritable repair target:
            # rewind from the entry instead (counted so repair regressions
            # surface in the stats rather than vanishing into the fallback)
            self.stats.repair_fallbacks += 1
            return None
        return emulator, tracker, len(key)

    # -- concrete+symbolic execution of one input --------------------------------
    def execute(self, assignment: Dict[str, int],
                resume_key: Optional[Tuple] = None) -> ExecutionResult:
        """Run the target once under the given input assignment.

        ``resume_key`` — the branch-decision prefix this input is expected to
        follow — lets the engine resume from a pooled mid-path snapshot; the
        run is indistinguishable from a rerun from the entry.
        """
        resumed = self._resume(resume_key, assignment) if resume_key is not None else None
        if resumed is not None:
            emulator, tracker, resumed_depth = resumed
            self.stats.branch_restores += 1
            self.stats.instructions_replayed += emulator.steps
        else:
            resumed_depth = 0
            emulator = self._fork_emulator()
            tracker = ShadowTracker(
                memory_model=self.memory_model,
                stable_ranges=self.image.metadata.get("rop_stable_ranges", ()))

            arguments: List[int] = []
            for index, size in enumerate(self.input_spec.argument_sizes):
                name = f"arg{index}"
                value = assignment.get(name, 0) & ((1 << (8 * size)) - 1)
                arguments.append(value)
            if self.input_spec.buffer_symbols:
                buffer_address = self._heap_base + 0x100
                for index in range(self.input_spec.buffer_symbols):
                    name = f"buf{index}"
                    value = assignment.get(name, 0) & 0xFF
                    emulator.memory.write_int(buffer_address + index, value, 1)
                    tracker.set_memory_symbol(buffer_address + index, 1, SymExpr(name, 1))
                arguments.append(buffer_address)

            for register, value in zip(ARG_REGISTERS, arguments):
                emulator.state.write_reg(register, value & _MASK64)
            for index, size in enumerate(self.input_spec.argument_sizes):
                tracker.set_register_symbol(ARG_REGISTERS[index], SymExpr(f"arg{index}", size))

        if self.backtracking:
            tracker.branch_observer = self._branch_observer(emulator, tracker)
        emulator.pre_hooks = [tracker.hook]
        host = emulator.host

        faulted = False
        try:
            emulator.run()
        except EmulationError:
            faulted = True

        self.stats.executions += 1
        self.stats.instructions += emulator.steps
        return ExecutionResult(
            assignment=dict(assignment),
            return_value=emulator.state.read_reg(Register.RAX),
            probes=tuple(host.probes),
            constraints=tracker.path_constraints(),
            branch_addresses=[record.address for record in tracker.branches],
            instructions=emulator.steps,
            faulted=faulted,
            resumed_depth=resumed_depth,
            decision_keys=tuple(_decision_key(record) for record in tracker.branches),
        )

    # -- exploration ------------------------------------------------------------------
    def explore(self, time_budget: float = 10.0, max_executions: int = 200,
                stop_condition: Optional[Callable[[ExecutionResult], bool]] = None,
                max_solver_queries: Optional[int] = None,
                ) -> Tuple[List[ExecutionResult], ExplorationStats]:
        """Explore paths until the budget runs out or ``stop_condition`` holds.

        ``max_solver_queries`` bounds generational expansion: once that many
        solver queries have been spent, no further branch negations are
        attempted (already-pending inputs still run).  Unlike the wall-clock
        budget it is *deterministic*, which is what lets a grid slice produce
        identical rows on any machine and any worker count.

        Returns the list of execution results (one per explored input) and the
        aggregate statistics.
        """
        start = time.monotonic()
        initial = {name: 0 for name in self.symbols}
        pending: List[Tuple[int, Dict[str, int], Optional[Tuple]]] = [(0, initial, None)]
        seen_inputs: Set[Tuple] = {tuple(sorted(initial.items()))}
        seen_decisions: Set[Tuple[int, bool]] = set()
        results: List[ExecutionResult] = []
        path_signatures: Set[Tuple] = set()

        while pending:
            elapsed = time.monotonic() - start
            if elapsed > time_budget or self.stats.executions >= max_executions:
                break
            index = self._pick(pending)
            _, assignment, resume_key = pending.pop(index)
            result = self.execute(assignment, resume_key=resume_key)
            results.append(result)

            signature = tuple(
                (address, constraint.expected)
                for address, constraint in zip(result.branch_addresses, result.constraints)
            )
            if signature not in path_signatures:
                path_signatures.add(signature)
                self.stats.paths_seen += 1

            if stop_condition is not None and stop_condition(result):
                break

            # generational expansion: negate each branch decision of this path
            for position, constraint in enumerate(result.constraints):
                if max_solver_queries is not None \
                        and self.stats.solver_queries >= max_solver_queries:
                    break
                if time.monotonic() - start > time_budget:
                    break
                # dedupe on the decision *in its path context*: the same branch
                # may be feasible to flip under one prefix and not another
                decision_key = (
                    signature[:position],
                    result.branch_addresses[position],
                    not constraint.expected,
                )
                if decision_key in seen_decisions:
                    continue
                seen_decisions.add(decision_key)
                prefix = result.constraints[:position] + [constraint.negated()]
                self.stats.solver_queries += 1
                solution = self.solver.solve(prefix, seed_assignment=result.assignment)
                if solution is None:
                    continue
                key = tuple(sorted(solution.items()))
                if key in seen_inputs:
                    continue
                seen_inputs.add(key)
                pending.append((result.branch_addresses[position], solution,
                                result.decision_keys[:position]))

        self.stats.elapsed = time.monotonic() - start
        return results, self.stats

    def _pick(self, pending: List[Tuple]) -> int:
        if self.strategy == "dfs":
            return len(pending) - 1
        if self.strategy == "bfs":
            return 0
        # CUPA: group by the branch address whose negation produced the input,
        # pick a class uniformly at random, then a member uniformly within it
        classes: Dict[int, List[int]] = {}
        for index, entry in enumerate(pending):
            classes.setdefault(entry[0], []).append(index)
        chosen_class = self.random.choice(list(classes))
        return self.random.choice(classes[chosen_class])
