"""Dynamic symbolic execution (the S2E analog used throughout §VII).

The engine repeatedly executes the target function concretely under a
:class:`repro.attacks.shadow.ShadowTracker`, collects the path constraints of
each run, and derives new inputs by negating individual branch decisions and
handing the resulting constraint prefix to the solver — generational
exploration in the style of concolic engines.  Exploration order is governed
by a pluggable strategy; class-uniform path analysis (CUPA) groups pending
inputs by the branch they negate and picks classes uniformly, the strategy
the paper found most effective for both ROP and VM configurations.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.attacks.shadow import ShadowTracker
from repro.attacks.solver.expr import SymExpr
from repro.attacks.solver.solver import ConstraintSolver, PathConstraint
from repro.binary.image import BinaryImage
from repro.binary.loader import load_image
from repro.cpu.emulator import Emulator, EmulatorSnapshot
from repro.cpu.host import EXIT_ADDRESS, HostEnvironment
from repro.cpu.state import EmulationError
from repro.isa.registers import ARG_REGISTERS, Register

_MASK64 = (1 << 64) - 1


@dataclass
class InputSpec:
    """Describes the symbolic inputs of the attacked function.

    Attributes:
        argument_sizes: byte width of each integer argument treated as
            symbolic (one symbol per argument, matching the RandomFuns input
            sizes of §VII-B).
        buffer_symbols: optional number of symbolic bytes passed through a
            pointer argument (used by the base64 case study); the buffer is
            allocated by the engine and its address passed as the last
            argument.
    """

    argument_sizes: Sequence[int] = (8,)
    buffer_symbols: int = 0

    def symbol_table(self) -> Dict[str, int]:
        table = {f"arg{i}": size for i, size in enumerate(self.argument_sizes)}
        for i in range(self.buffer_symbols):
            table[f"buf{i}"] = 1
        return table


@dataclass
class ExecutionResult:
    """Outcome of a single concolic execution."""

    assignment: Dict[str, int]
    return_value: int
    probes: Tuple[int, ...]
    constraints: List[PathConstraint]
    branch_addresses: List[int]
    instructions: int
    faulted: bool


@dataclass
class ExplorationStats:
    """Aggregate statistics of one engine run."""

    executions: int = 0
    instructions: int = 0
    solver_queries: int = 0
    paths_seen: int = 0
    elapsed: float = 0.0


class DseEngine:
    """Concolic exploration of one function in a binary image.

    Args:
        image: the (possibly obfuscated) binary image.
        function: name of the function to attack.
        input_spec: which inputs are symbolic.
        strategy: ``"cupa"``, ``"bfs"`` or ``"dfs"``.
        memory_model: ``"concretize"`` (default) or ``"page"`` (§VII-C3).
        seed: RNG seed.
        max_instructions: per-execution instruction cap.
    """

    def __init__(self, image: BinaryImage, function: str,
                 input_spec: Optional[InputSpec] = None, strategy: str = "cupa",
                 memory_model: str = "concretize", seed: int = 0,
                 max_instructions: int = 2_000_000) -> None:
        if strategy not in ("cupa", "bfs", "dfs"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.image = image
        self.function = function
        self.input_spec = input_spec or InputSpec()
        self.strategy = strategy
        self.memory_model = memory_model
        self.random = random.Random(seed)
        self.max_instructions = max_instructions
        self.symbols = self.input_spec.symbol_table()
        self.solver = ConstraintSolver(self.symbols, seed=seed)
        self.stats = ExplorationStats()
        self._emulator: Optional[Emulator] = None
        self._entry_snapshot: Optional[EmulatorSnapshot] = None
        self._heap_base = 0

    def _fork_emulator(self) -> Emulator:
        """Rewind the engine's emulator to the attacked function's entry.

        The first call loads the image once and snapshots the fully prepared
        emulator (stack, return-to-exit sentinel, ``rip`` at the function
        entry); every later call restores that snapshot copy-on-write, so
        each explored path starts from the entry in O(1) instead of paying
        ``load_image`` and a fresh run from ``main``.
        """
        if self._entry_snapshot is None:
            program = load_image(self.image)
            emulator = Emulator(program.memory, host=HostEnvironment(),
                                max_steps=self.max_instructions)
            emulator.state.write_reg(Register.RSP, program.stack_top)
            emulator.state.write_reg(Register.RBP, program.stack_top)
            emulator.push(EXIT_ADDRESS)
            emulator.state.rip = self.image.function(self.function).address
            self._heap_base = program.heap_base
            self._emulator = emulator
            self._entry_snapshot = emulator.snapshot()
        self._emulator.restore(self._entry_snapshot)
        return self._emulator

    # -- concrete+symbolic execution of one input --------------------------------
    def execute(self, assignment: Dict[str, int]) -> ExecutionResult:
        """Run the target once under the given input assignment."""
        emulator = self._fork_emulator()
        host = emulator.host
        tracker = ShadowTracker(memory_model=self.memory_model)
        emulator.pre_hooks = [tracker.hook]

        arguments: List[int] = []
        for index, size in enumerate(self.input_spec.argument_sizes):
            name = f"arg{index}"
            value = assignment.get(name, 0) & ((1 << (8 * size)) - 1)
            arguments.append(value)
        if self.input_spec.buffer_symbols:
            buffer_address = self._heap_base + 0x100
            for index in range(self.input_spec.buffer_symbols):
                name = f"buf{index}"
                value = assignment.get(name, 0) & 0xFF
                emulator.memory.write_int(buffer_address + index, value, 1)
                tracker.set_memory_symbol(buffer_address + index, 1, SymExpr(name, 1))
            arguments.append(buffer_address)

        for register, value in zip(ARG_REGISTERS, arguments):
            emulator.state.write_reg(register, value & _MASK64)
        for index, size in enumerate(self.input_spec.argument_sizes):
            tracker.set_register_symbol(ARG_REGISTERS[index], SymExpr(f"arg{index}", size))

        faulted = False
        try:
            emulator.run()
        except EmulationError:
            faulted = True

        self.stats.executions += 1
        self.stats.instructions += emulator.steps
        return ExecutionResult(
            assignment=dict(assignment),
            return_value=emulator.state.read_reg(Register.RAX),
            probes=tuple(host.probes),
            constraints=tracker.path_constraints(),
            branch_addresses=[record.address for record in tracker.branches],
            instructions=emulator.steps,
            faulted=faulted,
        )

    # -- exploration ------------------------------------------------------------------
    def explore(self, time_budget: float = 10.0, max_executions: int = 200,
                stop_condition: Optional[Callable[[ExecutionResult], bool]] = None,
                ) -> Tuple[List[ExecutionResult], ExplorationStats]:
        """Explore paths until the budget runs out or ``stop_condition`` holds.

        Returns the list of execution results (one per explored input) and the
        aggregate statistics.
        """
        start = time.monotonic()
        initial = {name: 0 for name in self.symbols}
        pending: List[Tuple[int, Dict[str, int]]] = [(0, initial)]
        seen_inputs: Set[Tuple] = {tuple(sorted(initial.items()))}
        seen_decisions: Set[Tuple[int, bool]] = set()
        results: List[ExecutionResult] = []
        path_signatures: Set[Tuple] = set()

        while pending:
            elapsed = time.monotonic() - start
            if elapsed > time_budget or self.stats.executions >= max_executions:
                break
            index = self._pick(pending)
            _, assignment = pending.pop(index)
            result = self.execute(assignment)
            results.append(result)

            signature = tuple(
                (address, constraint.expected)
                for address, constraint in zip(result.branch_addresses, result.constraints)
            )
            if signature not in path_signatures:
                path_signatures.add(signature)
                self.stats.paths_seen += 1

            if stop_condition is not None and stop_condition(result):
                break

            # generational expansion: negate each branch decision of this path
            for position, constraint in enumerate(result.constraints):
                if time.monotonic() - start > time_budget:
                    break
                # dedupe on the decision *in its path context*: the same branch
                # may be feasible to flip under one prefix and not another
                decision_key = (
                    signature[:position],
                    result.branch_addresses[position],
                    not constraint.expected,
                )
                if decision_key in seen_decisions:
                    continue
                seen_decisions.add(decision_key)
                prefix = result.constraints[:position] + [constraint.negated()]
                self.stats.solver_queries += 1
                solution = self.solver.solve(prefix, seed_assignment=result.assignment)
                if solution is None:
                    continue
                key = tuple(sorted(solution.items()))
                if key in seen_inputs:
                    continue
                seen_inputs.add(key)
                pending.append((result.branch_addresses[position], solution))

        self.stats.elapsed = time.monotonic() - start
        return results, self.stats

    def _pick(self, pending: List[Tuple[int, Dict[str, int]]]) -> int:
        if self.strategy == "dfs":
            return len(pending) - 1
        if self.strategy == "bfs":
            return 0
        # CUPA: group by the branch address whose negation produced the input,
        # pick a class uniformly at random, then a member uniformly within it
        classes: Dict[int, List[int]] = {}
        for index, (address, _) in enumerate(pending):
            classes.setdefault(address, []).append(index)
        chosen_class = self.random.choice(list(classes))
        return self.random.choice(classes[chosen_class])
