"""ROP-aware deobfuscation tools (§III-B2): ROPMEMU and ROPDissector analogs.

* :class:`RopMemuExplorer` — dynamic multi-path exploration: record a chain
  execution, locate the flag-leak points that feed branch decisions (the
  ``setcc``/``adc`` idiom of Figure 1), flip them, and re-execute hoping to
  reveal new blocks.  P2's data dependencies make flipped executions derail
  into unintended bytes (§VII-A2).
* :class:`RopDissector` — static chain analysis over a memory dump: classify
  chain slots as gadget addresses vs. data, find the variable-RSP-offset
  sequences that mark branching points, and optionally run *gadget guessing*
  (speculative decoding at every plausible offset), which gadget confusion is
  designed to blow up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.attacks.engine import SnapshotEngine
from repro.binary.image import BinaryImage
from repro.cpu.state import EmulationError
from repro.cpu.tracing import TraceRecorder
from repro.gadgets.finder import gadget_at
from repro.isa.instructions import Mnemonic
from repro.isa.operands import Reg
from repro.isa.registers import ARG_REGISTERS, Register

_MASK64 = (1 << 64) - 1


# ---------------------------------------------------------------------------
# ROPMEMU-style dynamic exploration
# ---------------------------------------------------------------------------
@dataclass
class FlipAttempt:
    """One attempted branch flip."""

    trace_index: int
    address: int
    survived: bool
    new_probes: Set[int] = field(default_factory=set)


@dataclass
class RopMemuReport:
    """Aggregate result of a multi-path exploration session."""

    flag_leak_points: int
    attempts: List[FlipAttempt]

    @property
    def valid_alternate_paths(self) -> int:
        """Flips that produced a complete, fault-free execution."""
        return sum(1 for attempt in self.attempts if attempt.survived)

    @property
    def new_coverage(self) -> Set[int]:
        """Coverage probes revealed only by flipped executions."""
        out: Set[int] = set()
        for attempt in self.attempts:
            out |= attempt.new_probes
        return out


class RopMemuExplorer(SnapshotEngine):
    """Dynamic multi-path exploration of a ROP-obfuscated function.

    Every flip re-executes the chain from the function entry; the engine
    rewinds its prepared emulator with :meth:`repro.cpu.Emulator.restore`
    (see :class:`repro.attacks.engine.SnapshotEngine`) instead of paying a
    program fork plus a fresh emulator per execution.
    """

    def __init__(self, image: BinaryImage, function: str,
                 max_instructions: int = 1_000_000,
                 use_snapshots: bool = True) -> None:
        super().__init__(image, function, max_instructions=max_instructions,
                         use_snapshots=use_snapshots)

    def _run(self, arguments: Sequence[int], flip_index: Optional[int] = None
             ) -> Tuple[bool, Set[int], List]:
        emulator = self._fork_emulator()
        host = emulator.host
        recorder = TraceRecorder(capture_registers=False).attach(emulator)

        flips = {"remaining": flip_index}

        def flipper(emu, address, instruction):
            if flips["remaining"] is None:
                return
            if len(recorder.entries) == flips["remaining"]:
                # invert the flag-leak outcome: the next SET/CMOV sees negated flags
                from repro.isa.flags import Flag

                for flag in (Flag.ZF, Flag.CF, Flag.SF):
                    emu.state.write_flag(flag, 1 - emu.state.read_flag(flag))
                flips["remaining"] = None

        emulator.pre_hooks.append(flipper)
        for register, value in zip(ARG_REGISTERS, arguments):
            emulator.state.write_reg(register, value & _MASK64)
        survived = True
        try:
            emulator.run()
        except EmulationError:
            survived = False
        self.stats.executions += 1
        self.stats.instructions += emulator.steps
        return survived, set(host.probes), recorder.entries

    def flag_leak_points(self, trace) -> List[int]:
        """Trace indices of flag-leaking instructions inside the chain."""
        points = []
        for entry in trace:
            mnemonic = entry.instruction.mnemonic
            if mnemonic in (Mnemonic.SET, Mnemonic.CMOV, Mnemonic.ADC, Mnemonic.SBB):
                points.append(entry.index)
        return points

    def explore(self, arguments: Sequence[int], max_flips: int = 32) -> RopMemuReport:
        """Record a base trace and flip every detected flag-leak point once."""
        _, base_probes, trace = self._run(arguments)
        points = self.flag_leak_points(trace)
        attempts: List[FlipAttempt] = []
        for index in points[:max_flips]:
            survived, probes, _ = self._run(arguments, flip_index=index)
            attempts.append(FlipAttempt(
                trace_index=index,
                address=trace[index].address if index < len(trace) else 0,
                survived=survived,
                new_probes=probes - base_probes,
            ))
        return RopMemuReport(flag_leak_points=len(points), attempts=attempts)


# ---------------------------------------------------------------------------
# ROPDissector-style static analysis
# ---------------------------------------------------------------------------
@dataclass
class DissectionReport:
    """Static view of one chain.

    Attributes:
        slots: number of 8-byte strides examined.
        gadget_slots: strides whose value points at a decodable gadget.
        data_slots: strides classified as data operands.
        branch_points: gadgets that add a variable quantity to ``rsp``.
        guessed_gadgets: candidate gadget starts found by speculative decoding
            at every byte offset (gadget guessing) — confusion inflates this.
    """

    slots: int
    gadget_slots: int
    data_slots: int
    branch_points: int
    guessed_gadgets: int

    @property
    def address_looking_fraction(self) -> float:
        """Fraction of strides that look like gadget addresses."""
        if not self.slots:
            return 0.0
        return self.gadget_slots / self.slots


class RopDissector:
    """Static analysis of an embedded ROP chain from a memory dump."""

    def __init__(self, image: BinaryImage) -> None:
        self.image = image
        text = image.sections[".text"]
        self._text_data = bytes(text.data)
        self._text_base = text.address

    def _decode_gadget(self, address: int):
        if not (self._text_base <= address < self._text_base + len(self._text_data)):
            return None
        return gadget_at(self._text_data, address - self._text_base, self._text_base)

    def chain_bytes(self, function: str) -> bytes:
        """Raw bytes of the chain generated for ``function``."""
        symbol = self.image.symbols.get(f"__rop_chain_{function}")
        return self.image.read(symbol.address, symbol.size)

    def dissect(self, function: str, gadget_guessing: bool = False) -> DissectionReport:
        """Analyze the chain of ``function`` from its in-image dump."""
        data = self.chain_bytes(function)
        slots = len(data) // 8
        gadget_slots = 0
        data_slots = 0
        branch_points = 0
        for index in range(slots):
            value = int.from_bytes(data[8 * index:8 * index + 8], "little")
            gadget = self._decode_gadget(value)
            if gadget is None:
                data_slots += 1
                continue
            gadget_slots += 1
            for instruction in gadget.instructions:
                if instruction.mnemonic is Mnemonic.ADD and instruction.operands \
                        and isinstance(instruction.operands[0], Reg) \
                        and instruction.operands[0].reg is Register.RSP \
                        and isinstance(instruction.operands[1], Reg):
                    branch_points += 1

        guessed = 0
        if gadget_guessing:
            for offset in range(len(data)):
                value = int.from_bytes(data[offset:offset + 8].ljust(8, b"\0"), "little")
                if self._decode_gadget(value) is not None:
                    guessed += 1
        return DissectionReport(slots=slots, gadget_slots=gadget_slots,
                                data_slots=data_slots, branch_points=branch_points,
                                guessed_gadgets=guessed)
