"""Static symbolic execution (the angr analog of §III-B1).

The engine reuses the shadow-execution machinery of the concolic engine but
behaves like a static tool: breadth-first exploration with no preference for
the concrete seed path, and a fully symbolic view of memory (the page-level
array model) so that symbolic-index reads — exactly what P1's opaque array
induces on every branch — become large select expressions the solver must
reason about.  This is what makes SE feel P1's aliasing much earlier than the
concolic engine does (§VII-A1).
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.dse import DseEngine, InputSpec
from repro.binary.image import BinaryImage


class SymbolicExecutionEngine(DseEngine):
    """Breadth-first, memory-symbolic exploration engine."""

    def __init__(self, image: BinaryImage, function: str,
                 input_spec: Optional[InputSpec] = None, seed: int = 0,
                 max_instructions: int = 2_000_000) -> None:
        super().__init__(image, function, input_spec=input_spec, strategy="bfs",
                         memory_model="page", seed=seed,
                         max_instructions=max_instructions)
        # a static engine leans on its solver much harder per query
        self.solver.max_evaluations = 20_000
