"""Attack goal drivers: G1 secret finding and G2 code coverage (§III).

Both drivers wrap an exploration engine (DSE by default) with a budget and a
success criterion, returning an :class:`AttackOutcome` with the measurements
Table II reports: whether the goal was reached, how long it took, and how
much work (executions, instructions, solver queries) was spent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

from repro import knobs
from repro.attacks.dse import DseEngine, ExecutionResult, InputSpec
from repro.binary.image import BinaryImage


def dse_workers() -> int:
    """Resolve ``REPRO_DSE_WORKERS``: worker processes per DSE attack.

    Values above 1 route the ``dse`` engine through the distributed
    snapshot frontier (:class:`repro.attacks.frontier.FrontierExplorer`);
    the default 1 keeps today's serial engine.
    """
    return knobs.positive_int("REPRO_DSE_WORKERS")


@dataclass
class AttackBudget:
    """Resource budget of one attack attempt.

    The paper uses 1-hour wall-clock budgets on a Xeon server; the
    reproduction defaults are seconds-scale so the full grid runs on a laptop
    (see EXPERIMENTS.md for the scaling discussion).
    """

    seconds: float = 5.0
    max_executions: int = 150
    max_instructions_per_run: int = 2_000_000
    #: optional deterministic cap on generational-expansion solver queries;
    #: when it (rather than the wall clock) is what binds, an attack's
    #: executions/instructions counters are identical on every machine —
    #: the property the grid's serial-vs-parallel determinism tests rely on
    max_solver_queries: Optional[int] = None


@dataclass
class AttackOutcome:
    """Result of one attack attempt.

    Attributes:
        success: whether the goal was reached within the budget.
        time_to_success: seconds elapsed when the goal was reached (or the
            full budget when it was not).
        executions: concrete executions performed.
        instructions: total emulated instructions (rerun-from-entry
            accounting; see :class:`repro.attacks.engine.EngineStats`).
        solver_queries: solver invocations.
        paths: distinct paths observed.
        witness: for secret finding, the input assignment that reached the
            accepting path.
        covered_probes: for coverage, the set of probe identifiers observed.
        branch_restores: executions resumed from a mid-path branch snapshot
            (backtracking DSE).
        instructions_replayed: instructions skipped by those restores.
    """

    success: bool
    time_to_success: float
    executions: int
    instructions: int
    solver_queries: int
    paths: int
    witness: Optional[Dict[str, int]] = None
    covered_probes: Set[int] = field(default_factory=set)
    branch_restores: int = 0
    instructions_replayed: int = 0


def _make_engine(image: BinaryImage, function: str, input_spec: InputSpec,
                 budget: AttackBudget, engine: str, seed: int,
                 memory_model: str) -> DseEngine:
    if engine == "dse":
        workers = dse_workers()
        if workers > 1:
            from repro.attacks.frontier import FrontierExplorer

            return FrontierExplorer(image, function, input_spec,
                                    strategy="cupa",
                                    memory_model=memory_model, seed=seed,
                                    max_instructions=budget.max_instructions_per_run,
                                    workers=workers)
        return DseEngine(image, function, input_spec, strategy="cupa",
                         memory_model=memory_model, seed=seed,
                         max_instructions=budget.max_instructions_per_run)
    if engine == "se":
        from repro.attacks.symbolic import SymbolicExecutionEngine

        return SymbolicExecutionEngine(image, function, input_spec, seed=seed,
                                       max_instructions=budget.max_instructions_per_run)
    raise ValueError(f"unknown engine {engine!r}")


def secret_finding_attack(image: BinaryImage, function: str,
                          input_spec: Optional[InputSpec] = None,
                          budget: Optional[AttackBudget] = None,
                          accept_value: int = 1, engine: str = "dse",
                          memory_model: str = "concretize",
                          seed: int = 0,
                          driver: Optional[DseEngine] = None) -> AttackOutcome:
    """G1: find an input that drives the function to its accepting return value.

    ``driver`` lets a caller supply an already-prepared engine (retargeted
    and reset by the attack service) instead of constructing one per call;
    the caller is then responsible for the engine matching ``function``,
    ``seed`` and ``input_spec``.
    """
    budget = budget or AttackBudget()
    input_spec = input_spec or InputSpec()
    if driver is None:
        driver = _make_engine(image, function, input_spec, budget, engine,
                              seed, memory_model)

    start = time.monotonic()
    found: Dict[str, int] = {}

    def stop(result: ExecutionResult) -> bool:
        if not result.faulted and result.return_value == accept_value:
            found.update(result.assignment)
            return True
        return False

    results, stats = driver.explore(time_budget=budget.seconds,
                                    max_executions=budget.max_executions,
                                    stop_condition=stop,
                                    max_solver_queries=budget.max_solver_queries)
    elapsed = time.monotonic() - start
    success = bool(found)
    return AttackOutcome(
        success=success,
        time_to_success=elapsed if success else budget.seconds,
        executions=stats.executions,
        instructions=stats.instructions,
        solver_queries=stats.solver_queries,
        paths=stats.paths_seen,
        witness=dict(found) if success else None,
        covered_probes={p for r in results for p in r.probes},
        branch_restores=stats.branch_restores,
        instructions_replayed=stats.instructions_replayed,
    )


def coverage_attack(image: BinaryImage, function: str, target_probes: Iterable[int],
                    input_spec: Optional[InputSpec] = None,
                    budget: Optional[AttackBudget] = None, engine: str = "dse",
                    memory_model: str = "concretize", seed: int = 0) -> AttackOutcome:
    """G2: exercise enough paths to hit every reachable coverage probe."""
    budget = budget or AttackBudget()
    input_spec = input_spec or InputSpec()
    target = set(target_probes)
    driver = _make_engine(image, function, input_spec, budget, engine, seed, memory_model)

    covered: Set[int] = set()
    start = time.monotonic()
    reached_at = {"time": budget.seconds}

    def stop(result: ExecutionResult) -> bool:
        covered.update(result.probes)
        if target and covered >= target:
            reached_at["time"] = time.monotonic() - start
            return True
        return False

    _, stats = driver.explore(time_budget=budget.seconds,
                              max_executions=budget.max_executions,
                              stop_condition=stop,
                              max_solver_queries=budget.max_solver_queries)
    success = bool(target) and covered >= target
    return AttackOutcome(
        success=success,
        time_to_success=reached_at["time"] if success else budget.seconds,
        executions=stats.executions,
        instructions=stats.instructions,
        solver_queries=stats.solver_queries,
        paths=stats.paths_seen,
        covered_probes=covered,
        branch_restores=stats.branch_restores,
        instructions_replayed=stats.instructions_replayed,
    )
