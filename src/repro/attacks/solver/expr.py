"""Symbolic bitvector expressions used by the attack engines.

Expressions are immutable trees over 64-bit values.  They support evaluation
under a concrete assignment of the input symbols, which is what both the
constraint solver (search-based) and the concolic engine (shadow values) need.

Shadow state makes heavy *sharing* inevitable: one register expression feeds
the next instruction's operands, so the live expression set is a DAG whose
unfolded tree is exponentially larger than its node count.  Every structural
query therefore memoizes per node (``depth``/``symbols`` cache on the
immutable node itself) or per call (``evaluate``/``simplify`` carry an
id-keyed memo engaged once an expression is deep enough for sharing to
matter), keeping all of them O(unique nodes) instead of O(tree paths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple, Union

_MASK64 = (1 << 64) - 1

#: Expressions at most this deep evaluate by plain recursion: below the
#: threshold the tree cannot hide enough sharing to matter, and skipping the
#: memo keeps the solver's hot loop (thousands of shallow evaluations per
#: query) free of dict traffic.
_MEMO_DEPTH = 8


def _signed(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value >> 63 else value


@dataclass(frozen=True)
class SymExpr:
    """A free input symbol (one function argument or input byte group)."""

    name: str
    size: int = 8  # in bytes

    def evaluate(self, assignment: Dict[str, int], _memo: Optional[dict] = None) -> int:
        return assignment.get(self.name, 0) & ((1 << (8 * self.size)) - 1)

    def symbols(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def depth(self) -> int:
        return 1

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ConstExpr:
    """A constant."""

    value: int

    def evaluate(self, assignment: Dict[str, int], _memo: Optional[dict] = None) -> int:
        return self.value & _MASK64

    def symbols(self) -> FrozenSet[str]:
        return frozenset()

    def depth(self) -> int:
        return 1

    def __str__(self) -> str:
        return hex(self.value)


#: Binary operators understood by :class:`BinExpr`.
BINARY_OPERATORS = (
    "add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr", "sar",
    "eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sle", "sgt", "sge",
)


@dataclass(frozen=True)
class BinExpr:
    """A binary operation; comparisons evaluate to 0 or 1."""

    op: str
    left: "Expression"
    right: "Expression"

    def evaluate(self, assignment: Dict[str, int], _memo: Optional[dict] = None) -> int:
        if _memo is None and self.depth() > _MEMO_DEPTH:
            _memo = {}
        if _memo is not None:
            key = id(self)
            cached = _memo.get(key)
            if cached is not None:
                return cached
        a = self.left.evaluate(assignment, _memo) & _MASK64
        b = self.right.evaluate(assignment, _memo) & _MASK64
        value = self._apply(a, b)
        if _memo is not None:
            _memo[key] = value
        return value

    def _apply(self, a: int, b: int) -> int:
        op = self.op
        if op == "add":
            return (a + b) & _MASK64
        if op == "sub":
            return (a - b) & _MASK64
        if op == "mul":
            return (a * b) & _MASK64
        if op == "div":
            return 0 if b == 0 else (int(_signed(a) / _signed(b)) & _MASK64)
        if op == "mod":
            if b == 0:
                return 0
            quotient = int(_signed(a) / _signed(b))
            return (_signed(a) - quotient * _signed(b)) & _MASK64
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        if op == "shl":
            return (a << (b & 0x3F)) & _MASK64
        if op == "shr":
            return a >> (b & 0x3F)
        if op == "sar":
            return (_signed(a) >> (b & 0x3F)) & _MASK64
        if op == "eq":
            return int(a == b)
        if op == "ne":
            return int(a != b)
        if op == "ult":
            return int(a < b)
        if op == "ule":
            return int(a <= b)
        if op == "ugt":
            return int(a > b)
        if op == "uge":
            return int(a >= b)
        if op == "slt":
            return int(_signed(a) < _signed(b))
        if op == "sle":
            return int(_signed(a) <= _signed(b))
        if op == "sgt":
            return int(_signed(a) > _signed(b))
        if op == "sge":
            return int(_signed(a) >= _signed(b))
        raise ValueError(f"unknown operator {op!r}")

    def symbols(self) -> FrozenSet[str]:
        cached = self.__dict__.get("_symbols")
        if cached is None:
            cached = self.left.symbols() | self.right.symbols()
            object.__setattr__(self, "_symbols", cached)
        return cached

    def depth(self) -> int:
        cached = self.__dict__.get("_depth")
        if cached is None:
            cached = 1 + max(self.left.depth(), self.right.depth())
            object.__setattr__(self, "_depth", cached)
        return cached

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnExpr:
    """A unary operation: ``neg``, ``not`` or ``lnot``."""

    op: str
    operand: "Expression"

    def evaluate(self, assignment: Dict[str, int], _memo: Optional[dict] = None) -> int:
        if _memo is None and self.depth() > _MEMO_DEPTH:
            _memo = {}
        if _memo is not None:
            key = id(self)
            cached = _memo.get(key)
            if cached is not None:
                return cached
        value = self.operand.evaluate(assignment, _memo) & _MASK64
        if self.op == "neg":
            value = (-value) & _MASK64
        elif self.op == "not":
            value = (~value) & _MASK64
        elif self.op == "lnot":
            value = int(value == 0)
        else:
            raise ValueError(f"unknown operator {self.op!r}")
        if _memo is not None:
            _memo[key] = value
        return value

    def symbols(self) -> FrozenSet[str]:
        cached = self.__dict__.get("_symbols")
        if cached is None:
            cached = self.operand.symbols()
            object.__setattr__(self, "_symbols", cached)
        return cached

    def depth(self) -> int:
        cached = self.__dict__.get("_depth")
        if cached is None:
            cached = 1 + self.operand.depth()
            object.__setattr__(self, "_depth", cached)
        return cached

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class SelectExpr:
    """A symbolic-index read over a memory snapshot (theory-of-arrays style).

    Used by the page memory model (§VII-C3): the snapshot captures the bytes
    of the page the concrete address fell in, and the index expression selects
    within it.
    """

    base_address: int
    snapshot: Tuple[int, ...]
    index: "Expression"
    size: int = 1

    def evaluate(self, assignment: Dict[str, int], _memo: Optional[dict] = None) -> int:
        offset = (self.index.evaluate(assignment, _memo) - self.base_address) & _MASK64
        if offset + self.size > len(self.snapshot):
            return 0
        value = 0
        for i in range(self.size):
            value |= self.snapshot[offset + i] << (8 * i)
        return value

    def symbols(self) -> FrozenSet[str]:
        cached = self.__dict__.get("_symbols")
        if cached is None:
            cached = self.index.symbols()
            object.__setattr__(self, "_symbols", cached)
        return cached

    def depth(self) -> int:
        cached = self.__dict__.get("_depth")
        if cached is None:
            cached = 1 + self.index.depth()
            object.__setattr__(self, "_depth", cached)
        return cached

    def __str__(self) -> str:
        return f"select[{self.base_address:#x}+{len(self.snapshot)}]({self.index})"


Expression = Union[SymExpr, ConstExpr, BinExpr, UnExpr, SelectExpr]


def bitvec(name: str, size: int = 8) -> SymExpr:
    """Create an input symbol of ``size`` bytes."""
    return SymExpr(name, size)


def constant(value: int) -> ConstExpr:
    """Create a constant expression."""
    return ConstExpr(value & _MASK64)


def is_concrete(expression: Expression) -> bool:
    """True when the expression references no symbols."""
    return not expression.symbols()


def simplify(expression: Expression, _memo: Optional[dict] = None) -> Expression:
    """Lightweight constant folding.

    The per-call memo keeps shared subtrees simplified once and — just as
    important — *re-shared* in the result, so simplifying a DAG cannot
    explode it into a tree.
    """
    if _memo is None:
        _memo = {}
    cached = _memo.get(id(expression))
    if cached is not None:
        return cached
    result = expression
    if isinstance(expression, BinExpr):
        left = simplify(expression.left, _memo)
        right = simplify(expression.right, _memo)
        if isinstance(left, ConstExpr) and isinstance(right, ConstExpr):
            result = ConstExpr(BinExpr(expression.op, left, right).evaluate({}))
        elif expression.op in ("add", "or", "xor") and isinstance(right, ConstExpr) and right.value == 0:
            result = left
        elif expression.op == "mul" and isinstance(right, ConstExpr) and right.value == 1:
            result = left
        elif left is not expression.left or right is not expression.right:
            result = BinExpr(expression.op, left, right)
    elif isinstance(expression, UnExpr):
        operand = simplify(expression.operand, _memo)
        if isinstance(operand, ConstExpr):
            result = ConstExpr(UnExpr(expression.op, operand).evaluate({}))
        elif operand is not expression.operand:
            result = UnExpr(expression.op, operand)
    _memo[id(expression)] = result
    return result
