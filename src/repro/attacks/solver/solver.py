"""Search-based constraint solver used by the symbolic engines.

The solver answers one question: *find an assignment of the input symbols
that satisfies a conjunction of path constraints*.  It combines cheap
structural inversion (``f(x) == c`` patterns over invertible chains),
exhaustive enumeration of very small inputs, and bounded stochastic search.
The cost of a query grows with the depth of the expressions involved and with
the number of constraints — which is exactly how P1's aliasing and P3's
state widening translate into attacker-side resource consumption.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.attacks.solver.expr import (
    BinExpr,
    ConstExpr,
    Expression,
    SymExpr,
    UnExpr,
    simplify,
)

_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class PathConstraint:
    """One branch decision: ``expression`` must evaluate to ``expected``."""

    expression: Expression
    expected: bool

    def holds(self, assignment: Dict[str, int]) -> bool:
        return bool(self.expression.evaluate(assignment)) == self.expected

    def negated(self) -> "PathConstraint":
        return PathConstraint(self.expression, not self.expected)


@dataclass
class SolverStatistics:
    """Work counters (exposed so experiments can report solver pressure)."""

    queries: int = 0
    evaluations: int = 0
    solved: int = 0
    failed: int = 0


class ConstraintSolver:
    """Satisfiability search over input symbols.

    Args:
        symbols: the input symbols (name -> byte width).
        seed: RNG seed for the stochastic phase.
        max_evaluations: per-query budget of candidate evaluations; deeper
            expression sets consume it faster.
    """

    def __init__(self, symbols: Dict[str, int], seed: int = 0,
                 max_evaluations: int = 4000) -> None:
        self.symbols = dict(symbols)
        self.random = random.Random(seed)
        self.max_evaluations = max_evaluations
        self.stats = SolverStatistics()

    # -- helpers ---------------------------------------------------------------
    def _mask(self, name: str) -> int:
        return (1 << (8 * self.symbols[name])) - 1

    def _satisfies(self, constraints: Sequence[PathConstraint],
                   assignment: Dict[str, int]) -> bool:
        self.stats.evaluations += 1
        return all(constraint.holds(assignment) for constraint in constraints)

    def _try_invert(self, constraint: PathConstraint,
                    assignment: Dict[str, int]) -> Optional[Dict[str, int]]:
        """Structurally invert ``sym-op-chain == constant`` style constraints."""
        expression = simplify(constraint.expression)
        if not isinstance(expression, BinExpr) or expression.op not in ("eq", "ne"):
            return None
        want_equal = (expression.op == "eq") == constraint.expected
        if not want_equal:
            return None
        left, right = expression.left, expression.right
        if isinstance(left, ConstExpr):
            left, right = right, left
        if not isinstance(right, ConstExpr):
            return None
        target = right.value
        # peel invertible operations off the left side
        node = left
        while True:
            if isinstance(node, SymExpr):
                candidate = dict(assignment)
                candidate[node.name] = target & self._mask(node.name)
                return candidate
            if isinstance(node, BinExpr) and isinstance(node.right, ConstExpr):
                value = node.right.value
                if node.op == "add":
                    target = (target - value) & _MASK64
                elif node.op == "sub":
                    target = (target + value) & _MASK64
                elif node.op == "xor":
                    target = target ^ value
                elif node.op == "mul" and value % 2 == 1:
                    target = (target * pow(value, -1, 1 << 64)) & _MASK64
                elif node.op == "and":
                    # not invertible in general; keep masked target and recurse
                    target = target & value
                else:
                    return None
                node = node.left
                continue
            if isinstance(node, UnExpr) and node.op in ("neg", "not"):
                target = (-target) & _MASK64 if node.op == "neg" else (~target) & _MASK64
                node = node.operand
                continue
            return None

    # -- public API ---------------------------------------------------------------
    def solve(self, constraints: Sequence[PathConstraint],
              seed_assignment: Optional[Dict[str, int]] = None) -> Optional[Dict[str, int]]:
        """Find an assignment satisfying every constraint, or None.

        The search starts from ``seed_assignment`` (the concrete input of the
        path being negated, in concolic use) and consumes at most
        ``max_evaluations`` candidate evaluations.
        """
        self.stats.queries += 1
        assignment = dict(seed_assignment or {name: 0 for name in self.symbols})
        for name in self.symbols:
            assignment.setdefault(name, 0)

        if self._satisfies(constraints, assignment):
            self.stats.solved += 1
            return assignment

        # phase 1: structural inversion of the last (usually the negated) constraint
        for constraint in reversed(list(constraints)):
            candidate = self._try_invert(constraint, assignment)
            if candidate is not None and self._satisfies(constraints, candidate):
                self.stats.solved += 1
                return candidate

        budget = self.max_evaluations
        names = list(self.symbols)

        # phase 2: exhaustive enumeration for tiny input spaces
        total_bits = sum(8 * self.symbols[name] for name in names)
        if total_bits <= 16:
            for value in range(1 << total_bits):
                candidate = dict(assignment)
                cursor = value
                for name in names:
                    bits = 8 * self.symbols[name]
                    candidate[name] = cursor & ((1 << bits) - 1)
                    cursor >>= bits
                budget -= 1
                if self._satisfies(constraints, candidate):
                    self.stats.solved += 1
                    return candidate
                if budget <= 0:
                    break

        # phase 3: stochastic search (byte flips, random restarts)
        best = dict(assignment)
        while budget > 0:
            candidate = dict(best)
            name = self.random.choice(names)
            mask = self._mask(name)
            mutation = self.random.random()
            if mutation < 0.4:
                byte = self.random.randrange(self.symbols[name])
                candidate[name] = (candidate[name]
                                   ^ (self.random.randrange(256) << (8 * byte))) & mask
            elif mutation < 0.7:
                candidate[name] = self.random.randrange(mask + 1)
            else:
                candidate[name] = (candidate[name] + self.random.choice([1, -1, 16, -16])) & mask
            budget -= 1
            if self._satisfies(constraints, candidate):
                self.stats.solved += 1
                return candidate
            if self.random.random() < 0.2:
                best = candidate
        self.stats.failed += 1
        return None
