"""Bitvector expression language and constraint solving for the attacks."""

from repro.attacks.solver.expr import (
    BinExpr,
    ConstExpr,
    Expression,
    SelectExpr,
    SymExpr,
    UnExpr,
    bitvec,
    constant,
)
from repro.attacks.solver.solver import ConstraintSolver, PathConstraint

__all__ = [
    "Expression",
    "SymExpr",
    "ConstExpr",
    "BinExpr",
    "UnExpr",
    "SelectExpr",
    "bitvec",
    "constant",
    "ConstraintSolver",
    "PathConstraint",
]
