"""Shared snapshot-driven execution base for the attack engines (§III-B).

Every dynamic attack in the evaluation — DSE path exploration, TDS trace
recording, ROPMEMU multi-path flipping — re-executes the attacked function
thousands of times.  This module centralizes the machinery that makes those
re-executions cheap:

* :class:`SnapshotEngine` — owns one emulator per engine instance, prepares
  it once (load, stack, return-to-exit sentinel, ``rip`` at the attacked
  function's entry) and snapshots the prepared context; every subsequent
  execution rewinds with :meth:`repro.cpu.Emulator.restore` instead of
  paying ``load_image``/``LoadedProgram.fork`` plus a fresh emulator.  The
  entry snapshot is keyed on the attacked symbol and invalidated when the
  engine is retargeted, so one engine instance can attack several functions
  without leaking the previous target's context.
* :class:`SnapshotPool` — a bounded pool of mid-path snapshots for the
  backtracking DSE explorer (:mod:`repro.attacks.dse`), keyed by the branch
  decisions taken before the snapshot point.  Eviction removes the deepest
  least-recently-used entry first, so memory stays proportional to the
  exploration frontier rather than the whole path tree.
* :class:`EngineStats` — per-run statistics shared by the three engines and
  consumed by the attack goal drivers and the evaluation grid.
* :func:`preloaded_fork` — a process-wide pristine-load cache used by the
  evaluation drivers (Figure 5 overhead sweeps, Table II probe sampling)
  for the hook-free executions that do not go through an engine.

The pool size is controlled by ``REPRO_SNAPSHOT_POOL`` (default ``32``;
``0`` disables mid-path snapshots and with them backtracking).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple
from weakref import WeakKeyDictionary

from repro import knobs
from repro.binary.image import BinaryImage
from repro.binary.loader import LoadedProgram, load_image
from repro.cpu.emulator import Emulator, EmulatorSnapshot
from repro.cpu.host import EXIT_ADDRESS, HostEnvironment
from repro.isa.registers import Register

_MASK64 = (1 << 64) - 1


def snapshot_pool_capacity() -> int:
    """Resolve the ``REPRO_SNAPSHOT_POOL`` knob (mid-path snapshot budget).

    The knob is a *global* budget: a parallel run divides it across its
    workers with :func:`sharded_pool_capacity` so the sum of all workers'
    pools never exceeds what a serial run would have kept resident.
    """
    return knobs.nonneg_int("REPRO_SNAPSHOT_POOL")


def sharded_pool_capacity(workers: int, total: Optional[int] = None) -> int:
    """Each worker's share of the global mid-path snapshot budget.

    ``total`` defaults to :func:`snapshot_pool_capacity`.  A disabled budget
    (0) stays disabled for every worker; any positive budget grants each
    worker at least one slot so backtracking never silently turns off just
    because the worker count exceeds the budget.
    """
    total = snapshot_pool_capacity() if total is None else total
    if total <= 0:
        return 0
    return max(1, total // max(1, workers))


@dataclass
class EngineStats:
    """Aggregate statistics of one engine run.

    Attributes:
        executions: concrete executions performed.
        instructions: emulated instructions, in rerun-from-entry accounting
            (a backtracked execution still counts its full path length, so
            the number is comparable across exploration modes).
        instructions_replayed: instructions *not* actually executed because a
            mid-path snapshot restore skipped the path prefix.
        entry_restores: executions started by rewinding to the entry
            snapshot.
        branch_restores: executions resumed from a mid-path branch snapshot.
        snapshots_taken: mid-path snapshots captured into the pool.
        snapshots_evicted: pool entries dropped by the LRU-by-depth bound.
        repair_fallbacks: restores abandoned because the state repair raised
            (the execution reran from the entry instead).
        solver_queries: solver invocations (DSE only).
        paths_seen: distinct path signatures observed (DSE only).
        elapsed: wall-clock seconds of the run.
    """

    executions: int = 0
    instructions: int = 0
    instructions_replayed: int = 0
    entry_restores: int = 0
    branch_restores: int = 0
    snapshots_taken: int = 0
    snapshots_evicted: int = 0
    repair_fallbacks: int = 0
    solver_queries: int = 0
    paths_seen: int = 0
    elapsed: float = 0.0

    @property
    def executions_per_sec(self) -> float:
        """Concrete executions per wall-clock second (0 when unmeasured)."""
        if self.elapsed <= 0.0:
            return 0.0
        return self.executions / self.elapsed


class SnapshotPool:
    """Bounded pool of mid-path snapshots keyed by branch-decision prefixes.

    Keys are tuples of ``(branch_address, decision_taken)`` pairs — the path
    prefix executed before the snapshot was taken.  Lookup finds the deepest
    stored ancestor of a requested prefix; eviction drops the deepest
    least-recently-used entry so shallow snapshots (which serve the most
    descendants) survive the longest and memory stays O(frontier).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = snapshot_pool_capacity() if capacity is None else capacity
        self.evictions = 0
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        return key in self._entries

    def touch(self, key: Tuple) -> None:
        """Mark ``key`` as recently used (it survives eviction longer)."""
        if key in self._entries:
            self._entries.move_to_end(key)

    def put(self, key: Tuple, value: object) -> None:
        """Store a snapshot, evicting the deepest LRU entry when full."""
        if self.capacity <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        while len(self._entries) >= self.capacity:
            deepest = max(len(stored) for stored in self._entries)
            for stored in self._entries:  # in LRU order
                if len(stored) == deepest:
                    del self._entries[stored]
                    self.evictions += 1
                    break
        self._entries[key] = value

    def nearest_ancestor(self, prefix: Tuple) -> Optional[Tuple[Tuple, object]]:
        """Return ``(key, value)`` of the deepest stored prefix of ``prefix``.

        The empty prefix is a valid ancestor: a snapshot taken at the first
        branch point still skips the whole function prologue.
        """
        for depth in range(len(prefix), -1, -1):
            entry = self._entries.get(prefix[:depth])
            if entry is not None:
                self._entries.move_to_end(prefix[:depth])
                return prefix[:depth], entry
        return None

    def clear(self) -> None:
        self._entries.clear()


class SnapshotEngine:
    """Base class owning the snapshot lifecycle of one attack engine.

    Args:
        image: the (possibly obfuscated) binary image under attack.
        function: name of the attacked function.
        max_instructions: per-execution instruction budget.
        use_snapshots: when False, fall back to the legacy per-execution
            ``LoadedProgram.fork()`` + fresh-emulator path (the A/B lever the
            throughput benchmark and the differential tests use).
    """

    def __init__(self, image: BinaryImage, function: str,
                 max_instructions: int = 2_000_000,
                 use_snapshots: bool = True) -> None:
        self.image = image
        self.function = function
        self.max_instructions = max_instructions
        self.use_snapshots = use_snapshots
        self.stats = EngineStats()
        self._emulator: Optional[Emulator] = None
        self._entry_snapshot: Optional[EmulatorSnapshot] = None
        self._entry_symbol: Optional[str] = None
        self._pristine: Optional[LoadedProgram] = None
        self._heap_base = 0

    # -- snapshot lifecycle --------------------------------------------------
    def retarget(self, function: str) -> None:
        """Point the engine at a different function of the same image.

        Cheap by design: only the target symbol changes here, and
        :meth:`_fork_emulator` lazily invalidates the entry snapshot when it
        notices the mismatch — so retargeting back and forth costs nothing
        until the next execution actually needs the new entry context.  The
        long-lived attack service retargets one cached engine per image
        across requests instead of rebuilding engines.
        """
        self.function = function

    def invalidate_snapshots(self) -> None:
        """Drop the prepared emulator and every snapshot derived from it.

        Called automatically when the attacked symbol changes; subclasses
        that keep additional snapshots (the DSE branch pool) extend this.
        """
        self._emulator = None
        self._entry_snapshot = None
        self._entry_symbol = None

    def _fork_emulator(self) -> Emulator:
        """Rewind the engine's emulator to the attacked function's entry.

        The first call loads the image once and snapshots the fully prepared
        emulator (stack, return-to-exit sentinel, ``rip`` at the function
        entry); every later call restores that snapshot copy-on-write, so
        each execution starts from the entry in O(regions) instead of paying
        ``load_image`` and a fresh run from ``main``.  The snapshot is bound
        to the attacked symbol: retargeting the engine to a different
        function invalidates it rather than leaking the stale entry context.
        """
        if not self.use_snapshots:
            return self._legacy_emulator()
        if self._entry_snapshot is not None and self._entry_symbol != self.function:
            self.invalidate_snapshots()
        if self._entry_snapshot is None:
            emulator = self._prepare_emulator(load_image(self.image))
            self._emulator = emulator
            self._entry_snapshot = emulator.snapshot()
            self._entry_symbol = self.function
        self._emulator.restore(self._entry_snapshot)
        self._emulator.pre_hooks = []
        self.stats.entry_restores += 1
        return self._emulator

    def _prepare_emulator(self, program: LoadedProgram) -> Emulator:
        """Build an emulator positioned at the attacked function's entry:
        stack pointers set, return-to-exit sentinel pushed, ``rip`` at the
        symbol — the one entry-context recipe both execution paths share."""
        emulator = Emulator(program.memory, host=HostEnvironment(),
                            max_steps=self.max_instructions)
        emulator.state.write_reg(Register.RSP, program.stack_top)
        emulator.state.write_reg(Register.RBP, program.stack_top)
        emulator.push(EXIT_ADDRESS)
        emulator.state.rip = self.image.function(self.function).address
        self._heap_base = program.heap_base
        return emulator

    def _legacy_emulator(self) -> Emulator:
        """The pre-snapshot path: COW-fork the image and build an emulator."""
        if self._pristine is None:
            self._pristine = load_image(self.image)
        return self._prepare_emulator(self._pristine.fork())


#: image -> pristine ``(memory, stack_top, heap_base)`` triple, so repeated
#: measurements of the same image (overhead sweeps, probe sampling rounds)
#: load it once and fork COW per run like the attack engines.  Weak keys —
#: and the cached value deliberately omits the :class:`LoadedProgram` image
#: back-reference — so a preload never outlives the image it maps.
_PRELOADED = WeakKeyDictionary()


def preloaded_fork(image: BinaryImage) -> LoadedProgram:
    """Fork a cached pristine load of ``image`` copy-on-write.

    The first call for an image pays :func:`load_image`; every later one
    forks the cached pristine memory in O(regions).  Forks are never mutated
    back into the preload, so the cache stays pristine.
    """
    cached = _PRELOADED.get(image)
    if cached is None:
        pristine = load_image(image)
        cached = (pristine.memory, pristine.stack_top, pristine.heap_base)
        _PRELOADED[image] = cached
    memory, stack_top, heap_base = cached
    return LoadedProgram(image=image, memory=memory.snapshot(),
                         stack_top=stack_top, heap_base=heap_base)
