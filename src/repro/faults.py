"""Deterministic fault injection for the multiprocessing execution layers.

The fault-tolerance machinery in :mod:`repro.evaluation.parallel` (the grid
worker pool) and :mod:`repro.attacks.frontier` (the distributed DSE
frontier) recovers from crashed workers, hung units and poisoned cells.
Recovery code that is only ever exercised by accident is broken by default,
so this module provides the harness that provokes every failure mode on
purpose — the fault-tolerance tests and the CI fault-injection grid leg
drive each recovery path deliberately instead of hoping for it.

``REPRO_FAULT_INJECT`` is a comma-separated list of directives
``index:mode[:count]``:

* ``index`` — the dispatch sequence number the fault targets.  The grid
  pool numbers units globally across the pool's lifetime in enqueue order
  (so the index is deterministic regardless of which worker claims what);
  the DSE frontier numbers dispatched executions in dispatch order.
* ``mode`` — ``raise`` (the unit errors), ``hang`` (the worker sleeps past
  any deadline, provoking the ``REPRO_UNIT_TIMEOUT`` kill), ``exit0`` (the
  worker exits *cleanly* mid-unit — the liveness case an exit-code filter
  misses), ``kill`` (SIGKILL to self, an OOM-kill stand-in) or ``slow:ms``
  (a deterministic delay of ``ms`` milliseconds before the unit runs
  normally — the probe for deadline/backoff *boundary* behavior, where an
  infinite ``hang`` cannot distinguish "finishes just under the deadline"
  from "just over" without flaky wall-clock races).
* ``count`` — how many attempts of that unit to sabotage: an integer
  (default 1, i.e. only the first attempt fails and the retry succeeds) or
  ``always`` (every attempt fails, so retries exhaust and the unit is
  quarantined).  For ``slow`` the directive is ``index:slow:ms[:count]``;
  the delay occupies the third field and the count moves to the fourth.

Malformed directives are ignored — an operator typo in the environment must
never crash a worker that would otherwise run fine.

This module is also the home of the fault-tolerance knobs both pools share:

* ``REPRO_UNIT_TIMEOUT`` — per-unit wall-clock deadline in seconds; a
  worker whose claimed unit exceeds it is killed and the unit retried.
  Unset, empty or ``<= 0`` disables the deadline (the default).
* ``REPRO_UNIT_RETRIES`` — how many times a failed/timed-out/orphaned unit
  is retried before being quarantined (default 2).
"""

from __future__ import annotations

import math
import os
import signal
import time
from typing import Dict, Optional, Tuple

from repro import knobs

#: Recognized fault modes, in the order the docstring describes them.
FAULT_MODES = ("raise", "hang", "exit0", "kill", "slow")

#: How long a ``hang`` fault sleeps — far past any plausible unit deadline.
_HANG_SECONDS = 3600.0


class InjectedFault(RuntimeError):
    """The error raised by an injected ``raise`` fault."""


def parse_fault_spec(spec: Optional[str] = None) -> Dict[int, Tuple[str, float]]:
    """Parse a ``REPRO_FAULT_INJECT`` value into ``{index: (mode, count)}``.

    ``spec`` defaults to the environment variable; malformed directives are
    skipped silently (see module docstring).
    """
    if spec is None:
        spec = knobs.raw("REPRO_FAULT_INJECT", "") or ""
    directives: Dict[int, Tuple[str, float]] = {}
    for field in spec.split(","):
        parts = [part.strip() for part in field.strip().split(":")]
        if len(parts) < 2:
            continue
        try:
            index = int(parts[0])
        except ValueError:
            continue
        mode = parts[1]
        if mode not in FAULT_MODES:
            continue
        if mode == "slow":
            # index:slow:ms[:count] — the delay occupies the count's slot
            if len(parts) not in (3, 4):
                continue
            try:
                delay_ms = int(parts[2])
            except ValueError:
                continue
            if delay_ms < 0:
                continue
            mode = f"slow:{delay_ms}"
            count_field = parts[3] if len(parts) == 4 else None
        else:
            if len(parts) not in (2, 3):
                continue
            count_field = parts[2] if len(parts) == 3 else None
        count = 1.0
        if count_field is not None:
            if count_field == "always":
                count = math.inf
            else:
                try:
                    count = float(int(count_field))
                except ValueError:
                    continue
        directives[index] = (mode, count)
    return directives


def inject_fault(index: int, attempt: int = 0,
                 spec: Optional[Dict[int, Tuple[str, float]]] = None,
                 inline: bool = False) -> None:
    """Fire the configured fault for ``(index, attempt)``, if any.

    Called by the worker loops right after claiming a unit (so the parent
    already knows which unit the dying worker held).  ``inline`` marks
    in-process (non-forked) execution, where only ``raise`` and ``slow``
    are honoured — ``exit0``/``kill``/``hang`` would take down or stall
    the driver itself.
    """
    directives = parse_fault_spec() if spec is None else spec
    directive = directives.get(index)
    if directive is None:
        return
    mode, count = directive
    if attempt >= count:
        return
    if mode.startswith("slow:"):
        time.sleep(int(mode.split(":", 1)[1]) / 1000.0)
        return
    if inline and mode != "raise":
        return
    if mode == "raise":
        raise InjectedFault(f"injected fault at unit {index} "
                            f"(attempt {attempt})")
    if mode == "hang":
        time.sleep(_HANG_SECONDS)
        # only reachable when no deadline killed us — surface that loudly
        raise InjectedFault(f"injected hang at unit {index} outlived the "
                            f"deadline (attempt {attempt})")
    if mode == "exit0":
        os._exit(0)
    if mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)


def unit_timeout() -> Optional[float]:
    """Resolve ``REPRO_UNIT_TIMEOUT`` (seconds; ``None`` = no deadline)."""
    return knobs.optional_seconds("REPRO_UNIT_TIMEOUT")


def unit_retries() -> int:
    """Resolve ``REPRO_UNIT_RETRIES`` (default 2)."""
    return knobs.nonneg_int("REPRO_UNIT_RETRIES")
