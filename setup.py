"""Setup shim so the package installs offline (no wheel package available)."""
from setuptools import setup

setup()
