"""Figure 1: a hand-built ROP chain with a non-linear control flow.

The chain assigns RDI = 1 when RAX == 0 and RDI = 2 otherwise, using the
neg/adc carry-leak idiom and a masked RSP displacement — the exact encoding
the paper uses to introduce ROP branches.

Run with ``python examples/figure1_branch_chain.py``.
"""

from repro.binary import BinaryImage, load_image
from repro.cpu import Emulator
from repro.cpu.host import EXIT_ADDRESS
from repro.isa import Imm, Reg, assemble
from repro.isa.instructions import make
from repro.isa.registers import Register


def add_gadget(image, instructions) -> int:
    """Append a gadget (instructions + ret) to .text and return its address."""
    code, _ = assemble(list(instructions) + [make("ret")],
                       base_address=image.text.end if image.text.size else image.text.address)
    return image.text.append(code)


def main() -> None:
    image = BinaryImage("figure1")
    pop_rcx = add_gadget(image, [make("pop", Reg(Register.RCX))])
    neg_rax = add_gadget(image, [make("neg", Reg(Register.RAX))])
    adc = add_gadget(image, [make("adc", Reg(Register.RCX), Reg(Register.RCX))])
    neg_rcx = add_gadget(image, [make("neg", Reg(Register.RCX))])
    pop_rsi = add_gadget(image, [make("pop", Reg(Register.RSI))])
    and_rsi_rcx = add_gadget(image, [make("and", Reg(Register.RSI), Reg(Register.RCX))])
    add_rsp_rsi = add_gadget(image, [make("add", Reg(Register.RSP), Reg(Register.RSI))])
    pop_rdi = add_gadget(image, [make("pop", Reg(Register.RDI))])
    pop_rsi_rbp = add_gadget(image, [make("pop", Reg(Register.RSI)), make("pop", Reg(Register.RBP))])

    def run(rax: int) -> int:
        program = load_image(image)
        emulator = Emulator(program.memory)
        # chain layout mirrors Figure 1: the "taken" displacement skips the
        # RDI=1 segment (0x18 bytes = pop_rdi + imm + disposal gadget)
        chain = [
            pop_rcx, 0,              # rcx = 0
            neg_rax,                 # CF = (rax != 0)
            adc,                     # rcx = CF
            neg_rcx,                 # rcx = 0 or 0xffff...ffff (mask)
            pop_rsi, 0x18,           # candidate displacement (3 slots)
            and_rsi_rcx,             # rsi = 0x18 if rax != 0 else 0
            add_rsp_rsi,             # the ROP branch
            pop_rdi, 1,              # fall-through: rdi = 1
            pop_rsi_rbp,             # ... then dispose of the 0x10-byte alternative
            pop_rdi, 2,              # taken path: rdi = 2 (junk for the fall-through)
            EXIT_ADDRESS,
        ]
        base = program.stack_top - 0x400
        for index, value in enumerate(chain):
            program.memory.write_int(base + 8 * index, value, 8)
        emulator.state.write_reg(Register.RAX, rax)
        emulator.state.write_reg(Register.RSP, base)
        emulator.state.rip = emulator.pop()
        emulator.run()
        return emulator.state.read_reg(Register.RDI)

    for rax in (0, 7):
        rdi = run(rax)
        print(f"RAX = {rax} -> RDI = {rdi}")
        assert rdi == (1 if rax == 0 else 2)
    print("Figure 1 chain behaves as in the paper")


if __name__ == "__main__":
    main()
