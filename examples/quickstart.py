"""Quickstart: compile a mini-C function, ROP-obfuscate it, run both versions.

Run with ``python examples/quickstart.py``.
"""

from repro.binary import load_image
from repro.compiler import compile_program
from repro.core import RopConfig, rop_obfuscate
from repro.cpu import call_function
from repro.lang import Assign, BinOp, Const, Function, If, Program, Return, Var, While


def build_program() -> Program:
    """A small checksum routine: the kind of function a vendor would protect."""
    return Program([Function("checksum", ["value", "rounds"], [
        Assign("state", Const(0x1337)),
        Assign("i", Const(0)),
        While(BinOp("<", Var("i"), Var("rounds")), [
            Assign("state", BinOp("^", BinOp("*", Var("state"), Const(31)),
                                  BinOp("+", Var("value"), Var("i")))),
            Assign("i", BinOp("+", Var("i"), Const(1))),
        ]),
        If(BinOp("==", BinOp("&", Var("state"), Const(0xFF)), Const(0x42)),
           [Return(Const(1))],
           [Return(BinOp("&", Var("state"), Const(0xFFFF)))]),
    ])])


def main() -> None:
    program = build_program()
    image = compile_program(program)
    print("== native binary ==")
    print(image.summary())
    native_result, native_emulator = call_function(load_image(image), "checksum", [7, 9])
    print(f"checksum(7, 9) = {native_result:#x} in {native_emulator.steps} instructions")

    config = RopConfig.ropk(0.5)  # all predicates on, P3 at half the program points
    obfuscated, report = rop_obfuscate(image, ["checksum"], config)
    result = report.results[0]
    print("\n== ROP-obfuscated binary ==")
    print(obfuscated.summary())
    print(f"rewritten: {result.success}, program points: {result.program_points}, "
          f"gadgets: {result.total_gadgets} ({result.gadgets_per_point:.1f} per point), "
          f"chain: {result.chain_bytes} bytes")

    rop_result, rop_emulator = call_function(load_image(obfuscated), "checksum", [7, 9],
                                             max_steps=10_000_000)
    print(f"checksum(7, 9) = {rop_result:#x} in {rop_emulator.steps} instructions "
          f"({rop_emulator.steps / native_emulator.steps:.1f}x slowdown)")
    assert rop_result == native_result, "obfuscation must preserve behaviour"
    print("\nfunctional equivalence verified")


if __name__ == "__main__":
    main()
