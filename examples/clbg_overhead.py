"""Run one CLBG benchmark under several protections and compare their cost.

This is the Figure 5 experiment at single-benchmark scale, plus the VM
configurations of the paper's overhead discussion.

Run with ``python examples/clbg_overhead.py [benchmark]`` (default: fasta).
"""

import sys

from repro.binary import load_image
from repro.compiler import compile_program
from repro.cpu import call_function
from repro.evaluation.configurations import apply_configuration, nvm, ropk
from repro.workloads.clbg import CLBG_BENCHMARKS, build_clbg_program


def measure(image, entry: str, argument: int) -> tuple:
    result, emulator = call_function(load_image(image), entry, [argument],
                                     max_steps=200_000_000)
    return result, emulator.steps


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "fasta"
    if name not in CLBG_BENCHMARKS:
        raise SystemExit(f"unknown benchmark {name!r}; choose from {sorted(CLBG_BENCHMARKS)}")
    program, entry, argument, targets = build_clbg_program(name)

    native_image = compile_program(program)
    native_result, native_steps = measure(native_image, entry, argument)
    print(f"{name}: native result={native_result} instructions={native_steps}")

    for configuration in (ropk(0.05), ropk(0.50), ropk(1.00), nvm(2, "last")):
        image = apply_configuration(program, targets, configuration)
        result, steps = measure(image, entry, argument)
        assert result == native_result, f"{configuration.name} changed the result"
        print(f"{name}: {configuration.name:<12} result={result} "
              f"instructions={steps} ({steps / native_steps:.2f}x)")


if __name__ == "__main__":
    main()
