"""Code coverage (G2): exercise all paths of a protected parser dispatch.

The attacker's goal here is not a secret but full path coverage of the
original code (e.g. to collect traces for later analysis).  The script runs
the same CUPA-driven DSE attack against the native binary and against ROP
configurations of increasing strength and reports how much of the reachable
code each attempt covered.

Run with ``python examples/coverage_attack.py``.
"""

from repro.attacks import AttackBudget, coverage_attack
from repro.attacks.dse import InputSpec
from repro.binary import load_image
from repro.compiler import compile_program
from repro.core import RopConfig, rop_obfuscate
from repro.cpu import call_function
from repro.lang import (
    Assign,
    BinOp,
    Const,
    Function,
    If,
    Probe,
    Program,
    Return,
    Switch,
    Var,
)


def command_dispatcher() -> Program:
    """A message dispatcher with several probed handlers (split/join points)."""
    return Program([Function("dispatch", ["message"], [
        Probe(1),
        Assign("opcode", BinOp("&", Var("message"), Const(0x0F))),
        Assign("flags", BinOp("&", BinOp(">>", Var("message"), Const(4)), Const(0x0F))),
        Switch(Var("opcode"), {
            1: [Probe(10), Assign("r", Const(100))],
            2: [Probe(20),
                If(BinOp(">", Var("flags"), Const(7)),
                   [Probe(21), Assign("r", Const(210))],
                   [Probe(22), Assign("r", Const(220))])],
            3: [Probe(30), Assign("r", BinOp("+", Const(300), Var("flags")))],
        }, default=[Probe(99), Assign("r", Const(0))]),
        Probe(2),
        Return(Var("r")),
    ])])


def reachable_probes(image) -> set:
    probes = set()
    for sample in range(256):
        _, emulator = call_function(load_image(image), "dispatch", [sample],
                                    max_steps=2_000_000)
        probes |= set(emulator.host.probes)
    return probes


def main() -> None:
    program = command_dispatcher()
    native = compile_program(program)
    target = reachable_probes(native)
    print(f"reachable coverage points: {sorted(target)}")
    budget = AttackBudget(seconds=6.0, max_executions=200)

    for label, image in [
        ("native", native),
        ("ROP k=0 (P1/P2 only)", rop_obfuscate(native, ["dispatch"], RopConfig.ropk(0.0))[0]),
        ("ROP k=1.0", rop_obfuscate(native, ["dispatch"], RopConfig.ropk(1.0))[0]),
    ]:
        outcome = coverage_attack(image, "dispatch", target,
                                  InputSpec(argument_sizes=[1]), budget)
        covered = len(outcome.covered_probes & target)
        status = "FULL" if outcome.success else "partial"
        print(f"{label:>22}: {status} coverage {covered}/{len(target)} "
              f"after {outcome.executions} executions "
              f"({outcome.instructions} instructions, {outcome.paths} paths)")


if __name__ == "__main__":
    main()
