"""Secret finding (G1): attack a license check, native vs ROP-obfuscated.

Reproduces the paper's core claim at example scale: the same DSE attack that
cracks the native check in a handful of executions needs far more work (or
fails within the budget) once the check is a hardened ROP chain.

Run with ``python examples/license_check_attack.py``.
"""

from repro.attacks import AttackBudget, secret_finding_attack
from repro.attacks.dse import InputSpec
from repro.compiler import compile_program
from repro.core import RopConfig, rop_obfuscate
from repro.lang import Assign, BinOp, Const, Function, If, Program, Return, Var, While


def license_check() -> Program:
    """Accepts exactly the serials whose mixed hash ends in 0xA7."""
    return Program([Function("validate", ["serial"], [
        Assign("h", Const(0x9E37)),
        Assign("i", Const(0)),
        While(BinOp("<", Var("i"), Const(4)), [
            Assign("h", BinOp("^", BinOp("*", Var("h"), Const(33)),
                              BinOp(">>", Var("serial"), Var("i")))),
            Assign("i", BinOp("+", Var("i"), Const(1))),
        ]),
        If(BinOp("==", BinOp("&", Var("h"), Const(0xFF)), Const(0xA7)),
           [Return(Const(1))], [Return(Const(0))]),
    ])])


def attack(image, label: str) -> None:
    budget = AttackBudget(seconds=5.0, max_executions=150)
    outcome = secret_finding_attack(image, "validate", InputSpec(argument_sizes=[2]),
                                    budget)
    status = "RECOVERED" if outcome.success else "not found"
    print(f"{label:>22}: secret {status} | executions={outcome.executions} "
          f"instructions={outcome.instructions} solver_queries={outcome.solver_queries} "
          f"time={outcome.time_to_success:.2f}s")
    if outcome.witness:
        print(f"{'':>22}  witness input: {outcome.witness}")


def main() -> None:
    program = license_check()
    native = compile_program(program)
    attack(native, "native")

    for k in (0.0, 0.5, 1.0):
        obfuscated, report = rop_obfuscate(native, ["validate"], RopConfig.ropk(k))
        assert report.coverage == 1.0
        attack(obfuscated, f"ROP k={k:.2f}")


if __name__ == "__main__":
    main()
