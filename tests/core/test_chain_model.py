"""Unit and property tests for the chain model, memory and predicates' data."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.chain import (
    Chain,
    ChainError,
    ChainLabel,
    DeltaSlot,
    DisguiseBaseSlot,
    DisguisedSlot,
    GadgetSlot,
    JunkSlot,
    RawPadding,
    ValueSlot,
)
from repro.core.config import RopConfig
from repro.core.predicates.p1_array import OpaqueArray
from repro.gadgets.gadget import Gadget
from repro.isa.instructions import make
from repro.memory import Memory, MemoryError_


def _gadget(address):
    return Gadget(address=address, instructions=[make("ret")], kind="ret")


# -- chain materialization ---------------------------------------------------------
def test_chain_layout_and_delta_resolution():
    chain = Chain("t")
    chain.append(GadgetSlot(_gadget(0x400100)))
    chain.append(ValueSlot(7))
    chain.label("anchor")
    chain.append(JunkSlot())
    chain.label("target")
    chain.append(GadgetSlot(_gadget(0x400200)))
    chain.elements.insert(1, ChainLabel("unused"))
    materialized = chain.materialize(0x680000)
    # the delta from anchor (after slot 1) to target (after slot 2) is 8 bytes
    delta = DeltaSlot(target="target", anchor="anchor")
    chain2 = Chain("t2")
    chain2.extend([GadgetSlot(_gadget(0x400100)), delta])
    chain2.label("anchor")
    chain2.append(JunkSlot())
    chain2.label("target")
    m2 = chain2.materialize(0x680000)
    resolved = int.from_bytes(m2.data[8:16], "little")
    assert resolved == 8
    assert materialized.slot_count == 4


def test_chain_negative_delta_wraps_two_complement():
    chain = Chain("t")
    chain.label("target")
    chain.append(GadgetSlot(_gadget(0x400100)))
    chain.append(DeltaSlot(target="target", anchor="anchor", subtract=0))
    chain.label("anchor")
    materialized = chain.materialize(0x680000)
    resolved = int.from_bytes(materialized.data[8:16], "little")
    assert resolved == (-16) & ((1 << 64) - 1)


def test_chain_duplicate_label_rejected():
    chain = Chain("t")
    chain.label("x")
    chain.label("x")
    with pytest.raises(ChainError):
        chain.materialize(0x680000)


def test_chain_unresolved_delta_rejected():
    chain = Chain("t")
    chain.append(DeltaSlot(target="nowhere", anchor="alsonowhere"))
    with pytest.raises(ChainError):
        chain.materialize(0x680000)


def test_disguised_slots_sum_back_to_value():
    chain = Chain("t")
    chain.append(DisguisedSlot(ValueSlot(0x1234), pair=1))
    chain.append(DisguiseBaseSlot(pair=1))
    materialized = chain.materialize(0x680000, rng=random.Random(1),
                                     gadget_addresses=[0x400500, 0x400600])
    disguised = int.from_bytes(materialized.data[0:8], "little")
    base = int.from_bytes(materialized.data[8:16], "little")
    assert (disguised - base) & ((1 << 64) - 1) == 0x1234
    assert base in (0x400500, 0x400600)


def test_raw_padding_misaligns_following_slots():
    chain = Chain("t")
    chain.append(GadgetSlot(_gadget(0x400100)))
    chain.append(RawPadding(3))
    chain.label("after")
    chain.append(ValueSlot(1))
    materialized = chain.materialize(0x680000)
    assert materialized.label_addresses["after"] % 8 == 3
    assert len(materialized.data) == 8 + 3 + 8


@settings(max_examples=40, deadline=None)
@given(values=st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1),
                       min_size=1, max_size=20))
def test_value_slots_roundtrip_property(values):
    chain = Chain("p")
    for value in values:
        chain.append(ValueSlot(value))
    materialized = chain.materialize(0x680000)
    for index, value in enumerate(values):
        assert int.from_bytes(materialized.data[8 * index:8 * index + 8], "little") == value


# -- P1 opaque array ----------------------------------------------------------------
def test_opaque_array_periodic_invariant_holds():
    config = RopConfig()
    array = OpaqueArray(config, random.Random(3))
    for repetition in range(config.p1_repetitions):
        for branch in range(config.p1_branches):
            cell = array.cells[repetition * config.p1_period + branch]
            assert cell % config.p1_modulus == array.fixed_part(branch)


def test_opaque_array_cells_look_random():
    array = OpaqueArray(RopConfig(), random.Random(4))
    assert len(set(array.cells)) > len(array.cells) // 2
    assert len(array.data()) == array.size


# -- memory ---------------------------------------------------------------------------
def test_memory_rejects_overlapping_regions():
    memory = Memory()
    memory.map("a", 0x1000, 0x100)
    with pytest.raises(MemoryError_):
        memory.map("b", 0x1080, 0x100)


def test_memory_rejects_unmapped_and_readonly_access():
    memory = Memory()
    memory.map("ro", 0x1000, 0x10, writable=False)
    with pytest.raises(MemoryError_):
        memory.read(0x2000, 4)
    with pytest.raises(MemoryError_):
        memory.write(0x1000, b"x")


@settings(max_examples=50, deadline=None)
@given(value=st.integers(min_value=0, max_value=(1 << 64) - 1),
       size=st.sampled_from([1, 2, 4, 8]))
def test_memory_int_roundtrip_property(value, size):
    memory = Memory()
    memory.map("data", 0x1000, 0x40)
    memory.write_int(0x1010, value, size)
    assert memory.read_int(0x1010, size) == value & ((1 << (8 * size)) - 1)
