"""Functional-equivalence tests: rewritten functions behave like the originals."""

import pytest

from repro.binary import load_image
from repro.compiler import compile_program
from repro.core import RopConfig, rop_obfuscate
from repro.cpu import call_function
from repro.lang import (
    Assign,
    BinOp,
    Call,
    Const,
    Function,
    GlobalArray,
    If,
    Load,
    Probe,
    Program,
    Return,
    Store,
    Var,
    While,
)


def run_both(program_ast, function, args, config=None, max_steps=6_000_000):
    """Run a function natively and ROP-rewritten and return both results."""
    image = compile_program(program_ast)
    native, _ = call_function(load_image(image), function, args, max_steps=max_steps)
    config = config or RopConfig.ropk(0.0)
    obfuscated, report = rop_obfuscate(image, [function], config)
    assert report.coverage == 1.0, report.failure_categories()
    rewritten, emulator = call_function(load_image(obfuscated), function, args,
                                        max_steps=max_steps)
    return native, rewritten, emulator


SIMPLE_ADD = Program([Function("f", ["a", "b"], [Return(BinOp("+", Var("a"), Var("b")))])])

BRANCHY = Program([Function("f", ["x"], [
    If(BinOp("==", Var("x"), Const(0)), [Return(Const(1))], [Return(Const(2))]),
])])

LOOPY = Program([Function("f", ["n"], [
    Assign("i", Const(0)),
    Assign("acc", Const(0)),
    While(BinOp("<", Var("i"), Var("n")), [
        Assign("acc", BinOp("+", Var("acc"), Var("i"))),
        Assign("i", BinOp("+", Var("i"), Const(1))),
    ]),
    Return(Var("acc")),
])])


def test_plain_rop_preserves_simple_arithmetic():
    native, rewritten, _ = run_both(SIMPLE_ADD, "f", [20, 22], RopConfig.plain())
    assert native == rewritten == 42


def test_plain_rop_preserves_branches():
    for arg in (0, 5):
        native, rewritten, _ = run_both(BRANCHY, "f", [arg], RopConfig.plain())
        assert native == rewritten


def test_plain_rop_preserves_loops():
    native, rewritten, _ = run_both(LOOPY, "f", [10], RopConfig.plain())
    assert native == rewritten == 45


def test_full_predicates_preserve_behaviour():
    config = RopConfig.ropk(0.5)
    for arg in (0, 3, 17):
        native, rewritten, _ = run_both(BRANCHY, "f", [arg], config)
        assert native == rewritten
    native, rewritten, _ = run_both(LOOPY, "f", [9], config)
    assert native == rewritten == 36


def test_rop_function_calling_host_function():
    program = Program([Function("f", ["x"], [
        Assign("p", Call("malloc", [Const(16)])),
        Store(Var("p"), Var("x"), 8),
        Return(Load(Var("p"), 8)),
    ])])
    native, rewritten, _ = run_both(program, "f", [77], RopConfig.ropk(0.25))
    assert native == rewritten == 77


def test_rop_function_calling_rop_function():
    program = Program([
        Function("square", ["x"], [Return(BinOp("*", Var("x"), Var("x")))]),
        Function("f", ["x"], [
            Assign("s", Call("square", [Var("x")])),
            Return(BinOp("+", Var("s"), Const(1))),
        ]),
    ])
    image = compile_program(program)
    native, _ = call_function(load_image(image), "f", [6])
    obfuscated, report = rop_obfuscate(image, ["f", "square"], RopConfig.ropk(0.25))
    assert report.coverage == 1.0, report.failure_categories()
    rewritten, _ = call_function(load_image(obfuscated), "f", [6], max_steps=6_000_000)
    assert native == rewritten == 37


def test_recursive_rop_function():
    program = Program([Function("fact", ["n"], [
        If(BinOp("<=", Var("n"), Const(1)), [Return(Const(1))]),
        Return(BinOp("*", Var("n"), Call("fact", [BinOp("-", Var("n"), Const(1))]))),
    ])])
    image = compile_program(program)
    obfuscated, report = rop_obfuscate(image, ["fact"], RopConfig.ropk(0.1))
    assert report.coverage == 1.0
    result, _ = call_function(load_image(obfuscated), "fact", [8], max_steps=6_000_000)
    assert result == 40320


def test_probes_survive_rewriting():
    program = Program([Function("f", ["x"], [
        Probe(1),
        If(BinOp(">", Var("x"), Const(5)), [Probe(2)], [Probe(3)]),
        Return(Const(0)),
    ])])
    _, _, emulator = run_both(program, "f", [9], RopConfig.ropk(0.5))
    assert emulator.host.probes == [1, 2]
    _, _, emulator = run_both(program, "f", [1], RopConfig.ropk(0.5))
    assert emulator.host.probes == [1, 3]


def test_global_data_accessible_from_chain():
    table = GlobalArray("table", 16, initial=bytes([9, 8, 7, 6]))
    program = Program(
        [Function("f", ["i"], [Return(Load(BinOp("+", Var("table"), Var("i")), 1))])],
        globals=[table],
    )
    native, rewritten, _ = run_both(program, "f", [2], RopConfig.ropk(0.25))
    assert native == rewritten == 7


def test_original_body_is_replaced():
    image = compile_program(BRANCHY)
    original = image.function_bytes("f")
    obfuscated, _ = rop_obfuscate(image, ["f"], RopConfig.plain())
    assert obfuscated.function_bytes("f") != original
    assert obfuscated.ropchains.size > 0


def test_report_statistics_are_populated():
    image = compile_program(LOOPY)
    _, report = rop_obfuscate(image, ["f"], RopConfig.ropk(1.0))
    result = report.results[0]
    assert result.success
    assert result.program_points > 0
    assert result.total_gadgets > result.program_points
    assert 0 < result.unique_gadgets <= result.total_gadgets
    assert result.gadgets_per_point > 1.0


def test_too_small_function_is_skipped():
    # a function made only of a return is smaller than the pivot stub
    tiny = Program([Function("f", [], [Return(Const(1))])])
    image = compile_program(tiny)
    symbol = image.function("f")
    if symbol.size >= 60:
        pytest.skip("tiny function unexpectedly large")
    _, report = rop_obfuscate(image, ["f"], RopConfig.plain())
    assert report.coverage == 0.0
    assert "smaller than pivot stub" in report.results[0].reason


def test_deterministic_output_for_same_seed():
    image = compile_program(LOOPY)
    a, _ = rop_obfuscate(image, ["f"], RopConfig(seed=7, p3_fraction=0.5))
    b, _ = rop_obfuscate(image, ["f"], RopConfig(seed=7, p3_fraction=0.5))
    assert bytes(a.ropchains.data) == bytes(b.ropchains.data)


def test_different_seeds_diversify_chains():
    image = compile_program(LOOPY)
    a, _ = rop_obfuscate(image, ["f"], RopConfig(seed=1))
    b, _ = rop_obfuscate(image, ["f"], RopConfig(seed=2))
    assert bytes(a.ropchains.data) != bytes(b.ropchains.data)
