"""Opaque-constant materialization and instruction hiding (+OC / +IH).

Covers the chain model's self-materializing slots, every protection
profile's functional equivalence, the per-function profile mapping, the
read-only-chain fallback, and the stable-range metadata the attack side
relies on.
"""

import random

import pytest

from repro.binary import load_image
from repro.compiler import compile_program
from repro.core import (PROTECTION_PROFILES, ProtectionProfile, RopConfig,
                        rop_obfuscate)
from repro.core.chain import Chain, LabelAddressSlot, OpaqueGadgetSlot
from repro.cpu import call_function
from repro.gadgets.gadget import Gadget
from tests.core.test_rewriter import BRANCHY, LOOPY, run_both


# -- chain model ------------------------------------------------------------

def _gadget(address):
    return Gadget(address=address, instructions=[], kind="ret")


def test_label_address_slot_resolves_to_chain_address():
    chain = Chain("f")
    chain.append(LabelAddressSlot("slot"))
    chain.label("slot")
    chain.append(OpaqueGadgetSlot(_gadget(0x401000)))
    done = chain.materialize(0x7000, rng=random.Random(1))
    stored = int.from_bytes(done.data[:8], "little")
    assert stored == done.label_addresses["slot"] == 0x7008


def test_opaque_gadget_slot_hides_the_address():
    chain = Chain("f")
    chain.append(OpaqueGadgetSlot(_gadget(0x401000)))
    done = chain.materialize(0x7000, rng=random.Random(1))
    assert int.from_bytes(done.data[:8], "little") != 0x401000
    # but Table III statistics still count it as a dispatched gadget
    assert len(chain.gadget_slots()) == 1


def test_opaque_gadget_slot_bytes_are_seeded_junk():
    chain_a, chain_b = Chain("f"), Chain("f")
    for chain in (chain_a, chain_b):
        chain.append(OpaqueGadgetSlot(_gadget(0x401000)))
    assert (chain_a.materialize(0x7000, rng=random.Random(3)).data
            == chain_b.materialize(0x7000, rng=random.Random(3)).data)


# -- protection profiles on the rewriter ------------------------------------

@pytest.mark.parametrize("profile", sorted(PROTECTION_PROFILES))
def test_profiles_preserve_behaviour_at_rop100(profile):
    config = PROTECTION_PROFILES[profile].apply(RopConfig.ropk(1.0))
    native, rewritten, _ = run_both(LOOPY, "f", [9], config)
    assert native == rewritten == 36
    for arg in (0, 3):
        native, rewritten, _ = run_both(BRANCHY, "f", [arg], config)
        assert native == rewritten


def test_layer_statistics_are_reported():
    image = compile_program(LOOPY)
    config = PROTECTION_PROFILES["full"].apply(RopConfig.ropk(1.0))
    _, report = rop_obfuscate(image, ["f"], config)
    result = report.results[0]
    assert result.success
    assert result.opaque_slots > 0
    assert result.hidden_instances > 0
    # the baseline profile reports zeros for both
    _, baseline = rop_obfuscate(compile_program(LOOPY), ["f"],
                                RopConfig.ropk(1.0))
    assert baseline.results[0].opaque_slots == 0
    assert baseline.results[0].hidden_instances == 0


def test_read_only_chains_disable_self_materializing_slots():
    image = compile_program(LOOPY)
    config = PROTECTION_PROFILES["opaque"].apply(
        RopConfig(p3_fraction=1.0, read_only_chains=True))
    obfuscated, report = rop_obfuscate(image, ["f"], config)
    assert report.coverage == 1.0
    result, _ = call_function(load_image(obfuscated), "f", [9],
                              max_steps=6_000_000)
    assert result == 36


def test_per_function_profiles():
    from repro.lang import BinOp, Call, Function, Program, Return, Var

    program = Program([
        Function("square", ["x"], [Return(BinOp("*", Var("x"), Var("x")))]),
        Function("f", ["x"], [Return(BinOp("+", Call("square", [Var("x")]),
                                           Var("x")))]),
    ])
    image = compile_program(program)
    obfuscated, report = rop_obfuscate(
        image, ["f", "square"], RopConfig.ropk(0.5),
        profiles={"square": "full"})
    assert report.coverage == 1.0
    by_name = {r.name: r for r in report.results}
    assert by_name["square"].opaque_slots > 0
    assert by_name["f"].opaque_slots == 0
    result, _ = call_function(load_image(obfuscated), "f", [6],
                              max_steps=6_000_000)
    assert result == 42


def test_profile_objects_are_accepted_too():
    image = compile_program(BRANCHY)
    custom = ProtectionProfile(name="custom", suffix="+OC",
                               opaque_constants=True, opaque_fraction=1.0)
    _, report = rop_obfuscate(image, ["f"], RopConfig.ropk(0.5),
                              profiles={"f": custom})
    assert report.results[0].opaque_slots > 0


def test_stable_ranges_recorded_when_array_is_runtime_constant():
    image = compile_program(LOOPY)
    config = PROTECTION_PROFILES["full"].apply(RopConfig.ropk(1.0))
    obfuscated, _ = rop_obfuscate(image, ["f"], config)
    ranges = obfuscated.metadata.get("rop_stable_ranges", [])
    assert len(ranges) == 1
    start, end = ranges[0]
    assert end > start
    # profiles pin P3 to the loop variant so the array stays constant
    assert config.p3_variant == "loop"


def test_stable_ranges_not_recorded_when_chain_updates_the_array():
    image = compile_program(LOOPY)
    # plain ROPk keeps the mixed P3 variant, whose array updates write the
    # opaque array at run time — no stability promise may be recorded
    obfuscated, _ = rop_obfuscate(image, ["f"],
                                  RopConfig(p3_fraction=1.0, p3_variant="array"))
    assert obfuscated.metadata.get("rop_stable_ranges", []) == []


def test_existing_configs_unchanged_by_the_layer_machinery():
    # layers draw their randomness only when enabled: a plain ROPk chain is
    # byte-identical whether or not the layer fields exist in the config
    image = compile_program(LOOPY)
    a, _ = rop_obfuscate(image, ["f"], RopConfig(seed=7, p3_fraction=0.5))
    b, _ = rop_obfuscate(image, ["f"], RopConfig(
        seed=7, p3_fraction=0.5, opaque_constants=False,
        instruction_hiding=False))
    assert bytes(a.ropchains.data) == bytes(b.ropchains.data)


def test_profiles_are_deterministic_per_seed():
    image = compile_program(LOOPY)
    config = PROTECTION_PROFILES["full"].apply(RopConfig.ropk(1.0, seed=5))
    a, _ = rop_obfuscate(image, ["f"], config)
    b, _ = rop_obfuscate(image, ["f"], config)
    assert bytes(a.ropchains.data) == bytes(b.ropchains.data)
