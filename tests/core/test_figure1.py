"""Figure 1: the canonical branching ROP chain, built by hand and executed.

Also covers the Figure 3/4 mechanics at unit level: the pivot stub size used
as the rewriting threshold and the stack-switching array bookkeeping.
"""

from repro.binary import BinaryImage, load_image
from repro.compiler import compile_program
from repro.core import RopConfig, rop_obfuscate
from repro.core.materialization import pivot_stub_size
from repro.cpu import Emulator, call_function
from repro.cpu.host import EXIT_ADDRESS
from repro.isa import Reg, assemble
from repro.isa.instructions import make
from repro.isa.registers import Register
from repro.lang import Assign, BinOp, Call, Const, Function, Load, Program, Return, Store, Var


def _gadget(image, instructions):
    code, _ = assemble(list(instructions) + [make("ret")],
                       base_address=image.text.end if image.text.size else image.text.address)
    return image.text.append(code)


def _figure1_result(rax_value):
    image = BinaryImage()
    pop_rcx = _gadget(image, [make("pop", Reg(Register.RCX))])
    neg_rax = _gadget(image, [make("neg", Reg(Register.RAX))])
    adc = _gadget(image, [make("adc", Reg(Register.RCX), Reg(Register.RCX))])
    neg_rcx = _gadget(image, [make("neg", Reg(Register.RCX))])
    pop_rsi = _gadget(image, [make("pop", Reg(Register.RSI))])
    and_rsi = _gadget(image, [make("and", Reg(Register.RSI), Reg(Register.RCX))])
    add_rsp = _gadget(image, [make("add", Reg(Register.RSP), Reg(Register.RSI))])
    pop_rdi = _gadget(image, [make("pop", Reg(Register.RDI))])
    pop_rsi_rbp = _gadget(image, [make("pop", Reg(Register.RSI)), make("pop", Reg(Register.RBP))])

    program = load_image(image)
    emulator = Emulator(program.memory)
    chain = [pop_rcx, 0, neg_rax, adc, neg_rcx, pop_rsi, 0x18, and_rsi, add_rsp,
             pop_rdi, 1, pop_rsi_rbp, pop_rdi, 2, EXIT_ADDRESS]
    base = program.stack_top - 0x400
    for index, value in enumerate(chain):
        program.memory.write_int(base + 8 * index, value, 8)
    emulator.state.write_reg(Register.RAX, rax_value)
    emulator.state.write_reg(Register.RSP, base)
    emulator.state.rip = emulator.pop()
    emulator.run()
    return emulator.state.read_reg(Register.RDI)


def test_figure1_chain_assigns_rdi_conditionally():
    assert _figure1_result(0) == 1
    assert _figure1_result(7) == 2


def test_pivot_stub_size_is_the_rewriting_threshold():
    size = pivot_stub_size()
    assert 0 < size < 128
    tiny = compile_program(Program([Function("t", [], [Return(Const(0))])]))
    assert tiny.function("t").size < size  # the kind of stub §VII-C1 skips


def test_stack_switching_array_is_balanced_after_nested_calls():
    """Figure 3/4: after ROP->native->ROP calls return, ss[0] is back to zero."""
    program = Program([
        Function("leaf", ["x"], [
            Assign("p", Call("malloc", [Const(16)])),
            Store(Var("p"), BinOp("+", Var("x"), Const(1)), 8),
            Return(Load(Var("p"), 8)),
        ]),
        Function("top", ["x"], [Return(Call("leaf", [Call("leaf", [Var("x")])]))]),
    ])
    image = compile_program(program)
    obfuscated, report = rop_obfuscate(image, ["top", "leaf"], RopConfig.ropk(0.2))
    assert report.coverage == 1.0
    loaded = load_image(obfuscated)
    result, emulator = call_function(loaded, "top", [5], max_steps=10_000_000)
    assert result == 7
    ss_address = obfuscated.metadata["rop_ss_address"]
    assert emulator.memory.read_int(ss_address, 8) == 0
