"""Unit tests for the translation stage, RopConfig validation and reports."""

import pytest

from repro.compiler import compile_function
from repro.core import RopConfig
from repro.core.rewriter import FunctionResult, RewriteReport
from repro.core.roplets import RopletKind
from repro.core.translation import classify_instruction, translate_function
from repro.isa.instructions import make
from repro.isa.operands import Imm, Mem, Reg
from repro.isa.registers import Register
from repro.lang import Assign, BinOp, Const, Function, If, Return, Var


def test_classify_instruction_covers_the_taxonomy():
    assert classify_instruction(make("jne", Imm(0x401000))) is RopletKind.INTRA_TRANSFER
    assert classify_instruction(make("call", Imm(0x401000))) is RopletKind.INTER_TRANSFER
    assert classify_instruction(make("ret")) is RopletKind.EPILOGUE
    assert classify_instruction(make("leave")) is RopletKind.EPILOGUE
    assert classify_instruction(make("push", Reg(Register.RBP))) is RopletKind.DIRECT_STACK
    assert classify_instruction(make("mov", Reg(Register.RBP), Reg(Register.RSP))) \
        is RopletKind.STACK_POINTER_REF
    assert classify_instruction(make("mov", Reg(Register.RAX), Mem(base=Register.RBP, disp=-8))) \
        is RopletKind.DATA_MOVEMENT
    assert classify_instruction(make("add", Reg(Register.RAX), Reg(Register.RCX))) \
        is RopletKind.ALU


def test_translation_annotates_branches_with_compare_operands():
    fn = Function("f", ["x"], [
        If(BinOp("==", Var("x"), Const(5)), [Return(Const(1))], [Return(Const(0))]),
    ])
    translated = translate_function(compile_function(fn), "f")
    branch_roplets = [r for block in translated.blocks.values() for r in block.roplets
                      if r.kind is RopletKind.INTRA_TRANSFER]
    assert branch_roplets
    conditional = [r for r in branch_roplets if r.condition]
    assert conditional and conditional[0].compare_operands is not None
    assert conditional[0].branch_target in translated.blocks


def test_translation_counts_program_points():
    fn = Function("f", ["a", "b"], [Return(BinOp("+", Var("a"), Var("b")))])
    translated = translate_function(compile_function(fn), "f")
    assert translated.roplet_count() == translated.cfg.instruction_count()


def test_translation_symbolic_registers_flow_into_roplets():
    fn = Function("f", ["x"], [
        Assign("y", BinOp("*", Var("x"), Const(3))),
        If(BinOp(">", Var("y"), Const(10)), [Return(Const(1))]),
        Return(Const(0)),
    ])
    translated = translate_function(compile_function(fn), "f")
    assert any(r.symbolic_registers for block in translated.blocks.values()
               for r in block.roplets)


def test_rop_config_validation():
    with pytest.raises(ValueError):
        RopConfig(p3_fraction=1.5)
    with pytest.raises(ValueError):
        RopConfig(p1_modulus=6)
    with pytest.raises(ValueError):
        RopConfig(p1_repetitions=3)
    with pytest.raises(ValueError):
        RopConfig(p1_period=2, p1_branches=4)
    with pytest.raises(ValueError):
        RopConfig(p3_variant="bogus")
    assert RopConfig.ropk(0.25).p3_fraction == 0.25
    plain = RopConfig.plain()
    assert not (plain.p1_enabled or plain.p2_enabled or plain.p3_enabled)


def test_rewrite_report_aggregation():
    report = RewriteReport(results=[
        FunctionResult(name="a", success=True, program_points=10, total_gadgets=40,
                       unique_gadgets=20, chain_bytes=800),
        FunctionResult(name="b", success=False, reason="register pressure: need 5"),
        FunctionResult(name="c", success=True, program_points=5, total_gadgets=30,
                       unique_gadgets=15, chain_bytes=500),
    ])
    assert report.coverage == pytest.approx(2 / 3)
    assert report.failure_categories() == {"register pressure: need 5": 1}
    totals = report.totals()
    assert totals["program_points"] == 15
    assert totals["gadgets_per_point"] == pytest.approx(70 / 15)
    assert report.results[0].gadgets_per_point == pytest.approx(4.0)
