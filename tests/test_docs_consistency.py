"""Docs-vs-code drift gates, driven by the ``repro.knobs`` registry.

The registry in :mod:`repro.knobs` is the single source of truth for the
``REPRO_*`` environment knobs (the static-analysis gate forbids raw
``os.environ`` reads elsewhere), so the docs gates compare the *registry*
— not a grep of the source — against the knob tables: every ``src``-scoped
knob must appear in both tables, every documented knob must be registered,
and every knob name that appears textually anywhere in ``src/`` or
``benchmarks/`` must be registered too (a knob mentioned in a docstring
but absent from the registry is either stale or unroutable).  Module paths
named in ``docs/ARCHITECTURE.md`` must still be importable, so the docs
the README points newcomers at cannot silently rot.
"""

import importlib
import re
from pathlib import Path

from repro import knobs

REPO = Path(__file__).resolve().parent.parent
KNOB_RE = re.compile(r"REPRO_[A-Z0-9_]+")
MODULE_RE = re.compile(r"`(repro(?:\.[a-z_0-9]+)+)`")


def _textual_knobs(*roots: str) -> set:
    """Every REPRO_* token appearing in code or docstrings under roots."""
    found = set()
    for root in roots:
        for path in (REPO / root).rglob("*.py"):
            found |= set(KNOB_RE.findall(path.read_text()))
    return found


def _table_knobs(path: Path) -> set:
    # knobs listed in markdown table rows: | `REPRO_X` | ... |
    rows = re.findall(r"^\|\s*`(REPRO_[A-Z0-9_]+)`", path.read_text(),
                      flags=re.MULTILINE)
    return set(rows)


def test_every_src_knob_is_in_the_benchmarks_knob_table():
    documented = _table_knobs(REPO / "benchmarks" / "README.md")
    missing = knobs.names("src") - documented
    assert not missing, (
        f"registered src knob(s) absent from the benchmarks/README.md "
        f"knob table: {sorted(missing)}")


def test_every_src_knob_is_in_the_readme_quick_reference():
    documented = _table_knobs(REPO / "README.md")
    missing = knobs.names("src") - documented
    assert not missing, (
        f"registered src knob(s) absent from the README.md quick "
        f"reference: {sorted(missing)}")


def test_no_stale_documented_knobs():
    for name in ("README.md", "benchmarks/README.md"):
        stale = _table_knobs(REPO / name) - knobs.names()
        assert not stale, (
            f"knob(s) documented in {name} but not registered in "
            f"repro.knobs: {sorted(stale)}")


def test_every_textual_knob_mention_is_registered():
    """A REPRO_* name in code/docstrings must exist in the registry."""
    unregistered = _textual_knobs("src", "benchmarks") - knobs.names()
    assert not unregistered, (
        f"REPRO_* name(s) appearing in src/ or benchmarks/ but not "
        f"registered in repro.knobs: {sorted(unregistered)}")


def test_every_registered_knob_is_mentioned_somewhere():
    """The registry cannot carry knobs nothing reads or documents."""
    unused = knobs.names() - _textual_knobs("src", "benchmarks")
    assert not unused, (
        f"knob(s) registered in repro.knobs but never mentioned in src/ "
        f"or benchmarks/: {sorted(unused)}")


def test_benchmark_scoped_knobs_are_in_the_benchmarks_readme():
    text = (REPO / "benchmarks" / "README.md").read_text()
    missing = {name for name in knobs.names("benchmarks")
               if name not in text}
    assert not missing, (
        f"benchmark knob(s) not described in benchmarks/README.md: "
        f"{sorted(missing)}")


def test_registry_descriptions_are_nonempty():
    for knob in knobs.all_knobs():
        assert knob.description.strip(), f"{knob.name} has no description"


def test_architecture_doc_module_paths_exist():
    text = (REPO / "docs" / "ARCHITECTURE.md").read_text()
    modules = sorted(set(MODULE_RE.findall(text)))
    assert modules, "ARCHITECTURE.md should reference repro.* module paths"
    broken = []
    for dotted in modules:
        try:
            importlib.import_module(dotted)
        except ImportError:
            # attribute references like repro.core.rewriter.RopRewriter
            parent, _, leaf = dotted.rpartition(".")
            try:
                module = importlib.import_module(parent)
            except ImportError:
                broken.append(dotted)
                continue
            if not hasattr(module, leaf):
                broken.append(dotted)
    assert not broken, f"ARCHITECTURE.md references missing modules: {broken}"


def test_readme_points_at_the_real_docs():
    readme = (REPO / "README.md").read_text()
    for target in ("docs/ARCHITECTURE.md", "benchmarks/README.md",
                   "ROADMAP.md"):
        assert target in readme, f"README.md must link {target}"
        assert (REPO / target).exists(), f"{target} linked but missing"
