"""Docs-vs-code drift gates.

Every ``REPRO_*`` environment knob read by ``src/`` must be documented in
the knob tables (the full table in ``benchmarks/README.md`` and the quick
reference in ``README.md``), every documented knob must still exist in the
code, and every ``repro.*`` module path named in ``docs/ARCHITECTURE.md``
must still be importable — so the docs the README points newcomers at
cannot silently rot.
"""

import importlib
import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
KNOB_RE = re.compile(r"REPRO_[A-Z0-9_]+")
MODULE_RE = re.compile(r"`(repro(?:\.[a-z_0-9]+)+)`")


def _code_knobs(*roots: str) -> set:
    found = set()
    for root in roots:
        for path in (REPO / root).rglob("*.py"):
            found |= set(KNOB_RE.findall(path.read_text()))
    return found


def _table_knobs(path: Path) -> set:
    # knobs listed in markdown table rows: | `REPRO_X` | ... |
    rows = re.findall(r"^\|\s*`(REPRO_[A-Z0-9_]+)`", path.read_text(),
                      flags=re.MULTILINE)
    return set(rows)


def test_every_src_knob_is_in_the_benchmarks_knob_table():
    documented = _table_knobs(REPO / "benchmarks" / "README.md")
    missing = _code_knobs("src") - documented
    assert not missing, (
        f"knob(s) read by src/ but absent from the benchmarks/README.md "
        f"knob table: {sorted(missing)}")


def test_every_src_knob_is_in_the_readme_quick_reference():
    documented = _table_knobs(REPO / "README.md")
    missing = _code_knobs("src") - documented
    assert not missing, (
        f"knob(s) read by src/ but absent from the README.md quick "
        f"reference: {sorted(missing)}")


def test_no_stale_documented_knobs():
    in_code = _code_knobs("src", "benchmarks")
    for name in ("README.md", "benchmarks/README.md"):
        stale = _table_knobs(REPO / name) - in_code
        assert not stale, f"knob(s) documented in {name} but read nowhere: " \
                          f"{sorted(stale)}"


def test_architecture_doc_module_paths_exist():
    text = (REPO / "docs" / "ARCHITECTURE.md").read_text()
    modules = sorted(set(MODULE_RE.findall(text)))
    assert modules, "ARCHITECTURE.md should reference repro.* module paths"
    broken = []
    for dotted in modules:
        try:
            importlib.import_module(dotted)
        except ImportError:
            # attribute references like repro.core.rewriter.RopRewriter
            parent, _, leaf = dotted.rpartition(".")
            try:
                module = importlib.import_module(parent)
            except ImportError:
                broken.append(dotted)
                continue
            if not hasattr(module, leaf):
                broken.append(dotted)
    assert not broken, f"ARCHITECTURE.md references missing modules: {broken}"


def test_readme_points_at_the_real_docs():
    readme = (REPO / "README.md").read_text()
    for target in ("docs/ARCHITECTURE.md", "benchmarks/README.md",
                   "ROADMAP.md"):
        assert target in readme, f"README.md must link {target}"
        assert (REPO / target).exists(), f"{target} linked but missing"
