"""Tests for gadget discovery, classification and the diversified pool."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.binary import BinaryImage
from repro.gadgets import GadgetPool, classify_gadget, find_gadgets
from repro.gadgets.finder import find_gadgets_in_image
from repro.gadgets.pool import GadgetPoolError
from repro.isa import Mem, Reg, assemble
from repro.isa.instructions import make
from repro.isa.registers import Register


def _image_with(instructions):
    image = BinaryImage()
    code, _ = assemble(instructions, base_address=image.text.address)
    image.text.append(code)
    return image


def test_finder_locates_intended_gadgets():
    image = _image_with([
        make("pop", Reg(Register.RDI)), make("ret"),
        make("mov", Reg(Register.RAX), Reg(Register.RBX)), make("ret"),
    ])
    gadgets = find_gadgets_in_image(image)
    texts = {g.text() for g in gadgets}
    assert any("pop rdi" in t for t in texts)
    assert any("mov rax, rbx" in t for t in texts)


def test_finder_reports_pops_and_clobbers():
    gadgets = find_gadgets(assemble([make("pop", Reg(Register.RSI)),
                                     make("pop", Reg(Register.RBP)),
                                     make("ret")])[0])
    full = [g for g in gadgets if len(g.pops) == 2]
    assert full and full[0].pops == (Register.RSI, Register.RBP)
    assert Register.RSI in full[0].clobbers


def test_classifier_recognizes_core_kinds():
    cases = {
        ("pop", (Reg(Register.RDI),)): ("pop", {"dst": Register.RDI}),
        ("add", (Reg(Register.RSP), Reg(Register.RSI))): ("add_rsp_r", {"src": Register.RSI}),
        ("neg", (Reg(Register.RCX),)): ("neg", {"dst": Register.RCX}),
        ("mov", (Reg(Register.RAX), Mem(base=Register.RBX))): ("load8", {"dst": Register.RAX, "src": Register.RBX}),
        ("mov", (Mem(base=Register.RBX), Reg(Register.RAX))): ("store8", {"dst": Register.RBX, "src": Register.RAX}),
    }
    for (name, operands), expected in cases.items():
        gadgets = find_gadgets(assemble([make(name, *operands), make("ret")])[0])
        classified = [classify_gadget(g) for g in gadgets if g.length == 2]
        assert expected in classified


def test_pool_synthesizes_missing_gadgets_as_dead_code():
    image = BinaryImage()
    image.text.append(b"")
    pool = GadgetPool(image, seed=1, seed_from_text=False)
    before = image.text.size
    gadget = pool.ensure("pop", dst=Register.R12)
    assert gadget.kind == "pop"
    assert image.text.size > before
    # the synthesized gadget is discoverable by scanning .text afterwards
    assert any(g.address == gadget.address for g in find_gadgets_in_image(image))


def test_pool_respects_avoid_sets():
    image = BinaryImage()
    image.text.append(b"")
    pool = GadgetPool(image, seed=3, seed_from_text=False, diversify=True)
    avoid = frozenset({Register.RBX, Register.R12, Register.R13, Register.R14, Register.R15})
    for _ in range(12):
        gadget = pool.ensure("mov_rr", avoid=avoid, dst=Register.RAX, src=Register.RCX)
        assert not (gadget.clobbers - {Register.RAX}) & avoid


def test_pool_diversification_produces_multiple_variants():
    image = BinaryImage()
    image.text.append(b"")
    pool = GadgetPool(image, seed=5, seed_from_text=False, diversify=True)
    addresses = set()
    for seed in range(10):
        pool.random.seed(seed)
        addresses.add(pool._synthesize("pop", {"dst": Register.RDI}, frozenset()).address)
    assert len(addresses) >= 2


def test_pool_rejects_unknown_kind():
    image = BinaryImage()
    image.text.append(b"")
    pool = GadgetPool(image, seed_from_text=False)
    with pytest.raises(GadgetPoolError):
        pool.ensure("teleport", dst=Register.RAX)


@settings(max_examples=30, deadline=None)
@given(data=st.binary(min_size=0, max_size=200))
def test_finder_never_crashes_on_arbitrary_bytes(data):
    for gadget in find_gadgets(data, base_address=0x400000):
        assert gadget.instructions[-1].name in ("ret",)
        assert 0x400000 <= gadget.address < 0x400000 + len(data)
