"""The semantics registry is complete and agrees with the rest of the repo.

``repro.cpu.semantics`` is the single declarative source of truth the
static contract checker (:mod:`repro.analysis.lint`) verifies the four
execution tiers against.  These tests pin the registry itself: every
mnemonic is described, the dispatch table is *derived* from it (not merely
consistent with it), and its flag effects agree with the coarser
``Instruction.writes_flags()`` / ``reads_flags()`` predicates the rewriter
and gadget layers rely on.
"""

from repro.cpu import semantics
from repro.cpu.emulator import _HANDLER_NAMES
from repro.isa.instructions import Mnemonic


def test_every_mnemonic_has_semantics():
    missing = [m for m in Mnemonic if m not in semantics.SEMANTICS]
    assert not missing, f"mnemonics without semantics: {missing}"
    for mnemonic, sem in semantics.SEMANTICS.items():
        assert sem.mnemonic is mnemonic
        assert sem.handler.startswith("_op_")
        assert sem.operand_counts, f"{mnemonic} declares no operand shapes"


def test_dispatch_table_is_derived_from_the_registry():
    assert _HANDLER_NAMES == semantics.handler_table()


def test_flag_sets_are_valid_slots():
    valid = set(semantics.FLAGS)
    for sem in semantics.SEMANTICS.values():
        assert set(sem.flags_written) <= valid
        assert set(sem.flags_read) <= valid
        assert set(sem.flags_preserved) <= valid
        assert not set(sem.flags_written) & set(sem.flags_preserved), (
            f"{sem.mnemonic}: a flag cannot be both written and preserved")
        for special in sem.specials:
            assert special in semantics.SPECIAL_RULES


def test_registry_agrees_with_instruction_flag_predicates():
    """writes_flags()/reads_flags() are the coarse views of the registry."""
    for mnemonic in Mnemonic:
        sem = semantics.SEMANTICS[mnemonic]
        writes = bool(sem.flags_written)
        reads = bool(sem.flags_read)
        instruction = _representative(mnemonic)
        assert instruction.writes_flags() == writes, (
            f"{mnemonic}: registry says flags_written={sem.flags_written} "
            f"but Instruction.writes_flags() is {instruction.writes_flags()}")
        assert instruction.reads_flags() == reads, (
            f"{mnemonic}: registry says flags_read={sem.flags_read} "
            f"but Instruction.reads_flags() is {instruction.reads_flags()}")


def test_shift_semantics_pin_the_x86_corner_cases():
    """The PR 5 bug class is spelled out declaratively for every shift."""
    for mnemonic in (Mnemonic.SHL, Mnemonic.SHR, Mnemonic.SAR):
        specials = semantics.SEMANTICS[mnemonic].specials
        assert "zero_count_noop" in specials
        assert "count_masked" in specials
        assert "of_one_bit_only" in specials


def test_all_four_tiers_are_registered():
    import repro.attacks.shadow  # noqa: F401  (registration side effect)
    import repro.cpu.codegen  # noqa: F401
    import repro.cpu.trace  # noqa: F401

    assert set(semantics.TIERS) == {"handlers", "closures", "codegen",
                                    "shadow"}
    for registration in semantics.TIERS.values():
        covered = set(registration.covered)
        declined = set(registration.declined)
        assert covered | declined == set(Mnemonic)
        assert not covered & declined


def _representative(mnemonic):
    """A minimal Instruction of the given mnemonic (operands irrelevant)."""
    from repro.isa.instructions import Instruction

    condition = "e" if mnemonic in (Mnemonic.JCC, Mnemonic.CMOV,
                                    Mnemonic.SET) else ""
    return Instruction(mnemonic=mnemonic, operands=(), condition=condition)
