"""Differential tests for the three execution tiers.

Every behaviour here is asserted as *equality between tiers*: single-step
dispatch (the reference semantics), the closure-trace tier
(``trace_compile=False``) and the exec-compiled tier (``trace_compile=True``
with promotion forced).  The property-based test drives randomly generated
instruction sequences — including sub-width operands, flag consumers and
memory traffic that exercises both the native codegen emitters and the
generic handler fallback — through all three tiers and requires identical
registers, flags, memory, step counts and fault outcomes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.binary import BinaryImage, load_image
from repro.cpu import Emulator, TraceRecorder
from repro.cpu.host import EXIT_ADDRESS
from repro.cpu.state import EmulationError
from repro.isa import Imm, Mem, Reg, assemble
from repro.isa.instructions import make
from repro.isa.operands import Label
from repro.isa.registers import Register

#: General-purpose registers the generated programs may clobber.  RSP/RBP
#: hold the stack, R14/R15 are reserved as pinned index/base values so
#: memory operands stay inside the scratch blob.
_GP = (Register.RAX, Register.RCX, Register.RDX, Register.RBX,
       Register.RSI, Register.RDI, Register.R8, Register.R9,
       Register.R10, Register.R11, Register.R12, Register.R13)

_BLOB = 0x600000
_BLOB_SIZE = 256


def build_program(instructions, data=bytes(_BLOB_SIZE)):
    image = BinaryImage()
    code, _ = assemble(instructions, base_address=image.text.address)
    address = image.text.append(code)
    image.add_function("f", address, len(code))
    blob = image.data.append(data)
    assert blob == _BLOB
    image.add_object("blob", blob, len(data))
    return load_image(image)


def start_call(emulator, program, seeds=()):
    emulator.halted = False
    emulator.state.write_reg(Register.RSP, program.stack_top)
    emulator.state.write_reg(Register.RBP, program.stack_top)
    for register, value in seeds:
        emulator.state.write_reg(register, value)
    emulator.state.write_reg(Register.R14, 8)
    emulator.state.write_reg(Register.R15, _BLOB)
    emulator.push(EXIT_ADDRESS)
    emulator.state.rip = program.image.function("f").address


_TIERS = {
    "single": dict(trace_cache=False),
    "closure": dict(trace_cache=True, trace_compile=False),
    "compiled": dict(trace_cache=True, trace_compile=True),
}


def run_tier(body, seeds, tier, data=bytes(_BLOB_SIZE), rounds=3,
             max_steps=20_000):
    """Run ``body`` ``rounds`` times on one tier; return per-round outcomes."""
    program = build_program(body, data=data)
    emulator = Emulator(program.memory, max_steps=max_steps, **_TIERS[tier])
    emulator.trace_compile_threshold = 0  # promote on the second fused run
    outcomes = []
    for index in range(rounds):
        start_call(emulator, program, seeds)
        fault = None
        try:
            emulator.run()
        except EmulationError as exc:
            fault = str(exc)
        outcomes.append({
            "steps": emulator.steps,
            "rip": emulator.state.rip,
            "regs": dict(emulator.state.regs),
            "flags": emulator.state.flags_tuple(),
            "fault": fault,
            "blob": bytes(emulator.memory.read(_BLOB, _BLOB_SIZE)),
        })
    return outcomes


def assert_tiers_agree(body, seeds, data=bytes(_BLOB_SIZE), rounds=3):
    single = run_tier(body, seeds, "single", data=data, rounds=rounds)
    closure = run_tier(body, seeds, "closure", data=data, rounds=rounds)
    compiled = run_tier(body, seeds, "compiled", data=data, rounds=rounds)
    assert single == closure
    assert single == compiled


# -- hypothesis strategies -------------------------------------------------------

_reg = st.sampled_from(_GP)
_imm8 = st.integers(min_value=-128, max_value=127)
_imm64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
_cc = st.sampled_from(("e", "ne", "l", "le", "g", "ge", "b", "be", "a",
                       "ae", "s", "ns"))


@st.composite
def _mem(draw, size):
    """A memory operand guaranteed to land inside the scratch blob."""
    form = draw(st.integers(0, 2))
    offset = draw(st.integers(0, 23)) * 8
    if form == 0:
        return Mem(disp=_BLOB + offset, size=size)
    if form == 1:
        return Mem(base=Register.R15, disp=offset, size=size)
    scale = draw(st.sampled_from((1, 2, 4)))
    # R14 is pinned to 8 by start_call, so index * scale stays <= 32
    return Mem(base=Register.R15, index=Register.R14, scale=scale,
               disp=offset, size=size)


#: Shift counts around the width-mask edges (0/1/31/32/33/63/64 exercise the
#: zero-count flag-preservation, the defined 1-bit OF, and both mask widths).
_shift_count = st.one_of(st.sampled_from((0, 1, 31, 32, 33, 63, 64)),
                         st.integers(0, 63))


@st.composite
def _unit(draw):
    """One generated instruction (or a short dependent group)."""
    kind = draw(st.integers(0, 19))
    if kind == 0:  # mov/movzx/movsx in mixed widths
        mnemonic = draw(st.sampled_from(("mov", "movzx", "movsx")))
        dst = Reg(draw(_reg), draw(st.sampled_from((8, 8, 8, 4))))
        src_size = draw(st.sampled_from((1, 2, 4, 8)))
        if draw(st.booleans()):
            src = Reg(draw(_reg), src_size)
        else:
            src = draw(_mem(src_size))
        if mnemonic == "mov" and isinstance(src, Reg) and src.size != dst.size \
                and src.size > dst.size:
            src = Reg(src.reg, dst.size)
        return [make(mnemonic, dst, src)]
    if kind == 1:  # mov to register from immediate (any width)
        width = draw(st.sampled_from((8, 4, 2, 1)))
        return [make("mov", Reg(draw(_reg), width), Imm(draw(_imm64), 8))]
    if kind == 2:  # store to the blob
        width = draw(st.sampled_from((8, 4, 2, 1)))
        destination = draw(_mem(width))
        if draw(st.booleans()):
            return [make("mov", destination, Reg(draw(_reg), width))]
        return [make("mov", destination, Imm(draw(_imm8), 8))]
    if kind == 3:  # 64-bit ALU, register or immediate source
        name = draw(st.sampled_from(("add", "sub", "cmp", "and", "or",
                                     "xor", "test")))
        dst = Reg(draw(_reg))
        if draw(st.booleans()):
            return [make(name, dst, Reg(draw(_reg)))]
        return [make(name, dst, Imm(draw(_imm64), 8))]
    if kind == 4:  # sized ALU (native sized emitters in the codegen)
        name = draw(st.sampled_from(("add", "sub", "cmp", "and", "or", "xor")))
        width = draw(st.sampled_from((4, 2, 1)))
        dst = Reg(draw(_reg), width)
        if draw(st.booleans()):
            return [make(name, dst, Reg(draw(_reg), width))]
        return [make(name, dst, Imm(draw(_imm64), 8))]
    if kind == 5:  # carry chains
        return [make("add", Reg(draw(_reg)), Imm(draw(_imm64), 8)),
                make(draw(st.sampled_from(("adc", "sbb"))),
                     Reg(draw(_reg)), Reg(draw(_reg)))]
    if kind == 6:
        return [make(draw(st.sampled_from(("inc", "dec", "neg", "not"))),
                     Reg(draw(_reg)))]
    if kind == 7:  # shifts by immediate, any destination width
        name = draw(st.sampled_from(("shl", "shr", "sar")))
        width = draw(st.sampled_from((8, 8, 4, 2, 1)))
        return [make(name, Reg(draw(_reg), width), Imm(draw(_shift_count), 8))]
    if kind == 8:
        source = (Reg(draw(_reg)) if draw(st.booleans())
                  else Imm(draw(_imm8), 8))
        return [make("imul", Reg(draw(_reg)), source)]
    if kind == 9:
        return [make("xchg", Reg(draw(_reg)), Reg(draw(_reg)))]
    if kind == 10:
        return [make("lea", Reg(draw(_reg)), draw(_mem(8)))]
    if kind == 11:  # push/pop pair (possibly different registers)
        return [make("push", Reg(draw(_reg))),
                make("pop", Reg(draw(_reg)))]
    if kind == 12:
        return [make("push", Imm(draw(_imm8), 8)),
                make("pop", Reg(draw(_reg)))]
    if kind == 13:  # flag consumers
        cc = draw(_cc)
        if draw(st.booleans()):
            return [make(f"cmov{cc}", Reg(draw(_reg)), Reg(draw(_reg)))]
        return [make(f"set{cc}", Reg(draw(_reg),
                                     draw(st.sampled_from((1, 4, 8)))))]
    if kind == 14:
        return [make("cqo")]
    if kind == 15:  # load through a register-based address
        return [make("mov", Reg(draw(_reg)), draw(_mem(8)))]
    if kind == 16:  # shift by CL (dynamic count), any destination width
        name = draw(st.sampled_from(("shl", "shr", "sar")))
        width = draw(st.sampled_from((8, 4, 2, 1)))
        unit = []
        if draw(st.booleans()):  # pin the count to a width-mask edge
            unit.append(make("mov", Reg(Register.RCX, 1),
                             Imm(draw(_shift_count), 8)))
        unit.append(make(name, Reg(draw(_reg), width),
                         Reg(Register.RCX, 1)))
        return unit
    if kind == 17:  # cmp/test with a memory operand on either side
        width = draw(st.sampled_from((8, 4, 2, 1)))
        memory = draw(_mem(width))
        name = draw(st.sampled_from(("cmp", "test")))
        if draw(st.booleans()):
            source = (Reg(draw(_reg), width) if draw(st.booleans())
                      else Imm(draw(_imm8), 8))
            return [make(name, memory, source)]
        return [make(name, Reg(draw(_reg), width), memory)]
    if kind == 18:  # memory-destination read-modify-write ALU
        name = draw(st.sampled_from(("add", "sub", "and", "or", "xor")))
        width = draw(st.sampled_from((8, 4, 2, 1)))
        source = (Reg(draw(_reg), width) if draw(st.booleans())
                  else Imm(draw(_imm8), 8))
        return [make(name, draw(_mem(width)), source)]
    # forward conditional branch over the rest of the body
    return [make(f"j{draw(_cc)}", Label("end"))]


@st.composite
def _program_case(draw):
    units = draw(st.lists(_unit(), min_size=1, max_size=14))
    body = [instruction for unit in units for instruction in unit]
    body = body + ["end", make("ret")]
    seeds = [(register, draw(_imm64)) for register in _GP]
    data = draw(st.binary(min_size=_BLOB_SIZE, max_size=_BLOB_SIZE))
    return body, seeds, data


@settings(max_examples=60, deadline=None)
@given(case=_program_case())
def test_random_sequences_agree_across_tiers(case):
    body, seeds, data = case
    assert_tiers_agree(body, seeds, data=data)


# -- deterministic compiled-tier behaviours --------------------------------------

_LOOP_BODY = [
    make("xor", Reg(Register.RAX), Reg(Register.RAX)),
    make("xor", Reg(Register.RCX), Reg(Register.RCX)),
    "loop",
    make("cmp", Reg(Register.RCX), Reg(Register.RDI)),
    make("jge", Label("done")),
    make("add", Reg(Register.RAX), Imm(2)),
    make("inc", Reg(Register.RCX)),
    make("jmp", Label("loop")),
    "done",
    make("ret"),
]


def test_promotion_counters_and_cached_functions():
    """Closure warm-up runs precede promotion; compiled runs dominate after."""
    program = build_program(_LOOP_BODY)
    emulator = Emulator(program.memory, trace_cache=True, trace_compile=True)
    for _ in range(8):
        start_call(emulator, program, [(Register.RDI, 50)])
        emulator.run()
    stats = emulator.jit_stats
    assert stats.traces_built > 0
    assert stats.traces_compiled > 0
    assert stats.closure_runs > 0, "warm-up tier should have served first"
    assert stats.compiled_runs > stats.closure_runs
    assert 0.0 < stats.compiled_hit_rate < 1.0
    assert any(trace.compiled is not None
               for trace in emulator._trace_cache.values())


def test_trace_compile_toggle_stays_on_closures():
    program = build_program(_LOOP_BODY)
    emulator = Emulator(program.memory, trace_cache=True, trace_compile=False)
    emulator.trace_compile_threshold = 0
    for _ in range(6):
        start_call(emulator, program, [(Register.RDI, 50)])
        emulator.run()
    assert emulator.jit_stats.traces_compiled == 0
    assert emulator.jit_stats.compiled_runs == 0
    assert all(trace.compiled is None
               for trace in emulator._trace_cache.values())


def test_compiled_trace_invalidated_by_self_modification():
    """Patching code under a compiled trace recompiles from the new bytes."""
    program = build_program(_LOOP_BODY)
    address = program.image.function("f").address
    emulator = Emulator(program.memory, trace_cache=True, trace_compile=True)
    emulator.trace_compile_threshold = 0
    for _ in range(4):
        start_call(emulator, program, [(Register.RDI, 5)])
        emulator.run()
    assert emulator.state.read_reg(Register.RAX) == 10
    assert emulator.jit_stats.traces_compiled > 0

    patched, _ = assemble([
        make("xor", Reg(Register.RAX), Reg(Register.RAX)),
        make("xor", Reg(Register.RCX), Reg(Register.RCX)),
        "loop",
        make("cmp", Reg(Register.RCX), Reg(Register.RDI)),
        make("jge", Label("done")),
        make("add", Reg(Register.RAX), Imm(3)),
        make("inc", Reg(Register.RCX)),
        make("jmp", Label("loop")),
        "done",
        make("ret"),
    ], base_address=address)
    program.memory.write(address, patched)

    for _ in range(3):
        start_call(emulator, program, [(Register.RDI, 5)])
        emulator.run()
        assert emulator.state.read_reg(Register.RAX) == 15


def test_mid_trace_self_modification_under_compiled_tier():
    """A store rewriting an upcoming compiled instruction takes effect at once."""
    image = BinaryImage()
    base = image.text.address

    def body(patch_address):
        return [
            make("mov", Mem(disp=patch_address, size=1), Reg(Register.RDI, 1)),
            make("mov", Reg(Register.RAX), Imm(0)),
            make("ret"),
        ]

    draft, _ = assemble(body(base), base_address=base)
    store_len = len(assemble([body(base)[0]], base_address=base)[0])
    variant_a, _ = assemble([make("mov", Reg(Register.RAX), Imm(5))],
                            base_address=base)
    variant_b, _ = assemble([make("mov", Reg(Register.RAX), Imm(9))],
                            base_address=base)
    (imm_offset,) = [i for i, (a, b) in enumerate(zip(variant_a, variant_b))
                     if a != b]
    patch_address = base + store_len + imm_offset

    code, _ = assemble(body(patch_address), base_address=base)
    address = image.text.append(code)
    image.add_function("f", address, len(code))
    program = load_image(image)

    emulator = Emulator(program.memory, trace_cache=True, trace_compile=True)
    emulator.trace_compile_threshold = 0
    for value in (5, 9, 13, 21, 33):
        emulator.halted = False
        emulator.state.write_reg(Register.RSP, program.stack_top)
        emulator.state.write_reg(Register.RBP, program.stack_top)
        emulator.state.write_reg(Register.RDI, value)
        emulator.push(EXIT_ADDRESS)
        emulator.state.rip = address
        emulator.run()
        assert emulator.state.read_reg(Register.RAX) == value


def test_compiled_ret_guard_follows_rewritten_chain():
    """A compiled ret-chain trace must not replay a stale successor gadget."""
    image = BinaryImage()
    gadget1, _ = assemble([make("pop", Reg(Register.RDI)), make("ret")],
                          base_address=image.text.address)
    g1 = image.text.append(gadget1)
    gadget2, _ = assemble([make("add", Reg(Register.RDI), Imm(1)),
                           make("mov", Reg(Register.RAX), Reg(Register.RDI)),
                           make("ret")], base_address=image.text.end)
    g2 = image.text.append(gadget2)
    gadget3, _ = assemble([make("add", Reg(Register.RDI), Imm(2)),
                           make("mov", Reg(Register.RAX), Reg(Register.RDI)),
                           make("ret")], base_address=image.text.end)
    g3 = image.text.append(gadget3)
    program = load_image(image)
    emulator = Emulator(program.memory, trace_cache=True, trace_compile=True)
    emulator.trace_compile_threshold = 0

    def run_chain(chain):
        emulator.halted = False
        rsp = program.stack_top - 0x100
        for offset, value in enumerate(chain):
            emulator.memory.write_int(rsp + 8 * offset, value, 8)
        emulator.state.write_reg(Register.RSP, rsp + 8)
        emulator.state.rip = chain[0]
        emulator.run()
        return emulator.state.read_reg(Register.RAX)

    for _ in range(3):
        assert run_chain([g1, 41, g2, EXIT_ADDRESS]) == 42
    assert emulator.jit_stats.traces_compiled > 0
    assert run_chain([g1, 10, g3, EXIT_ADDRESS]) == 12


def test_hooks_bypass_compiled_traces_entirely():
    """With hot compiled traces cached, a hook still sees every instruction."""
    program = build_program(_LOOP_BODY)
    emulator = Emulator(program.memory, trace_cache=True, trace_compile=True)
    emulator.trace_compile_threshold = 0
    for _ in range(4):
        start_call(emulator, program, [(Register.RDI, 10)])
        emulator.run()
    assert emulator.jit_stats.traces_compiled > 0

    recorder = TraceRecorder().attach(emulator)
    steps_before = emulator.steps
    start_call(emulator, program, [(Register.RDI, 10)])
    emulator.run()
    assert len(recorder.entries) == emulator.steps - steps_before

    reference = Emulator(load_image(program.image).memory, trace_cache=False)
    ref_recorder = TraceRecorder().attach(reference)
    start_call(reference, program, [(Register.RDI, 10)])
    reference.run()
    assert recorder.addresses() == ref_recorder.addresses()


def test_budget_exact_with_compiled_traces():
    program = build_program(["spin", make("jmp", Label("spin")), "end",
                             make("ret")])
    emulator = Emulator(program.memory, max_steps=10_000, trace_cache=True,
                        trace_compile=True)
    emulator.trace_compile_threshold = 0
    start_call(emulator, program)
    with pytest.raises(EmulationError):
        emulator.run(max_steps=997)
    assert emulator.steps == 997
    with pytest.raises(EmulationError):
        emulator.run()
    assert emulator.steps == 10_000


def test_compiled_fault_repair_matches_single_step():
    """Faults inside compiled traces leave rip/steps/flags as single-step."""
    body = [
        make("xor", Reg(Register.RAX), Reg(Register.RAX)),
        make("add", Reg(Register.RAX), Imm(7)),
        make("push", Reg(Register.RAX)),
        make("pop", Reg(Register.RBX)),
        make("mov", Reg(Register.RDX), Mem(base=Register.RSI)),  # faults
        make("ret"),
    ]
    seeds = [(Register.RSI, 0x123456789)]
    assert_tiers_agree(body, seeds)


def _single_step_flags(body, seeds=()):
    """Registers and flags after a single-step (reference semantics) run."""
    program = build_program(body)
    emulator = Emulator(program.memory, trace_cache=False)
    start_call(emulator, program, seeds)
    emulator.run()
    return dict(emulator.state.regs), emulator.state.flags_tuple()


#: cmp rax, rbx with rax=1 < rbx=2 yields this reference flag state
#: (cf=1 borrow, zf=0, sf=1 negative result, of=0).
_CMP_FLAGS = (1, 0, 1, 0)
_CMP_SEED = [(Register.RAX, 1), (Register.RBX, 2)]
_CMP = make("cmp", Reg(Register.RAX), Reg(Register.RBX))


@pytest.mark.parametrize("name", ["shl", "shr", "sar"])
@pytest.mark.parametrize("count", [
    # (destination width, count operand) pairs whose masked count is zero
    (8, Imm(0, 8)), (8, Imm(64, 8)), (8, Imm(128, 8)),
    (4, Imm(32, 8)), (2, Imm(64, 8)), (1, Imm(96, 8)),
])
def test_zero_count_shifts_leave_flags_and_destination(name, count):
    """x86: a masked shift count of 0 modifies neither flags nor the
    destination — in every tier."""
    width, operand = count
    body = [_CMP, make(name, Reg(Register.RDX, width), operand), make("ret")]
    seeds = _CMP_SEED + [(Register.RDX, 0xDEAD_BEEF_CAFE_F00D)]
    regs, flags = _single_step_flags(body, seeds)
    assert flags == _CMP_FLAGS
    assert regs[Register.RDX] == 0xDEAD_BEEF_CAFE_F00D
    assert_tiers_agree(body, seeds)


@pytest.mark.parametrize("name,cl", [
    ("shl", 0), ("shr", 64), ("sar", 0),   # masked to zero via CL
    ("shl", 32), ("shr", 32),              # 32-bit width mask edge
])
def test_zero_count_shift_by_cl_leaves_flags(name, cl):
    width = 4 if cl == 32 else 8
    body = [_CMP, make(name, Reg(Register.RDX, width), Reg(Register.RCX, 1)),
            make("ret")]
    seeds = _CMP_SEED + [(Register.RCX, cl), (Register.RDX, 0x1234_5678)]
    _, flags = _single_step_flags(body, seeds)
    assert flags == _CMP_FLAGS
    assert_tiers_agree(body, seeds)


@pytest.mark.parametrize("name,value,expected", [
    # count-1 OF: SHL -> CF ^ MSB(result), SHR -> MSB(original), SAR -> 0
    ("shl", 0x4000_0000_0000_0000, (0, 0, 1, 1)),  # cf=0, msb(res)=1 -> of=1
    ("shl", 0xC000_0000_0000_0000, (1, 0, 1, 0)),  # cf=1, msb(res)=1 -> of=0
    ("shl", 0x8000_0000_0000_0000, (1, 1, 0, 1)),  # cf=1, res=0 -> of=1
    ("shr", 0x8000_0000_0000_0001, (1, 0, 0, 1)),  # of = msb(original) = 1
    ("shr", 0x0000_0000_0000_0003, (1, 0, 0, 0)),  # of = msb(original) = 0
    ("sar", 0x8000_0000_0000_0000, (0, 0, 1, 0)),  # sign preserved, of = 0
])
def test_count_one_shift_overflow_flag(name, value, expected):
    body = [make(name, Reg(Register.RDX), Imm(1, 8)), make("ret")]
    seeds = [(Register.RDX, value)]
    _, flags = _single_step_flags(body, seeds)
    assert flags == expected
    assert_tiers_agree(body, seeds)
    # the dynamic-count emitters must agree with the immediate ones
    cl_body = [make(name, Reg(Register.RDX), Reg(Register.RCX, 1)),
               make("ret")]
    cl_seeds = seeds + [(Register.RCX, 1)]
    _, cl_flags = _single_step_flags(cl_body, cl_seeds)
    assert cl_flags == expected
    assert_tiers_agree(cl_body, cl_seeds)


def test_wide_count_shifts_keep_overflow_clear():
    """Counts past 1 pin OF at 0 (this emulator's convention) in all tiers."""
    body = [make("shl", Reg(Register.RDX), Imm(3)),
            make("shr", Reg(Register.RSI), Imm(7)),
            make("sar", Reg(Register.RDI), Imm(2)),
            make("ret")]
    seeds = [(Register.RDX, 0x7FFF_FFFF_FFFF_FFFF),
             (Register.RSI, 0xFFFF_FFFF_0000_0000),
             (Register.RDI, 0x8000_0000_0000_0000)]
    _, flags = _single_step_flags(body, seeds)
    assert flags[3] == 0
    assert_tiers_agree(body, seeds)


def test_sized_and_mem_alu_native_coverage_counted():
    """The widened emitters compile without generic-handler round-trips."""
    body = [
        make("add", Reg(Register.RAX, 4), Reg(Register.RCX, 4)),
        make("sub", Reg(Register.RBX, 2), Imm(7)),
        make("and", Reg(Register.RSI, 1), Imm(0x5A)),
        make("shl", Reg(Register.RDI), Reg(Register.RCX, 1)),
        make("cmp", Mem(disp=_BLOB, size=8), Reg(Register.RAX)),
        make("test", Reg(Register.RDX, 2), Mem(disp=_BLOB + 8, size=2)),
        make("xor", Mem(disp=_BLOB + 16, size=4), Reg(Register.RDX, 4)),
        make("mov", Reg(Register.R8, 1), Reg(Register.RAX, 1)),
        make("ret"),
    ]
    program = build_program(body)
    emulator = Emulator(program.memory, trace_cache=True, trace_compile=True)
    emulator.trace_compile_threshold = 0
    for _ in range(4):
        start_call(emulator, program, [(Register.RCX, 3)])
        emulator.run()
    stats = emulator.jit_stats
    assert stats.traces_compiled > 0
    assert stats.generic_steps == 0, "every shape should have a native emitter"
    assert stats.native_steps > 0
    assert stats.native_coverage == 1.0


def test_generic_fallback_ops_agree_across_tiers():
    """Sub-width ALU and handler-path ops interleaved with native ones."""
    body = [
        make("mov", Reg(Register.RAX), Imm(0x1234_5678_9ABC_DEF0)),
        make("add", Reg(Register.RAX, 4), Reg(Register.RCX, 4)),  # generic
        make("sub", Reg(Register.RBX, 2), Reg(Register.RDX, 2)),  # generic
        make("movsx", Reg(Register.RSI), Reg(Register.RAX, 1)),
        make("imul", Reg(Register.RDI), Imm(-3)),
        make("sar", Reg(Register.RDI), Imm(5)),
        make("adc", Reg(Register.R8), Reg(Register.R9)),
        make("sbb", Reg(Register.R10), Imm(11)),
        make("xchg", Reg(Register.RAX), Reg(Register.RBX)),
        make("cqo"),
        make("setle", Reg(Register.R11, 1)),
        make("cmovne", Reg(Register.RCX), Reg(Register.RDX)),
        make("mov", Mem(disp=_BLOB + 16, size=2), Reg(Register.RAX, 2)),
        make("mov", Reg(Register.R12, 2), Mem(disp=_BLOB + 16, size=2)),  # generic
        make("ret"),
    ]
    seeds = [(Register.RCX, 0xFFFF_FFFF), (Register.RDX, 3),
             (Register.RBX, 0x8000), (Register.RDI, 1 << 62),
             (Register.R8, (1 << 64) - 2), (Register.R9, 5),
             (Register.R10, 7)]
    assert_tiers_agree(body, seeds)
