"""Cross-trace superblock tests.

Superblocks link hot compiled traces tail-to-head (through guarded rets,
immediate branches, and the fall-through of traces capped at ``TRACE_CAP``)
into one dispatch unit whose seams re-check exactly what the run loop would
have checked, letting the effective fused length grow past ``TRACE_CAP``.
These tests assert the linking actually engages on chain shapes, that every
differential outcome (registers, flags, steps, memory) matches single-step
and superblock-off execution, and that the per-constituent generation keys
invalidate superblocks exactly like ordinary traces under self-modifying
code and rewritten ret chains.
"""

import pytest

from repro.binary import BinaryImage, load_image
from repro.cpu import Emulator
from repro.cpu.host import EXIT_ADDRESS
from repro.cpu.state import EmulationError
from repro.cpu.trace import TRACE_CAP
from repro.isa import Imm, Reg, assemble
from repro.isa.instructions import make
from repro.isa.operands import Label
from repro.isa.registers import Register


def _chain_program(gadget_count=40):
    """A gadget pool whose full chain is well past ``TRACE_CAP``."""
    image = BinaryImage()
    gadgets = []
    for index in range(gadget_count):
        code, _ = assemble([make("add", Reg(Register.RAX), Imm(index + 1)),
                            make("xor", Reg(Register.RAX), Imm(index)),
                            make("ret")], base_address=image.text.end)
        gadgets.append(image.text.append(code))
    return load_image(image), gadgets


def _run_chain(emulator, program, chain, rax=7):
    emulator.halted = False
    rsp = program.stack_top - 0x1000
    for offset, value in enumerate(chain):
        emulator.memory.write_int(rsp + 8 * offset, value, 8)
    emulator.state.write_reg(Register.RSP, rsp + 8)
    emulator.state.write_reg(Register.RAX, rax)
    emulator.state.rip = chain[0]
    emulator.run()
    return (emulator.state.read_reg(Register.RAX),
            emulator.state.flags_tuple(), emulator.steps)


def _emulator(program, **kwargs):
    emulator = Emulator(program.memory, **kwargs)
    emulator.trace_compile_threshold = 0
    return emulator


_MODES = {
    "single": dict(trace_cache=False),
    "sb_off": dict(trace_cache=True, trace_compile=True,
                   trace_superblock=False),
    "sb_on": dict(trace_cache=True, trace_compile=True,
                  trace_superblock=True),
}


def test_superblocks_fuse_past_trace_cap_and_agree():
    program, gadgets = _chain_program()
    chain = gadgets + [EXIT_ADDRESS]
    assert len(gadgets) * 3 > TRACE_CAP
    outcomes = {}
    for mode, kwargs in _MODES.items():
        fresh = load_image(program.image)
        emulator = _emulator(fresh, **kwargs)
        outcomes[mode] = [_run_chain(emulator, fresh, chain)
                         for _ in range(25)]
        if mode == "sb_on":
            stats = emulator.jit_stats
            assert stats.superblocks_built > 0
            assert stats.superblock_runs > 0
            assert any(trace.parts and trace.length > TRACE_CAP
                       for trace in emulator._trace_cache.values())
        if mode == "sb_off":
            assert emulator.jit_stats.superblocks_built == 0
            assert emulator.jit_stats.superblock_runs == 0
    assert outcomes["single"] == outcomes["sb_off"]
    assert outcomes["single"] == outcomes["sb_on"]


def test_superblock_ret_guard_follows_rewritten_chain():
    """A rewritten chain slot must divert out of a fused superblock."""
    program, gadgets = _chain_program()
    emulator = _emulator(program, trace_cache=True, trace_compile=True,
                         trace_superblock=True)
    chain = gadgets + [EXIT_ADDRESS]
    reference = None
    for _ in range(25):
        reference = _run_chain(emulator, program, chain)
    assert emulator.jit_stats.superblocks_built > 0

    # divert the chain at a slot in the middle of the fused region: drop
    # every gadget past the first five
    short_chain = gadgets[:5] + [EXIT_ADDRESS]
    single = _emulator(load_image(program.image), trace_cache=False)
    expected = _run_chain(single, program, short_chain)
    actual = _run_chain(emulator, program, short_chain)
    assert actual[:2] == expected[:2]
    assert actual[0] != reference[0]


def test_superblock_invalidated_by_self_modification():
    """Patching a gadget under a fused superblock takes effect at once."""
    program, gadgets = _chain_program(gadget_count=30)
    emulator = _emulator(program, trace_cache=True, trace_compile=True,
                         trace_superblock=True)
    chain = gadgets + [EXIT_ADDRESS]
    for _ in range(25):
        baseline = _run_chain(emulator, program, chain)
    assert emulator.jit_stats.superblocks_built > 0

    # rewrite gadget 10's add immediate (add rax, 11 -> add rax, 100)
    patched, _ = assemble([make("add", Reg(Register.RAX), Imm(100)),
                           make("xor", Reg(Register.RAX), Imm(10)),
                           make("ret")], base_address=gadgets[10])
    program.memory.write(gadgets[10], patched)

    single = _emulator(load_image(program.image), trace_cache=False)
    single.memory.write(gadgets[10], patched)
    expected = _run_chain(single, program, chain)
    for _ in range(3):
        actual = _run_chain(emulator, program, chain)
        assert actual[:2] == expected[:2]
    assert actual[:2] != baseline[:2]


def test_superblock_demotes_when_interior_seam_goes_stale():
    """Rewriting one constituent's (separate) region must not wedge the
    composite into head-only dispatch: it demotes, then re-links the
    rebuilt chain."""
    image = BinaryImage()
    g1, _ = assemble([make("add", Reg(Register.RAX), Imm(1)), make("ret")],
                     base_address=image.text.address)
    a1 = image.text.append(g1)
    # the second gadget lives in the DATA region, so rewriting it bumps
    # only that region's generation: the composite head's region stays
    # fresh and the run loop keeps dispatching the (degraded) composite
    g2, _ = assemble([make("add", Reg(Register.RAX), Imm(2)), make("ret")],
                     base_address=image.data.address)
    a2 = image.data.append(g2)
    program = load_image(image)
    emulator = _emulator(program, trace_cache=True, trace_compile=True,
                         trace_superblock=True)
    chain = [a1, a2, EXIT_ADDRESS]
    for _ in range(25):
        assert _run_chain(emulator, program, chain, rax=0)[0] == 3
    built_before = emulator.jit_stats.superblocks_built
    assert built_before > 0
    assert emulator._trace_cache[a1].parts, "chain should have linked"

    patched, _ = assemble([make("add", Reg(Register.RAX), Imm(50)),
                           make("ret")], base_address=a2)
    program.memory.write(a2, patched)
    for _ in range(30):
        assert _run_chain(emulator, program, chain, rax=0)[0] == 51
    # the stale composite was demoted and the live chain re-linked: no
    # cached superblock may carry a stale constituent
    after = emulator._trace_cache[a1]
    if after.parts:
        assert emulator.jit_stats.superblocks_built > built_before
        assert all(part.generation == part.region.generation
                   for part in after.parts)


def test_superblock_budget_stays_exact():
    program, gadgets = _chain_program()
    chain = gadgets + [EXIT_ADDRESS]
    emulator = _emulator(program, max_steps=10_000, trace_cache=True,
                         trace_compile=True, trace_superblock=True)
    for _ in range(25):
        _run_chain(emulator, program, chain)
    assert emulator.jit_stats.superblocks_built > 0
    # a budget landing mid-superblock must stop at exactly that step
    steps_before = emulator.steps
    emulator.halted = False
    rsp = program.stack_top - 0x1000
    for offset, value in enumerate(chain):
        emulator.memory.write_int(rsp + 8 * offset, value, 8)
    emulator.state.write_reg(Register.RSP, rsp + 8)
    emulator.state.rip = chain[0]
    with pytest.raises(EmulationError):
        emulator.run(max_steps=TRACE_CAP + 7)
    assert emulator.steps == steps_before + TRACE_CAP + 7


def test_jcc_seam_superblock_exits_on_the_other_side():
    """A conditional-branch seam guards the non-linked side correctly."""
    image = BinaryImage()
    body = [
        "head",
        make("add", Reg(Register.RAX), Imm(1)),
        make("cmp", Reg(Register.RAX), Reg(Register.RDI)),
        make("jge", Label("done")),
        make("jmp", Label("head")),
        "done",
        make("add", Reg(Register.RAX), Imm(1000)),
        make("ret"),
    ]
    code, _ = assemble(body, base_address=image.text.address)
    address = image.text.append(code)
    image.add_function("f", address, len(code))
    program = load_image(image)

    def call(emulator, bound):
        emulator.halted = False
        emulator.state.write_reg(Register.RSP, program.stack_top)
        emulator.state.write_reg(Register.RAX, 0)
        emulator.state.write_reg(Register.RDI, bound)
        emulator.push(EXIT_ADDRESS)
        emulator.state.rip = address
        emulator.run()
        return (emulator.state.read_reg(Register.RAX),
                emulator.state.flags_tuple())

    results = {}
    for mode, kwargs in _MODES.items():
        emulator = _emulator(load_image(program.image), **kwargs)
        # long runs make the loop's jcc->head transition hot, then short
        # runs exercise the guard exit on the other side
        results[mode] = [call(emulator, bound)
                        for bound in [200] * 20 + [1, 2, 3, 0]]
    assert results["single"] == results["sb_off"]
    assert results["single"] == results["sb_on"]


def test_superblock_toggle_off_keeps_traces_independent():
    program, gadgets = _chain_program()
    chain = gadgets + [EXIT_ADDRESS]
    emulator = _emulator(program, trace_cache=True, trace_compile=True,
                         trace_superblock=False)
    for _ in range(25):
        _run_chain(emulator, program, chain)
    stats = emulator.jit_stats
    assert stats.traces_compiled > 0
    assert stats.superblocks_built == 0
    assert all(not trace.parts for trace in emulator._trace_cache.values())


def test_hooks_bypass_superblocks():
    """Hooks force single-step even with fused superblocks cached."""
    from repro.cpu import TraceRecorder

    program, gadgets = _chain_program(gadget_count=30)
    chain = gadgets + [EXIT_ADDRESS]
    emulator = _emulator(program, trace_cache=True, trace_compile=True,
                         trace_superblock=True)
    for _ in range(25):
        _run_chain(emulator, program, chain)
    assert emulator.jit_stats.superblocks_built > 0

    recorder = TraceRecorder().attach(emulator)
    steps_before = emulator.steps
    _run_chain(emulator, program, chain)
    assert len(recorder.entries) == emulator.steps - steps_before

    reference = _emulator(load_image(program.image), trace_cache=False)
    ref_recorder = TraceRecorder().attach(reference)
    _run_chain(reference, program, chain)
    assert recorder.addresses() == ref_recorder.addresses()
